//! Shared helpers for the criterion benches: a lazily generated bench-scale
//! dataset reused across benchmark groups so each bench measures analysis
//! cost, not data generation.

use std::sync::OnceLock;

use autosens_experiments::dataset::{Dataset, Scale};

static DATASET: OnceLock<Dataset> = OnceLock::new();

/// The shared bench-scale dataset (generated on first use).
pub fn dataset() -> &'static Dataset {
    DATASET.get_or_init(|| Dataset::load(Scale::Bench))
}
