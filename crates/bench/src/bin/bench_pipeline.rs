//! `bench_pipeline` — one-shot pipeline throughput baseline.
//!
//! Generates the paper-scale scenario (pass `--smoke` for a quick run),
//! runs the full analysis (with a bootstrap confidence band) twice — once
//! serially (`threads = 1`) and once on the chunked scheduler with the
//! requested worker count (`--threads N`, default 4) — then times the
//! faceted `full_report` sweep and the two ingest paths (CSV parse vs
//! `.asc` container open), and writes `BENCH_pipeline.json`: total
//! wall-clock for both runs, per-stage timings of the parallel run, a
//! records/second throughput figure, and (with the `alloc-stats` feature)
//! the peak bytes held live during each timed section. The checked-in
//! copy at the repo root is the baseline future performance PRs diff
//! against; regenerate with
//!
//! ```text
//! cargo run --release -p autosens-bench --features alloc-stats --bin bench_pipeline
//! ```
//!
//! Pass `--before path.json` to embed a previous run (e.g. the
//! pre-refactor numbers) under the `before` key for a self-contained
//! before/after comparison.

use std::time::Instant;

/// Counting global allocator: tracks live bytes and the high-water mark so
/// the baseline can report peak allocation per timed section. Bench-only —
/// the feature is never enabled for the shipped library or CLI.
#[cfg(feature = "alloc-stats")]
mod alloc_stats {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    pub static CURRENT: AtomicUsize = AtomicUsize::new(0);
    pub static PEAK: AtomicUsize = AtomicUsize::new(0);

    fn grow(bytes: usize) {
        let live = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    pub struct CountingAlloc;

    // SAFETY: delegates every allocation to `System`; the atomics only
    // observe sizes and never touch the pointers.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                grow(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
                grow(new_size);
            }
            p
        }
    }

    /// Start a fresh high-water mark at the current live size.
    pub fn reset_peak() {
        PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Peak bytes live above the level at the last `reset_peak`, i.e. the
    /// extra memory the measured section needed on top of its inputs.
    pub fn peak_above_baseline(baseline: usize) -> u64 {
        PEAK.load(Ordering::Relaxed).saturating_sub(baseline) as u64
    }

    pub fn live() -> usize {
        CURRENT.load(Ordering::Relaxed)
    }
}

#[cfg(feature = "alloc-stats")]
#[global_allocator]
static GLOBAL: alloc_stats::CountingAlloc = alloc_stats::CountingAlloc;

/// Run `f`, returning its result plus the peak bytes allocated above the
/// live level at entry (`None` without the `alloc-stats` feature).
fn with_peak<T>(f: impl FnOnce() -> T) -> (T, Option<u64>) {
    #[cfg(feature = "alloc-stats")]
    {
        let base = alloc_stats::live();
        alloc_stats::reset_peak();
        let out = f();
        (out, Some(alloc_stats::peak_above_baseline(base)))
    }
    #[cfg(not(feature = "alloc-stats"))]
    {
        (f(), None)
    }
}

use autosens_core::{AnalysisPlan, AutoSens, AutoSensConfig, PlanInput, RunOptions};
use autosens_experiments::dataset::Dataset;
use autosens_obs::{Recorder, StageTiming};
use autosens_sim::{Scenario, SimConfig};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};
use serde::Serialize;

/// Bootstrap replicates included in the timed run.
const CI_REPLICATES: usize = 50;

#[derive(Serialize)]
struct PipelineBaseline {
    scenario: String,
    records: usize,
    threads: usize,
    generate_ms: f64,
    /// Wall-clock to parse the scenario back from a CSV file on disk —
    /// the text ingest path `analyze` pays on every run.
    ingest_text_ms: f64,
    /// Wall-clock to open and fully validate the same records as an
    /// `.asc` binary container (mmap, zero-parse) — the ingest path a
    /// `convert`ed input pays instead.
    ingest_binary_ms: f64,
    /// `ingest_text_ms / ingest_binary_ms`.
    ingest_speedup: f64,
    /// Wall-clock of the full analysis at `threads = 1`.
    analyze_serial_ms: f64,
    /// Wall-clock of the full analysis at the requested worker count
    /// (loss correction on, the default).
    analyze_ms: f64,
    /// Same run with loss correction disabled (`loss_correct: false`) —
    /// the difference is the cost of the lossmodel stage plus, on lossy
    /// input, the second α solve.
    analyze_loss_off_ms: f64,
    /// `analyze_serial_ms / analyze_ms`.
    parallel_speedup: f64,
    records_per_sec: f64,
    ci_replicates: usize,
    /// Wall-clock of the faceted `full_report` sweep at `threads = 1`.
    full_report_serial_ms: f64,
    /// Wall-clock of the faceted `full_report` sweep at the requested
    /// worker count.
    full_report_ms: f64,
    /// Peak bytes allocated above entry level during the parallel analyze
    /// run (`alloc-stats` feature only).
    peak_alloc_analyze_bytes: Option<u64>,
    /// Peak bytes allocated above entry level during the parallel
    /// `full_report` sweep (`alloc-stats` feature only).
    peak_alloc_full_report_bytes: Option<u64>,
    /// Tenants driven through the serve-plane gateway (TCP loopback,
    /// framed agent protocol; 1000 at paper scale).
    serve_tenants: usize,
    /// Records/second the gateway ingested across all tenants.
    serve_records_per_sec: f64,
    /// Median per-tenant snapshot latency (what one `/curve` query pays).
    serve_snapshot_p50_ms: f64,
    /// 99th-percentile per-tenant snapshot latency.
    serve_snapshot_p99_ms: f64,
    /// Wall clock of one cold fleet-wide snapshot fan-out via the exec
    /// scheduler at the requested worker count (every report computed).
    serve_fleet_snapshot_ms: f64,
    /// Wall clock of a second fleet-wide snapshot with no new events —
    /// every report served from the per-engine snapshot cache.
    serve_fleet_resnapshot_ms: f64,
    stages: Vec<StageTiming>,
    /// A previous baseline embedded via `--before path.json`, so the
    /// checked-in file carries its own before/after comparison.
    #[serde(skip_serializing_if = "Option::is_none")]
    before: Option<serde_json::Value>,
}

/// Time one full analysis (with CI band) at the given worker count.
fn timed_analysis(
    data: &Dataset,
    slice: &Slice,
    threads: usize,
    loss_correct: bool,
) -> (f64, Vec<StageTiming>, Option<u64>) {
    let recorder = Recorder::new();
    let config = AutoSensConfig {
        threads,
        loss_correct,
        ..AutoSensConfig::default()
    };
    let plan = AnalysisPlan::with_recorder(config, recorder.clone());
    let t = Instant::now();
    let (out, peak) = with_peak(|| {
        plan.run(
            PlanInput::slice(&data.log, slice),
            RunOptions::with_ci(CI_REPLICATES, 0.95),
        )
        .expect("bench-scale analysis succeeds")
    });
    let report = out.report;
    let wall_ms = t.elapsed().as_secs_f64() * 1000.0;
    eprintln!("{}", recorder.finish().render());
    (wall_ms, report.stage_timings.unwrap_or_default(), peak)
}

/// Time the two ingest paths over the same records: CSV parse from disk
/// versus container open (mmap + checksum validation, no parsing). Both
/// runs are cold-process but warm-page-cache, so the comparison isolates
/// decode cost rather than disk latency.
fn timed_ingest(data: &Dataset) -> (f64, f64) {
    use autosens_telemetry::codec;
    use autosens_telemetry::container::{self, MappedLog};
    let dir = std::env::temp_dir();
    let csv = dir.join(format!("autosens-bench-{}.csv", std::process::id()));
    let asc = dir.join(format!("autosens-bench-{}.asc", std::process::id()));
    {
        let mut w = std::io::BufWriter::new(std::fs::File::create(&csv).expect("create csv"));
        codec::write_csv(&data.log, &mut w).expect("write csv");
    }
    container::write_container_file(&data.log, &asc, None).expect("write container");

    let t = Instant::now();
    let parsed = codec::read_csv(std::io::BufReader::new(
        std::fs::File::open(&csv).expect("open csv"),
    ))
    .expect("read csv");
    let text_ms = t.elapsed().as_secs_f64() * 1000.0;

    let t = Instant::now();
    let mapped = MappedLog::open(&asc).expect("open container");
    let binary_ms = t.elapsed().as_secs_f64() * 1000.0;

    assert_eq!(parsed.len(), mapped.len(), "ingest paths disagree on rows");
    let _ = std::fs::remove_file(&csv);
    let _ = std::fs::remove_file(&asc);
    (text_ms, binary_ms)
}

/// Time the faceted `full_report` sweep at the given worker count.
fn timed_full_report(data: &Dataset, slice: &Slice, threads: usize) -> (f64, Option<u64>) {
    let config = AutoSensConfig {
        threads,
        ..AutoSensConfig::default()
    };
    let engine = AutoSens::new(config);
    let t = Instant::now();
    let (_report, peak) = with_peak(|| {
        engine
            .full_report(&data.log, slice, "bench")
            .expect("bench-scale full report succeeds")
    });
    (t.elapsed().as_secs_f64() * 1000.0, peak)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse::<usize>().expect("--threads takes an integer"))
        .unwrap_or(4);
    let before = args
        .iter()
        .position(|a| a == "--before")
        .and_then(|i| args.get(i + 1))
        .map(|path| {
            let text = std::fs::read_to_string(path).expect("--before file readable");
            serde_json::from_str(&text).expect("--before file is JSON")
        });
    let (scenario, name) = if smoke {
        (Scenario::Smoke, "smoke")
    } else {
        (Scenario::PaperScale, "paper-scale")
    };
    let t0 = Instant::now();
    let data = Dataset::from_config(&SimConfig::scenario(scenario), AutoSensConfig::default())
        .expect("preset scenarios are valid");
    let generate_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let (ingest_text_ms, ingest_binary_ms) = timed_ingest(&data);

    let slice = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);

    // Serial reference first, then the scheduler run the baseline reports.
    let (analyze_serial_ms, _, _) = timed_analysis(&data, &slice, 1, true);
    let (analyze_ms, stages, peak_alloc_analyze_bytes) =
        timed_analysis(&data, &slice, threads, true);
    let (analyze_loss_off_ms, _, _) = timed_analysis(&data, &slice, threads, false);
    let (full_report_serial_ms, _) = timed_full_report(&data, &slice, 1);
    let (full_report_ms, peak_alloc_full_report_bytes) = timed_full_report(&data, &slice, threads);

    // Serve-plane load: a real gateway on TCP loopback, every record
    // through the framed agent protocol (smaller fleet for --smoke).
    let serve_config = autosens_experiments::artifacts::load::LoadConfig {
        tenants: if smoke { 100 } else { 1000 },
        snapshot_threads: threads,
        ..Default::default()
    };
    let serve = autosens_experiments::artifacts::load::drive(&serve_config)
        .expect("serve load run completes");

    let baseline = PipelineBaseline {
        scenario: name.to_string(),
        records: data.log.len(),
        threads,
        generate_ms,
        ingest_text_ms,
        ingest_binary_ms,
        ingest_speedup: ingest_text_ms / ingest_binary_ms,
        analyze_serial_ms,
        analyze_ms,
        analyze_loss_off_ms,
        parallel_speedup: analyze_serial_ms / analyze_ms,
        records_per_sec: data.log.len() as f64 / (analyze_ms / 1000.0),
        ci_replicates: CI_REPLICATES,
        full_report_serial_ms,
        full_report_ms,
        peak_alloc_analyze_bytes,
        peak_alloc_full_report_bytes,
        serve_tenants: serve.tenants,
        serve_records_per_sec: serve.records_per_sec,
        serve_snapshot_p50_ms: serve.snapshot_percentile_ms(50.0),
        serve_snapshot_p99_ms: serve.snapshot_percentile_ms(99.0),
        serve_fleet_snapshot_ms: serve.fleet_snapshot_wall_ms,
        serve_fleet_resnapshot_ms: serve.fleet_resnapshot_wall_ms,
        stages,
        before,
    };

    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = "BENCH_pipeline.json";
    std::fs::write(path, format!("{json}\n")).expect("write baseline");
    eprintln!(
        "wrote {path}: {} records analyzed in {:.1} ms at {} thread(s) \
         ({:.1} ms serial, {:.1} ms loss-correction off, {:.0} records/s); \
         ingest text {:.1} ms vs binary {:.1} ms ({:.1}x); \
         full_report {:.1} ms \
         ({:.1} ms serial), peak alloc analyze={:?} full_report={:?}; \
         serve: {} tenants at {:.0} records/s, snapshot p50 {:.2} ms p99 {:.2} ms",
        baseline.records,
        baseline.analyze_ms,
        baseline.threads,
        baseline.analyze_serial_ms,
        baseline.analyze_loss_off_ms,
        baseline.records_per_sec,
        baseline.ingest_text_ms,
        baseline.ingest_binary_ms,
        baseline.ingest_speedup,
        baseline.full_report_ms,
        baseline.full_report_serial_ms,
        baseline.peak_alloc_analyze_bytes,
        baseline.peak_alloc_full_report_bytes,
        baseline.serve_tenants,
        baseline.serve_records_per_sec,
        baseline.serve_snapshot_p50_ms,
        baseline.serve_snapshot_p99_ms
    );
}
