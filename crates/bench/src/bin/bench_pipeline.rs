//! `bench_pipeline` — one-shot pipeline throughput baseline.
//!
//! Generates the paper-scale scenario (pass `--smoke` for a quick run),
//! runs the full analysis (with a bootstrap confidence band) under a
//! collecting recorder, and writes `BENCH_pipeline.json`: total
//! wall-clock, per-stage timings, and a records/second throughput figure.
//! The checked-in copy at the repo root is the baseline future
//! performance PRs diff against; regenerate with
//!
//! ```text
//! cargo run --release -p autosens-bench --bin bench_pipeline
//! ```

use std::time::Instant;

use autosens_core::{AutoSens, AutoSensConfig};
use autosens_experiments::dataset::Dataset;
use autosens_obs::{Recorder, StageTiming};
use autosens_sim::{Scenario, SimConfig};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};
use serde::Serialize;

/// Bootstrap replicates included in the timed run.
const CI_REPLICATES: usize = 50;

#[derive(Serialize)]
struct PipelineBaseline {
    scenario: String,
    records: usize,
    generate_ms: f64,
    analyze_ms: f64,
    records_per_sec: f64,
    ci_replicates: usize,
    stages: Vec<StageTiming>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scenario, name) = if smoke {
        (Scenario::Smoke, "smoke")
    } else {
        (Scenario::PaperScale, "paper-scale")
    };
    let t0 = Instant::now();
    let data = Dataset::from_config(&SimConfig::scenario(scenario), AutoSensConfig::default())
        .expect("preset scenarios are valid");
    let generate_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let recorder = Recorder::new();
    let engine = AutoSens::with_recorder(AutoSensConfig::default(), recorder.clone());
    let slice = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);

    let t1 = Instant::now();
    let (report, _ci) = engine
        .analyze_slice_with_ci(&data.log, &slice, CI_REPLICATES, 0.95)
        .expect("bench-scale analysis succeeds");
    let analyze_ms = t1.elapsed().as_secs_f64() * 1000.0;

    let baseline = PipelineBaseline {
        scenario: name.to_string(),
        records: data.log.len(),
        generate_ms,
        analyze_ms,
        records_per_sec: data.log.len() as f64 / (analyze_ms / 1000.0),
        ci_replicates: CI_REPLICATES,
        stages: report.stage_timings.unwrap_or_default(),
    };

    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = "BENCH_pipeline.json";
    std::fs::write(path, format!("{json}\n")).expect("write baseline");
    eprintln!(
        "wrote {path}: {} records analyzed in {:.1} ms ({:.0} records/s)",
        baseline.records, baseline.analyze_ms, baseline.records_per_sec
    );
    eprintln!("{}", recorder.finish().render());
}
