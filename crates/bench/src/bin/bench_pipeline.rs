//! `bench_pipeline` — one-shot pipeline throughput baseline.
//!
//! Generates the paper-scale scenario (pass `--smoke` for a quick run),
//! runs the full analysis (with a bootstrap confidence band) twice — once
//! serially (`threads = 1`) and once on the chunked scheduler with the
//! requested worker count (`--threads N`, default 4) — and writes
//! `BENCH_pipeline.json`: total wall-clock for both runs, per-stage
//! timings of the parallel run, and a records/second throughput figure.
//! The checked-in copy at the repo root is the baseline future
//! performance PRs diff against; regenerate with
//!
//! ```text
//! cargo run --release -p autosens-bench --bin bench_pipeline
//! ```

use std::time::Instant;

use autosens_core::{AutoSens, AutoSensConfig};
use autosens_experiments::dataset::Dataset;
use autosens_obs::{Recorder, StageTiming};
use autosens_sim::{Scenario, SimConfig};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};
use serde::Serialize;

/// Bootstrap replicates included in the timed run.
const CI_REPLICATES: usize = 50;

#[derive(Serialize)]
struct PipelineBaseline {
    scenario: String,
    records: usize,
    threads: usize,
    generate_ms: f64,
    /// Wall-clock of the full analysis at `threads = 1`.
    analyze_serial_ms: f64,
    /// Wall-clock of the full analysis at the requested worker count.
    analyze_ms: f64,
    /// `analyze_serial_ms / analyze_ms`.
    parallel_speedup: f64,
    records_per_sec: f64,
    ci_replicates: usize,
    stages: Vec<StageTiming>,
}

/// Time one full analysis (with CI band) at the given worker count.
fn timed_analysis(data: &Dataset, slice: &Slice, threads: usize) -> (f64, Vec<StageTiming>) {
    let recorder = Recorder::new();
    let config = AutoSensConfig {
        threads,
        ..AutoSensConfig::default()
    };
    let engine = AutoSens::with_recorder(config, recorder.clone());
    let t = Instant::now();
    let (report, _ci) = engine
        .analyze_slice_with_ci(&data.log, slice, CI_REPLICATES, 0.95)
        .expect("bench-scale analysis succeeds");
    let wall_ms = t.elapsed().as_secs_f64() * 1000.0;
    eprintln!("{}", recorder.finish().render());
    (wall_ms, report.stage_timings.unwrap_or_default())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse::<usize>().expect("--threads takes an integer"))
        .unwrap_or(4);
    let (scenario, name) = if smoke {
        (Scenario::Smoke, "smoke")
    } else {
        (Scenario::PaperScale, "paper-scale")
    };
    let t0 = Instant::now();
    let data = Dataset::from_config(&SimConfig::scenario(scenario), AutoSensConfig::default())
        .expect("preset scenarios are valid");
    let generate_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let slice = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);

    // Serial reference first, then the scheduler run the baseline reports.
    let (analyze_serial_ms, _) = timed_analysis(&data, &slice, 1);
    let (analyze_ms, stages) = timed_analysis(&data, &slice, threads);

    let baseline = PipelineBaseline {
        scenario: name.to_string(),
        records: data.log.len(),
        threads,
        generate_ms,
        analyze_serial_ms,
        analyze_ms,
        parallel_speedup: analyze_serial_ms / analyze_ms,
        records_per_sec: data.log.len() as f64 / (analyze_ms / 1000.0),
        ci_replicates: CI_REPLICATES,
        stages,
    };

    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = "BENCH_pipeline.json";
    std::fs::write(path, format!("{json}\n")).expect("write baseline");
    eprintln!(
        "wrote {path}: {} records analyzed in {:.1} ms at {} thread(s) \
         ({:.1} ms serial, {:.0} records/s)",
        baseline.records,
        baseline.analyze_ms,
        baseline.threads,
        baseline.analyze_serial_ms,
        baseline.records_per_sec
    );
}
