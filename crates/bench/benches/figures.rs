//! One criterion bench per paper artifact: each measures the cost of
//! regenerating that table/figure end-to-end (analysis only; the shared
//! dataset is generated once outside the timing loops).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use autosens_bench::dataset;
use autosens_experiments::artifacts;

fn bench_artifacts(c: &mut Criterion) {
    let data = dataset();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for id in artifacts::ids() {
        group.bench_function(*id, |b| {
            b.iter(|| {
                let artifact = artifacts::by_id(data, id).expect("known id");
                black_box(artifact.checks.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_artifacts);
criterion_main!(benches);
