//! Component benches: the building blocks of the pipeline, measured in
//! isolation — simulator throughput, histogram fill, nearest-in-time
//! lookups, unbiased sampling, Savitzky–Golay smoothing, α estimation, and
//! the codecs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use autosens_bench::dataset;
use autosens_core::alpha::{estimate_alpha, Grouping};
use autosens_core::biased::biased_histogram;
use autosens_core::config::AutoSensConfig;
use autosens_core::unbiased::unbiased_histogram;
use autosens_sim::{generate, Scenario, SimConfig};
use autosens_stats::savgol::SavGol;
use autosens_telemetry::codec;
use autosens_telemetry::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_simulator(c: &mut Criterion) {
    let mut cfg = SimConfig::scenario(Scenario::Smoke);
    cfg.days = 3;
    cfg.n_business = 100;
    cfg.n_consumer = 100;
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("generate_3d_200u", |b| {
        b.iter(|| {
            let (log, _) = generate(black_box(&cfg)).expect("valid");
            black_box(log.len())
        })
    });
    group.finish();
}

fn bench_histograms(c: &mut Criterion) {
    let data = dataset();
    let binner = AutoSensConfig::default().binner().expect("valid");
    let mut group = c.benchmark_group("histogram");
    group.throughput(Throughput::Elements(data.log.len() as u64));
    group.bench_function("biased_fill", |b| {
        b.iter(|| black_box(biased_histogram(&data.log.view(), &binner).total()))
    });
    group.finish();
}

fn bench_nearest(c: &mut Criterion) {
    let data = dataset();
    let span = data.log.end_time().expect("non-empty").millis();
    let mut group = c.benchmark_group("lookup");
    group.bench_function("nearest_in_time_10k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                let t = rng.gen_range(0..span);
                let (lo, _) = data.log.nearest_in_time(SimTime(t)).expect("sorted");
                acc ^= lo;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_unbiased(c: &mut Criterion) {
    let data = dataset();
    let binner = AutoSensConfig::default().binner().expect("valid");
    let mut group = c.benchmark_group("unbiased");
    group.sample_size(20);
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("draws_100k", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let h = unbiased_histogram(&data.log.view(), &binner, 100_000, &mut rng).expect("ok");
            black_box(h.total())
        })
    });
    group.finish();
}

fn bench_savgol(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let series: Vec<f64> = (0..300).map(|_| rng.gen::<f64>()).collect();
    let mut group = c.benchmark_group("savgol");
    group.bench_function("construct_101_3", |b| {
        b.iter(|| black_box(SavGol::new(101, 3).expect("valid").window()))
    });
    let filter = SavGol::new(101, 3).expect("valid");
    group.bench_function("smooth_300bins", |b| {
        b.iter(|| black_box(filter.smooth(&series).expect("ok").len()))
    });
    group.finish();
}

fn bench_alpha(c: &mut Criterion) {
    let data = dataset();
    let cfg = AutoSensConfig::default();
    let binner = cfg.binner().expect("valid");
    let mut group = c.benchmark_group("alpha");
    group.sample_size(10);
    group.bench_function("estimate_hour_slots", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            let est = estimate_alpha(
                &data.log.view(),
                &binner,
                Grouping::HourSlots,
                &cfg,
                &mut rng,
            )
            .expect("ok");
            black_box(est.groups.len())
        })
    });
    group.finish();
}

fn bench_sessions(c: &mut Criterion) {
    use autosens_core::abandonment::session_continuation;
    use autosens_sim::sessions::{generate_sessions, SessionConfig};
    let mut cfg = SimConfig::scenario(Scenario::Smoke);
    cfg.days = 5;
    cfg.n_business = 150;
    cfg.n_consumer = 150;
    let scfg = SessionConfig::default();
    let mut group = c.benchmark_group("sessions");
    group.sample_size(10);
    group.bench_function("generate_sessions_5d_300u", |b| {
        b.iter(|| {
            let (log, _) = generate_sessions(black_box(&cfg), &scfg).expect("valid");
            black_box(log.len())
        })
    });
    let (log, _) = generate_sessions(&cfg, &scfg).expect("valid");
    let acfg = AutoSensConfig::default();
    group.bench_function("abandonment_analysis", |b| {
        b.iter(|| {
            let report = session_continuation(&log, &acfg, 600_000).expect("fits");
            black_box(report.stats.n_sessions)
        })
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let data = dataset();
    let mut csv = Vec::new();
    codec::write_csv(&data.log, &mut csv).expect("serialize");
    let mut group = c.benchmark_group("codec");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(csv.len() as u64));
    group.bench_function("write_csv", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(csv.len());
            codec::write_csv(&data.log, &mut out).expect("ok");
            black_box(out.len())
        })
    });
    group.bench_function("read_csv", |b| {
        b.iter(|| black_box(codec::read_csv(csv.as_slice()).expect("ok").len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_histograms,
    bench_nearest,
    bench_unbiased,
    bench_savgol,
    bench_alpha,
    bench_sessions,
    bench_codec
);
criterion_main!(benches);
