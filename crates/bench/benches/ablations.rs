//! Ablation benches for the design choices called out in DESIGN.md:
//! smoothing operator, α-correction on/off, the unbiased-draw budget, the
//! number of α reference slots, and the user sensing model in the
//! simulator. Criterion measures the runtime cost of each variant; the
//! corresponding *quality* ablations live in `tests/ablations.rs` at the
//! workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use autosens_bench::dataset;
use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_sim::preference::SensingMode;
use autosens_sim::{generate, Scenario, SimConfig};
use autosens_stats::{savgol::SavGol, smoothing};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_smoothing_choice(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let series: Vec<f64> = (0..300).map(|_| rng.gen::<f64>()).collect();
    let savgol = SavGol::new(101, 3).expect("valid");
    let mut group = c.benchmark_group("ablation_smoothing");
    group.bench_function("savgol_101_3", |b| {
        b.iter(|| black_box(savgol.smooth(&series).expect("ok").len()))
    });
    group.bench_function("moving_average_101", |b| {
        b.iter(|| black_box(smoothing::moving_average(&series, 101).expect("ok").len()))
    });
    group.bench_function("median_filter_101", |b| {
        b.iter(|| black_box(smoothing::median_filter(&series, 101).expect("ok").len()))
    });
    group.finish();
}

fn bench_alpha_correction(c: &mut Criterion) {
    let data = dataset();
    let mut group = c.benchmark_group("ablation_alpha");
    group.sample_size(10);
    for on in [true, false] {
        let cfg = AutoSensConfig {
            alpha_correction: on,
            ..AutoSensConfig::default()
        };
        let plan = AnalysisPlan::new(cfg);
        group.bench_function(if on { "corrected" } else { "uncorrected" }, |b| {
            b.iter(|| {
                let out = plan
                    .run(PlanInput::log(&data.log), RunOptions::default())
                    .expect("fits");
                black_box(out.report.n_actions)
            })
        });
    }
    group.finish();
}

fn bench_draw_budget(c: &mut Criterion) {
    let data = dataset();
    let mut group = c.benchmark_group("ablation_draws");
    group.sample_size(10);
    for draws in [48_000usize, 120_000, 480_000] {
        let cfg = AutoSensConfig {
            unbiased_draws: draws,
            ..AutoSensConfig::default()
        };
        let plan = AnalysisPlan::new(cfg);
        group.bench_with_input(BenchmarkId::from_parameter(draws), &draws, |b, _| {
            b.iter(|| {
                let out = plan
                    .run(PlanInput::log(&data.log), RunOptions::default())
                    .expect("fits");
                black_box(out.report.n_actions)
            })
        });
    }
    group.finish();
}

fn bench_reference_slots(c: &mut Criterion) {
    let data = dataset();
    let mut group = c.benchmark_group("ablation_references");
    group.sample_size(10);
    for refs in [1usize, 4, 8] {
        let cfg = AutoSensConfig {
            alpha_references: refs,
            ..AutoSensConfig::default()
        };
        let plan = AnalysisPlan::new(cfg);
        group.bench_with_input(BenchmarkId::from_parameter(refs), &refs, |b, _| {
            b.iter(|| {
                let out = plan
                    .run(PlanInput::log(&data.log), RunOptions::default())
                    .expect("fits");
                black_box(out.report.n_actions)
            })
        });
    }
    group.finish();
}

fn bench_sensing_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sensing");
    group.sample_size(10);
    for (name, mode) in [
        ("oracle", SensingMode::Oracle),
        ("level", SensingMode::Level),
        ("ema", SensingMode::Ema { beta: 0.8 }),
    ] {
        let mut cfg = SimConfig::scenario(Scenario::Smoke);
        cfg.days = 3;
        cfg.n_business = 100;
        cfg.n_consumer = 100;
        cfg.sensing = mode;
        group.bench_function(name, |b| {
            b.iter(|| {
                let (log, _) = generate(black_box(&cfg)).expect("valid");
                black_box(log.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_smoothing_choice,
    bench_alpha_correction,
    bench_draw_budget,
    bench_reference_slots,
    bench_sensing_modes
);
criterion_main!(benches);
