//! Statistics substrate for the AutoSens reproduction.
//!
//! The AutoSens methodology (IMC 2021) is built from a small number of
//! classical statistical primitives that have no mature, self-contained Rust
//! implementation: fixed-width histograms and the PDFs derived from them,
//! Savitzky–Golay least-squares smoothing, the von Neumann successive
//! difference test, rank correlation, and a handful of distribution samplers.
//! This crate implements all of them from first principles so the rest of the
//! workspace depends only on `rand` and `serde`.
//!
//! Modules:
//!
//! * [`binning`] — fixed-width bin arithmetic shared by histograms and PDFs.
//! * [`histogram`] — weighted histograms over a [`binning::Binner`].
//! * [`pdf`] — probability density functions, CDFs, density ratios.
//! * [`descriptive`] — means, variances, medians, quantiles.
//! * [`succdiff`] — mean successive difference vs. mean absolute difference
//!   (the Figure 1 locality diagnostic) and the von Neumann ratio.
//! * [`correlation`] — Pearson and Spearman correlation.
//! * [`linalg`] — small dense matrices and linear solves (used by `savgol`).
//! * [`savgol`] — Savitzky–Golay filters computed from first principles.
//! * [`smoothing`] — moving-average and median filters (ablation baselines).
//! * [`dist`] — seeded samplers for Normal/LogNormal/Exponential/Pareto/Poisson.
//! * [`sampling`] — shuffles, bootstrap resampling, reservoir sampling.
//! * [`timeseries`] — fixed-window aggregation of timestamped values.
//! * [`ecdf`] — empirical CDFs and Kolmogorov–Smirnov distances.
//!
//! All stochastic routines take an explicit `&mut impl Rng`; nothing in this
//! crate reads ambient entropy, so downstream pipelines are reproducible from
//! a seed.

pub mod autocorr;
pub mod binning;
pub mod correlation;
pub mod descriptive;
pub mod dist;
pub mod ecdf;
pub mod error;
pub mod histogram;
pub mod linalg;
pub mod pdf;
pub mod quantile_stream;
pub mod sampling;
pub mod savgol;
pub mod smoothing;
pub mod succdiff;
pub mod timeseries;

pub use binning::Binner;
pub use error::StatsError;
pub use histogram::Histogram;
pub use pdf::{Cdf, Pdf, RatioPolicy};
pub use savgol::SavGol;
