//! Autocorrelation and decorrelation-time estimation.
//!
//! The effective sample size of the unbiased-distribution estimate is
//! bounded by the number of independent congestion *excursions* in the
//! analysis span (DESIGN.md §8), i.e. span / decorrelation time. This
//! module estimates the autocorrelation function of a regularly sampled
//! series and the lag at which it first drops below `1/e` — surfaced by
//! the diagnostics so operators can judge how much data they need.

use crate::error::{invalid, StatsError};

/// Autocorrelation of a series at lags `0..=max_lag`.
///
/// Uses the biased (1/n) normalization, which guarantees values in
/// `[-1, 1]` and a positive-semidefinite sequence. Errors on series
/// shorter than `max_lag + 2` or constant series.
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Result<Vec<f64>, StatsError> {
    let n = series.len();
    if n < max_lag + 2 {
        return Err(invalid(
            "max_lag",
            format!(
                "series of length {n} supports lags < {}",
                n.saturating_sub(1)
            ),
        ));
    }
    if series.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFinite("autocorrelation input"));
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    if var == 0.0 {
        return Err(invalid("series", "constant series: ACF undefined"));
    }
    let mut acf = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let cov: f64 = series[..n - lag]
            .iter()
            .zip(&series[lag..])
            .map(|(a, b)| (a - mean) * (b - mean))
            .sum::<f64>()
            / n as f64;
        acf.push(cov / var);
    }
    Ok(acf)
}

/// The first lag at which the ACF drops below `1/e` (the decorrelation
/// time, in sample intervals). Returns `None` when the ACF stays above
/// `1/e` through `max_lag` (the series is correlated beyond the horizon).
pub fn decorrelation_lag(series: &[f64], max_lag: usize) -> Result<Option<usize>, StatsError> {
    let acf = autocorrelation(series, max_lag)?;
    let threshold = (-1.0f64).exp();
    Ok(acf.iter().position(|&r| r < threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn acf_at_lag_zero_is_one() {
        let s: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin()).collect();
        let acf = autocorrelation(&s, 10).unwrap();
        assert!((acf[0] - 1.0).abs() < 1e-12);
        assert!(acf.iter().all(|r| r.abs() <= 1.0 + 1e-9));
        assert_eq!(acf.len(), 11);
    }

    #[test]
    fn iid_series_decorrelates_immediately() {
        let mut rng = StdRng::seed_from_u64(1);
        let s: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        let acf = autocorrelation(&s, 5).unwrap();
        for &r in &acf[1..] {
            assert!(r.abs() < 0.05, "lag acf = {r}");
        }
        assert_eq!(decorrelation_lag(&s, 5).unwrap(), Some(1));
    }

    #[test]
    fn ar1_decorrelation_matches_theory() {
        // AR(1) with coefficient rho has ACF rho^k; 1/e crossing at
        // k ~ -1/ln(rho).
        let rho: f64 = 0.95;
        let mut rng = StdRng::seed_from_u64(2);
        let mut x = 0.0;
        let s: Vec<f64> = (0..200_000)
            .map(|_| {
                x = rho * x + crate::dist::standard_normal(&mut rng);
                x
            })
            .collect();
        let expect = (-1.0 / rho.ln()).round() as usize; // ~19.5
        let lag = decorrelation_lag(&s, 100).unwrap().expect("crosses");
        assert!(
            (lag as i64 - expect as i64).abs() <= 4,
            "lag {lag} vs theory {expect}"
        );
    }

    #[test]
    fn strongly_correlated_series_may_never_cross() {
        // A slow trend stays above 1/e for small max_lag.
        let s: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert_eq!(decorrelation_lag(&s, 20).unwrap(), None);
    }

    #[test]
    fn error_cases() {
        assert!(autocorrelation(&[1.0, 2.0], 5).is_err());
        assert!(autocorrelation(&[1.0; 50], 5).is_err());
        assert!(autocorrelation(&[1.0, f64::NAN, 2.0, 3.0], 1).is_err());
        assert!(decorrelation_lag(&[], 3).is_err());
    }
}
