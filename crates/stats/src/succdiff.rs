//! Successive-difference locality diagnostics (paper §2.1, Figure 1).
//!
//! AutoSens requires latency to be *temporally local* (predictable) for a
//! user preference to be actionable. The paper tests this with the ratio of
//! the **mean successive difference** (MSD) — the average absolute difference
//! between consecutive samples of the series — and the **mean absolute
//! difference** (MAD) — the average absolute difference over *all* pairs,
//! i.e. the Gini mean difference. For an exchangeable (shuffled) series the
//! expected MSD equals the MAD, so the ratio is ~1; for a series with strong
//! locality the ratio is well below 1; for a sorted series it approaches 0.
//!
//! The module also provides the classical von Neumann ratio (mean *squared*
//! successive difference over the variance), whose expectation is 2 for an
//! i.i.d. series.

use rand::Rng;

use crate::error::StatsError;
use crate::sampling::shuffled;

/// Mean absolute difference between consecutive samples:
/// `MSD = (1/(n-1)) Σ |x[i+1] - x[i]|`.
pub fn mean_successive_difference(series: &[f64]) -> Result<f64, StatsError> {
    if series.len() < 2 {
        return Err(StatsError::EmptyInput("MSD needs >= 2 points"));
    }
    if series.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFinite("MSD input"));
    }
    let sum: f64 = series.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
    Ok(sum / (series.len() - 1) as f64)
}

/// Mean absolute difference over all pairs (Gini mean difference):
/// `MAD = (2 / (n(n-1))) Σ_{i<j} |x[i] - x[j]|`.
///
/// Computed in O(n log n) via the sorted-order identity
/// `Σ_{i<j} (x_(j) - x_(i)) = Σ_k (2k - n + 1) x_(k)` (0-indexed).
pub fn mean_absolute_difference(series: &[f64]) -> Result<f64, StatsError> {
    let n = series.len();
    if n < 2 {
        return Err(StatsError::EmptyInput("MAD needs >= 2 points"));
    }
    if series.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFinite("MAD input"));
    }
    let mut sorted = series.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite checked above"));
    let sum: f64 = sorted
        .iter()
        .enumerate()
        .map(|(k, x)| (2.0 * k as f64 - (n - 1) as f64) * x)
        .sum();
    Ok(2.0 * sum / (n as f64 * (n - 1) as f64))
}

/// The MSD/MAD locality ratio. ~1 for exchangeable series, ≪1 for series
/// with temporal locality, →0 for a sorted series.
///
/// Errors when MAD is zero (constant series), since the ratio is undefined —
/// a constant latency series carries no locality signal at all.
pub fn msd_mad_ratio(series: &[f64]) -> Result<f64, StatsError> {
    let msd = mean_successive_difference(series)?;
    let mad = mean_absolute_difference(series)?;
    if mad == 0.0 {
        return Err(crate::error::invalid(
            "series",
            "constant series: MAD is zero, MSD/MAD undefined",
        ));
    }
    Ok(msd / mad)
}

/// The three MSD/MAD ratios plotted in the paper's Figure 1: the series as
/// observed, the same values randomly shuffled, and the same values sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityRatios {
    /// MSD/MAD of the series in observed order.
    pub actual: f64,
    /// MSD/MAD after a uniform random shuffle (expected ≈ 1).
    pub shuffled: f64,
    /// MSD/MAD after sorting ascending (the minimum attainable; → 0).
    pub sorted: f64,
}

/// Compute [`LocalityRatios`] for a series, shuffling with the given RNG.
pub fn locality_ratios<R: Rng>(series: &[f64], rng: &mut R) -> Result<LocalityRatios, StatsError> {
    let actual = msd_mad_ratio(series)?;
    let shuf = shuffled(series, rng);
    let shuffled_ratio = msd_mad_ratio(&shuf)?;
    let mut sorted = series.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite checked in msd_mad_ratio"));
    let sorted_ratio = msd_mad_ratio(&sorted)?;
    Ok(LocalityRatios {
        actual,
        shuffled: shuffled_ratio,
        sorted: sorted_ratio,
    })
}

/// Von Neumann ratio: mean squared successive difference divided by the
/// (biased, n-denominator) variance. Expectation 2 for an i.i.d. series;
/// below 2 indicates positive serial correlation.
pub fn von_neumann_ratio(series: &[f64]) -> Result<f64, StatsError> {
    let n = series.len();
    if n < 2 {
        return Err(StatsError::EmptyInput(
            "von Neumann ratio needs >= 2 points",
        ));
    }
    if series.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFinite("von Neumann input"));
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    if var == 0.0 {
        return Err(crate::error::invalid(
            "series",
            "constant series: variance is zero, von Neumann ratio undefined",
        ));
    }
    let mssd: f64 = series
        .windows(2)
        .map(|w| (w[1] - w[0]) * (w[1] - w[0]))
        .sum::<f64>()
        / (n - 1) as f64;
    Ok(mssd / var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn msd_hand_computed() {
        // |2-1| + |0-2| + |4-0| = 7, over 3 gaps.
        let s = [1.0, 2.0, 0.0, 4.0];
        assert!((mean_successive_difference(&s).unwrap() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mad_matches_brute_force() {
        let s: [f64; 6] = [1.0, 2.0, 0.0, 4.0, -3.0, 2.5];
        let n = s.len();
        let mut brute = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                brute += (s[i] - s[j]).abs();
            }
        }
        brute *= 2.0 / (n as f64 * (n - 1) as f64);
        assert!((mean_absolute_difference(&s).unwrap() - brute).abs() < 1e-12);
    }

    #[test]
    fn sorted_series_minimizes_ratio() {
        // For a sorted series MSD = (max-min)/(n-1), the smallest possible.
        let s = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ratio = msd_mad_ratio(&s).unwrap();
        // MSD = 1, MAD = 3 -> ratio = 1/3; any permutation has MSD >= 1.
        assert!((ratio - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn alternating_series_has_ratio_above_one() {
        let s = [0.0, 10.0, 0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        // MSD = 10, MAD = 2*16/ (8*7) * ... compute: equal halves ->
        // mean pairwise |diff| = 10 * (4*4*2)/(8*7) = 320/56 = 5.714...
        let ratio = msd_mad_ratio(&s).unwrap();
        assert!(ratio > 1.5, "ratio = {ratio}");
    }

    #[test]
    fn shuffled_iid_series_ratio_near_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let series: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        let ratio = msd_mad_ratio(&series).unwrap();
        assert!((ratio - 1.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn local_series_ratio_well_below_one() {
        // Slow random walk: consecutive samples differ by ~0.01 while the
        // overall spread is large.
        let mut rng = StdRng::seed_from_u64(11);
        let mut x = 0.0;
        let series: Vec<f64> = (0..20_000)
            .map(|_| {
                x += rng.gen::<f64>() - 0.5;
                x
            })
            .collect();
        let ratio = msd_mad_ratio(&series).unwrap();
        assert!(ratio < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn locality_ratios_ordering() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = 50.0;
        let series: Vec<f64> = (0..5_000)
            .map(|_| {
                x = 0.99 * x + rng.gen::<f64>();
                x
            })
            .collect();
        let r = locality_ratios(&series, &mut rng).unwrap();
        assert!(r.sorted < r.actual, "{r:?}");
        assert!(r.actual < r.shuffled, "{r:?}");
        assert!((r.shuffled - 1.0).abs() < 0.1, "{r:?}");
    }

    #[test]
    fn von_neumann_iid_near_two() {
        let mut rng = StdRng::seed_from_u64(5);
        let series: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        let vn = von_neumann_ratio(&series).unwrap();
        assert!((vn - 2.0).abs() < 0.1, "vn = {vn}");
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(mean_successive_difference(&[1.0]).is_err());
        assert!(mean_absolute_difference(&[1.0]).is_err());
        assert!(msd_mad_ratio(&[5.0, 5.0, 5.0]).is_err());
        assert!(von_neumann_ratio(&[5.0, 5.0]).is_err());
        assert!(mean_successive_difference(&[1.0, f64::NAN]).is_err());
        assert!(mean_absolute_difference(&[1.0, f64::INFINITY]).is_err());
        assert!(von_neumann_ratio(&[1.0, f64::NAN]).is_err());
    }
}
