//! Probability density functions over fixed-width bins, and the density
//! ratio at the heart of AutoSens (`preference = B/U`).

use serde::{Deserialize, Serialize};

use crate::binning::Binner;
use crate::error::{invalid, StatsError};

/// How to handle bins where the denominator density is zero (or both are)
/// when computing a density ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RatioPolicy {
    /// Emit `f64::NAN` for undefined bins; callers must filter.
    NaN,
    /// Emit `0.0` when the numerator is zero too, `f64::NAN` otherwise.
    ZeroOverZeroIsZero,
    /// Skip undefined bins entirely (the returned series contains only
    /// defined points, paired with their bin centers).
    Skip,
}

/// A discretized probability density function.
///
/// Densities are per-unit-of-x; `density * bin_width` is the bin probability
/// and the densities integrate to 1 over the binned range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pdf {
    binner: Binner,
    densities: Vec<f64>,
}

impl Pdf {
    /// Construct from raw densities. Verifies length, finiteness and
    /// non-negativity, but intentionally does not force exact unit mass
    /// (ratios and smoothed curves need not be normalized).
    pub fn from_densities(binner: Binner, densities: Vec<f64>) -> Result<Self, StatsError> {
        if densities.len() != binner.n_bins() {
            return Err(invalid(
                "densities",
                format!(
                    "length {} does not match bin count {}",
                    densities.len(),
                    binner.n_bins()
                ),
            ));
        }
        if densities.iter().any(|d| !d.is_finite() || *d < 0.0) {
            return Err(StatsError::NonFinite("pdf densities"));
        }
        Ok(Pdf { binner, densities })
    }

    /// The binner underlying this PDF.
    pub fn binner(&self) -> &Binner {
        &self.binner
    }

    /// Density of bin `i`.
    pub fn density(&self, i: usize) -> f64 {
        self.densities[i]
    }

    /// All densities, in bin order.
    pub fn densities(&self) -> &[f64] {
        &self.densities
    }

    /// Density at a continuous point `x` (the density of the containing bin),
    /// or `None` if `x` falls outside the binned range.
    pub fn density_at(&self, x: f64) -> Option<f64> {
        self.binner.index_of(x).map(|i| self.densities[i])
    }

    /// Total probability mass (should be ~1 for a normalized PDF).
    pub fn mass(&self) -> f64 {
        self.densities.iter().sum::<f64>() * self.binner.width()
    }

    /// Mean of the distribution, using bin centers.
    pub fn mean(&self) -> f64 {
        let w = self.binner.width();
        self.densities
            .iter()
            .enumerate()
            .map(|(i, d)| d * w * self.binner.center(i))
            .sum()
    }

    /// Cumulative distribution function.
    pub fn cdf(&self) -> Cdf {
        let w = self.binner.width();
        let mut acc = 0.0;
        let cumulative = self
            .densities
            .iter()
            .map(|d| {
                acc += d * w;
                acc
            })
            .collect();
        Cdf {
            binner: self.binner.clone(),
            cumulative,
        }
    }

    /// Per-bin ratio `self / other` under the given zero-handling policy.
    ///
    /// Returns `(bin centers, ratios)`; with [`RatioPolicy::Skip`] the
    /// vectors contain only the defined bins, otherwise all bins.
    pub fn ratio(
        &self,
        other: &Pdf,
        policy: RatioPolicy,
    ) -> Result<(Vec<f64>, Vec<f64>), StatsError> {
        if !self.binner.same_grid(&other.binner) {
            return Err(StatsError::BinnerMismatch);
        }
        let mut xs = Vec::with_capacity(self.densities.len());
        let mut rs = Vec::with_capacity(self.densities.len());
        for i in 0..self.densities.len() {
            let num = self.densities[i];
            let den = other.densities[i];
            let val = if den > 0.0 {
                num / den
            } else {
                match policy {
                    RatioPolicy::NaN => f64::NAN,
                    RatioPolicy::ZeroOverZeroIsZero => {
                        if num == 0.0 {
                            0.0
                        } else {
                            f64::NAN
                        }
                    }
                    RatioPolicy::Skip => {
                        continue;
                    }
                }
            };
            xs.push(self.binner.center(i));
            rs.push(val);
        }
        Ok((xs, rs))
    }

    /// Kolmogorov–Smirnov distance between two PDFs on the same grid:
    /// the maximum absolute difference between their CDFs.
    pub fn ks_distance(&self, other: &Pdf) -> Result<f64, StatsError> {
        if !self.binner.same_grid(&other.binner) {
            return Err(StatsError::BinnerMismatch);
        }
        let a = self.cdf();
        let b = other.cdf();
        Ok(a.cumulative
            .iter()
            .zip(&b.cumulative)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max))
    }
}

/// A cumulative distribution function derived from a [`Pdf`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    binner: Binner,
    cumulative: Vec<f64>,
}

impl Cdf {
    /// `P(X <= right edge of the bin containing x)`; 0 below the range and
    /// the total mass above it.
    pub fn at(&self, x: f64) -> f64 {
        if x < self.binner.lo() {
            return 0.0;
        }
        match self.binner.index_of(x) {
            Some(i) => self.cumulative[i],
            None => *self.cumulative.last().unwrap_or(&0.0),
        }
    }

    /// Smallest bin center whose cumulative probability reaches `p`.
    ///
    /// Returns `None` for `p` outside `(0, 1]` or when the mass never
    /// reaches `p` (possible for sub-normalized PDFs).
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&p) || p == 0.0 {
            return None;
        }
        self.cumulative
            .iter()
            .position(|&c| c >= p)
            .map(|i| self.binner.center(i))
    }

    /// The cumulative values per bin.
    pub fn cumulative(&self) -> &[f64] {
        &self.cumulative
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::OutOfRange;
    use crate::histogram::Histogram;

    fn binner() -> Binner {
        Binner::new(0.0, 100.0, 10.0, OutOfRange::Discard).unwrap()
    }

    fn uniform_pdf() -> Pdf {
        Pdf::from_densities(binner(), vec![0.01; 10]).unwrap()
    }

    #[test]
    fn from_densities_validates() {
        assert!(Pdf::from_densities(binner(), vec![0.01; 9]).is_err());
        assert!(Pdf::from_densities(binner(), vec![-0.01; 10]).is_err());
        let mut bad = vec![0.01; 10];
        bad[3] = f64::NAN;
        assert!(Pdf::from_densities(binner(), bad).is_err());
    }

    #[test]
    fn mass_and_mean_of_uniform() {
        let p = uniform_pdf();
        assert!((p.mass() - 1.0).abs() < 1e-12);
        assert!((p.mean() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn density_at_maps_through_binner() {
        let p = uniform_pdf();
        assert_eq!(p.density_at(55.0), Some(0.01));
        assert_eq!(p.density_at(-1.0), None);
        assert_eq!(p.density_at(100.0), None);
    }

    #[test]
    fn cdf_monotone_and_quantiles() {
        let h = Histogram::from_values(binner(), &[5.0, 15.0, 25.0, 35.0]);
        let cdf = h.to_pdf().unwrap().cdf();
        assert!((cdf.at(9.0) - 0.25).abs() < 1e-12);
        assert!((cdf.at(39.0) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.at(-5.0), 0.0);
        assert!((cdf.at(1e9) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.quantile(0.5), Some(15.0));
        assert_eq!(cdf.quantile(1.0), Some(35.0));
        assert_eq!(cdf.quantile(0.0), None);
        assert_eq!(cdf.quantile(1.5), None);
    }

    #[test]
    fn ratio_of_identical_pdfs_is_one() {
        let p = uniform_pdf();
        let (xs, rs) = p.ratio(&p, RatioPolicy::NaN).unwrap();
        assert_eq!(xs.len(), 10);
        assert!(rs.iter().all(|r| (r - 1.0).abs() < 1e-12));
    }

    #[test]
    fn ratio_policies_handle_zero_denominator() {
        let num = Pdf::from_densities(
            binner(),
            vec![0.02, 0.0, 0.02, 0.0, 0.02, 0.0, 0.02, 0.0, 0.02, 0.0],
        )
        .unwrap();
        let mut d = vec![0.0125; 10];
        d[0] = 0.0; // num nonzero, den zero -> NaN under all non-skip policies
        d[1] = 0.0; // both zero
        let den = Pdf::from_densities(binner(), d).unwrap();

        let (_, rs) = num.ratio(&den, RatioPolicy::NaN).unwrap();
        assert!(rs[0].is_nan());
        assert!(rs[1].is_nan());
        assert!((rs[2] - 1.6).abs() < 1e-12);

        let (_, rs) = num.ratio(&den, RatioPolicy::ZeroOverZeroIsZero).unwrap();
        assert!(rs[0].is_nan());
        assert_eq!(rs[1], 0.0);

        let (xs, rs) = num.ratio(&den, RatioPolicy::Skip).unwrap();
        assert_eq!(xs.len(), 8);
        assert_eq!(rs.len(), 8);
        assert!(rs.iter().all(|r| r.is_finite()));
        // First surviving bin is bin 2 (center 25).
        assert_eq!(xs[0], 25.0);
    }

    #[test]
    fn ratio_rejects_mismatched_grids() {
        let p = uniform_pdf();
        let other = Pdf::from_densities(
            Binner::new(0.0, 100.0, 20.0, OutOfRange::Discard).unwrap(),
            vec![0.01; 5],
        )
        .unwrap();
        assert!(p.ratio(&other, RatioPolicy::NaN).is_err());
    }

    #[test]
    fn ks_distance_zero_for_identical_and_positive_for_shifted() {
        let a = Histogram::from_values(binner(), &[5.0, 15.0, 25.0])
            .to_pdf()
            .unwrap();
        let b = Histogram::from_values(binner(), &[15.0, 25.0, 35.0])
            .to_pdf()
            .unwrap();
        assert_eq!(a.ks_distance(&a).unwrap(), 0.0);
        let d = a.ks_distance(&b).unwrap();
        assert!(d > 0.3 && d <= 1.0, "d = {d}");
    }
}
