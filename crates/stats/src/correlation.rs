//! Correlation measures.
//!
//! The paper's second locality diagnostic (§2.1, Figure 2) correlates the
//! per-minute temporal density of actions with the per-minute mean latency;
//! a negative correlation indicates that low-latency periods attract
//! disproportionate activity.

use crate::error::StatsError;

/// Sample covariance (n-1 denominator).
pub fn covariance(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    check_pair(x, y)?;
    let n = x.len();
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let s: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    Ok(s / (n - 1) as f64)
}

/// Pearson product-moment correlation coefficient.
///
/// Errors when either series is constant (undefined correlation).
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    check_pair(x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(crate::error::invalid(
            "series",
            "constant series: correlation undefined",
        ));
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation: Pearson correlation of the mid-ranks
/// (ties receive the average of the ranks they span).
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    check_pair(x, y)?;
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Mid-ranks of a series (1-based; ties averaged).
pub fn ranks(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        data[a]
            .partial_cmp(&data[b])
            .expect("caller ensures finite")
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg;
        }
        i = j + 1;
    }
    out
}

fn check_pair(x: &[f64], y: &[f64]) -> Result<(), StatsError> {
    if x.len() < 2 {
        return Err(StatsError::EmptyInput("correlation needs >= 2 points"));
    }
    if x.len() != y.len() {
        return Err(crate::error::invalid(
            "y",
            format!("length {} != x length {}", y.len(), x.len()),
        ));
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite("correlation input"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_hand_computed() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0];
        // cov = ((-1)(-2/3)+(0)(1/3)+(1)(1/3))/2 = 0.5 ; sx=1, sy=sqrt(1/3)
        let r = pearson(&x, &y).unwrap();
        assert!((r - 0.866_025_403_784_438_6).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn covariance_hand_computed() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        assert!((covariance(&x, &y).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let inv: Vec<f64> = x.iter().map(|v| 1.0 / v).collect();
        assert!((spearman(&x, &inv).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r = ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn error_cases() {
        assert!(pearson(&[1.0], &[2.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[5.0, 5.0]).is_err());
        assert!(pearson(&[1.0, f64::NAN], &[1.0, 2.0]).is_err());
        assert!(covariance(&[], &[]).is_err());
        assert!(spearman(&[1.0, 2.0], &[f64::INFINITY, 0.0]).is_err());
    }

    #[test]
    fn uncorrelated_checkerboard_near_zero() {
        // x cycles, y alternates independently of x's magnitude.
        let x: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let y: Vec<f64> = (0..1000).map(|i| ((i / 10) % 2) as f64).collect();
        let r = pearson(&x, &y).unwrap();
        assert!(r.abs() < 0.05, "r = {r}");
    }
}
