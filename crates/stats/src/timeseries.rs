//! Fixed-window aggregation of timestamped values.
//!
//! The paper's Figure 2 diagnostic computes, over 1-minute windows, the
//! temporal density of latency samples and the average latency in each
//! window; this module provides that aggregation for any `(timestamp ms,
//! value)` series.

use crate::error::{invalid, StatsError};

/// Aggregate statistics for one time window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStat {
    /// Window start (ms since epoch, inclusive).
    pub start_ms: i64,
    /// Number of samples in the window.
    pub count: u64,
    /// Mean of the values in the window; `None` when the window is empty.
    pub mean: Option<f64>,
}

/// Aggregate a time-sorted `(timestamp_ms, value)` series into consecutive
/// windows of `window_ms`, starting at the first sample's window.
///
/// Every window between the first and last sample is emitted, including empty
/// ones (their `mean` is `None`), so density comparisons see true gaps.
/// Errors when the series is empty, unsorted, or contains non-finite values.
pub fn aggregate_windows(
    series: &[(i64, f64)],
    window_ms: i64,
) -> Result<Vec<WindowStat>, StatsError> {
    if series.is_empty() {
        return Err(StatsError::EmptyInput("window aggregation input"));
    }
    if window_ms <= 0 {
        return Err(invalid(
            "window_ms",
            format!("must be > 0, got {window_ms}"),
        ));
    }
    if series.windows(2).any(|w| w[1].0 < w[0].0) {
        return Err(invalid("series", "timestamps must be sorted ascending"));
    }
    if series.iter().any(|(_, v)| !v.is_finite()) {
        return Err(StatsError::NonFinite("window aggregation values"));
    }

    let first = series[0].0;
    let base = first.div_euclid(window_ms) * window_ms;
    let last = series[series.len() - 1].0;
    let n_windows = ((last - base) / window_ms + 1) as usize;
    let mut sums = vec![0.0; n_windows];
    let mut counts = vec![0u64; n_windows];
    for &(t, v) in series {
        let w = ((t - base) / window_ms) as usize;
        sums[w] += v;
        counts[w] += 1;
    }
    Ok((0..n_windows)
        .map(|w| WindowStat {
            start_ms: base + w as i64 * window_ms,
            count: counts[w],
            mean: if counts[w] > 0 {
                Some(sums[w] / counts[w] as f64)
            } else {
                None
            },
        })
        .collect())
}

/// Extract the paired (density, mean-value) series used by the Figure 2
/// correlation: one point per *non-empty* window — counts per window and the
/// window's mean value.
pub fn density_vs_mean(stats: &[WindowStat]) -> (Vec<f64>, Vec<f64>) {
    let mut densities = Vec::new();
    let mut means = Vec::new();
    for s in stats {
        if let Some(m) = s.mean {
            densities.push(s.count as f64);
            means.push(m);
        }
    }
    (densities, means)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_basic_windows() {
        let series = [(0, 10.0), (500, 20.0), (1000, 30.0), (2500, 40.0)];
        let w = aggregate_windows(&series, 1000).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].count, 2);
        assert_eq!(w[0].mean, Some(15.0));
        assert_eq!(w[1].count, 1);
        assert_eq!(w[1].mean, Some(30.0));
        assert_eq!(w[2].count, 1);
        assert_eq!(w[2].mean, Some(40.0));
        assert_eq!(w[0].start_ms, 0);
        assert_eq!(w[2].start_ms, 2000);
    }

    #[test]
    fn emits_empty_windows() {
        let series = [(0, 1.0), (3500, 2.0)];
        let w = aggregate_windows(&series, 1000).unwrap();
        assert_eq!(w.len(), 4);
        assert_eq!(w[1].count, 0);
        assert_eq!(w[1].mean, None);
        assert_eq!(w[2].count, 0);
    }

    #[test]
    fn window_base_aligns_to_grid() {
        // First sample at t=1500 with 1000ms windows -> base 1000.
        let series = [(1500, 1.0), (1999, 3.0)];
        let w = aggregate_windows(&series, 1000).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].start_ms, 1000);
        assert_eq!(w[0].mean, Some(2.0));
    }

    #[test]
    fn negative_timestamps_align_correctly() {
        let series = [(-1500, 2.0), (-500, 4.0)];
        let w = aggregate_windows(&series, 1000).unwrap();
        assert_eq!(w[0].start_ms, -2000);
        assert_eq!(w.len(), 2);
        assert_eq!(w[1].start_ms, -1000);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(aggregate_windows(&[], 1000).is_err());
        assert!(aggregate_windows(&[(0, 1.0)], 0).is_err());
        assert!(aggregate_windows(&[(10, 1.0), (5, 1.0)], 1000).is_err());
        assert!(aggregate_windows(&[(0, f64::NAN)], 1000).is_err());
    }

    #[test]
    fn density_vs_mean_skips_empty_windows() {
        let series = [(0, 10.0), (2500, 20.0)];
        let w = aggregate_windows(&series, 1000).unwrap();
        let (d, m) = density_vs_mean(&w);
        assert_eq!(d, vec![1.0, 1.0]);
        assert_eq!(m, vec![10.0, 20.0]);
    }
}
