//! Minimal dense linear algebra: just enough to derive Savitzky–Golay
//! coefficients from first principles (normal equations of a polynomial
//! least-squares fit).

use crate::error::StatsError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor. Panics on out-of-range indices (caller bug).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Element mutator. Panics on out-of-range indices (caller bug).
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Matrix product `self * other`. Panics on dimension mismatch
    /// (caller bug: dimensions are structural, not data-dependent).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * out.cols + c] += a * other.get(k, c);
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * v[c]).sum())
            .collect()
    }

    /// Solve `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// `A` must be square; returns [`StatsError::SingularMatrix`] when a pivot
    /// is numerically zero.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, StatsError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(self.rows, b.len(), "rhs length mismatch");
        let n = self.rows;
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot: find the row with the largest magnitude in this column.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-300 {
                return Err(StatsError::SingularMatrix);
            }
            if pivot != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot * n + c);
                }
                x.swap(col, pivot);
            }
            // Eliminate below.
            let pval = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pval;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut v = x[col];
            for c in (col + 1)..n {
                v -= a[col * n + c] * x[c];
            }
            x[col] = v / a[col * n + col];
        }
        Ok(x)
    }

    /// Matrix inverse via column-by-column solves.
    pub fn inverse(&self) -> Result<Matrix, StatsError> {
        assert_eq!(self.rows, self.cols, "inverse requires a square matrix");
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        for c in 0..n {
            let mut e = vec![0.0; n];
            e[c] = 1.0;
            let col = self.solve(&e)?;
            for (r, &v) in col.iter().enumerate() {
                out.set(r, c, v);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        let id = Matrix::identity(3);
        assert_eq!(id.get(0, 0), 1.0);
        assert_eq!(id.get(0, 1), 0.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), m.get(1, 2));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_hand_computed() {
        let a = Matrix::from_fn(2, 2, |r, c| (r * 2 + c + 1) as f64); // [[1,2],[3,4]]
        let b = Matrix::from_fn(2, 2, |r, c| ((r * 2 + c) * 2) as f64); // [[0,2],[4,6]]
        let p = a.matmul(&b);
        assert_eq!(p.get(0, 0), 8.0);
        assert_eq!(p.get(0, 1), 14.0);
        assert_eq!(p.get(1, 0), 16.0);
        assert_eq!(p.get(1, 1), 30.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(2, 3, |r, c| (r + c) as f64);
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(a.matvec(&v), vec![8.0, 14.0]);
    }

    #[test]
    fn solve_small_system() {
        // 2x + y = 5 ; x - y = 1 -> x = 2, y = 1.
        let a = Matrix::from_fn(2, 2, |r, c| match (r, c) {
            (0, 0) => 2.0,
            (0, 1) => 1.0,
            (1, 0) => 1.0,
            (1, 1) => -1.0,
            _ => unreachable!(),
        });
        let x = a.solve(&[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_fn(2, 2, |r, c| match (r, c) {
            (0, 0) => 0.0,
            (0, 1) => 1.0,
            (1, 0) => 1.0,
            (1, 1) => 0.0,
            _ => unreachable!(),
        });
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_fn(2, 2, |_, c| if c == 0 { 1.0 } else { 2.0 });
        assert_eq!(a.solve(&[1.0, 1.0]), Err(StatsError::SingularMatrix));
        assert!(a.inverse().is_err());
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| {
            // Well-conditioned test matrix.
            1.0 / (1.0 + r as f64 + c as f64) + if r == c { 1.0 } else { 0.0 }
        });
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((prod.get(r, c) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_larger_random_system_consistency() {
        // Diagonally dominant 8x8 system: solve then verify A x = b.
        let n = 8;
        let a = Matrix::from_fn(n, n, |r, c| {
            if r == c {
                10.0 + r as f64
            } else {
                ((r * 31 + c * 17) % 7) as f64 / 7.0
            }
        });
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 5.0).collect();
        let x = a.solve(&b).unwrap();
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}
