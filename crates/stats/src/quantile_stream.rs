//! Streaming quantile estimation (the P² algorithm).
//!
//! The §3.4 conditioning analysis needs a per-user median latency. On logs
//! that fit in memory the exact median is fine; for production-scale logs
//! (the paper's dataset had *billions* of actions) storing every latency
//! per user is not. The P² algorithm (Jain & Chlamtac, 1985) maintains a
//! quantile estimate with five markers — O(1) memory per user — by
//! adjusting marker heights with piecewise-parabolic interpolation.

use serde::{Deserialize, Serialize};

use crate::error::{invalid, StatsError};

/// A P² estimator for a single quantile.
///
/// ```
/// use autosens_stats::quantile_stream::P2Quantile;
///
/// let mut median = P2Quantile::median();
/// for i in 0..10_001 {
///     median.observe(i as f64).unwrap();
/// }
/// let est = median.estimate().unwrap();
/// assert!((est - 5_000.0).abs() < 250.0);
/// assert_eq!(median.count(), 10_001);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the 0, q/2, q, (1+q)/2, 1 quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Number of observations seen.
    count: u64,
    /// Initial observations buffer (before the 5-marker state is formed).
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Create an estimator for quantile `q` in `(0, 1)`.
    pub fn new(q: f64) -> Result<Self, StatsError> {
        if !(0.0 < q && q < 1.0) {
            return Err(invalid("q", format!("must be in (0,1), got {q}")));
        }
        Ok(P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        })
    }

    /// A median estimator.
    pub fn median() -> Self {
        P2Quantile::new(0.5).expect("0.5 is a valid quantile")
    }

    /// The target quantile.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations ingested.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Ingest one observation. Non-finite values are rejected.
    pub fn observe(&mut self, x: f64) -> Result<(), StatsError> {
        if !x.is_finite() {
            return Err(StatsError::NonFinite("P2 observation"));
        }
        self.count += 1;
        if self.count <= 5 {
            self.initial.push(x);
            if self.count == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite checked"));
                for (h, v) in self.heights.iter_mut().zip(&self.initial) {
                    *h = *v;
                }
            }
            return Ok(());
        }

        // Locate the cell containing x and bump the extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x < self.heights[1] {
            0
        } else if x < self.heights[2] {
            1
        } else if x < self.heights[3] {
            2
        } else if x <= self.heights[4] {
            3
        } else {
            self.heights[4] = x;
            3
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }

        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let step_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let step_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && step_up) || (d <= -1.0 && step_down) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, s)
                    };
                self.heights[i] = new_height;
                self.positions[i] += s;
            }
        }
        Ok(())
    }

    /// The current quantile estimate; `None` before any data. For fewer
    /// than five observations, the exact sample quantile of the buffer.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite on entry"));
            return Some(crate::descriptive::quantile_sorted(&sorted, self.q));
        }
        Some(self.heights[2])
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + s / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + s) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - s) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rejects_bad_quantiles_and_values() {
        assert!(P2Quantile::new(0.0).is_err());
        assert!(P2Quantile::new(1.0).is_err());
        assert!(P2Quantile::new(-0.5).is_err());
        let mut p = P2Quantile::median();
        assert!(p.observe(f64::NAN).is_err());
        assert!(p.observe(f64::INFINITY).is_err());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let p = P2Quantile::median();
        assert_eq!(p.estimate(), None);
        assert_eq!(p.count(), 0);
        let mut p = P2Quantile::median();
        p.observe(7.0).unwrap();
        assert_eq!(p.estimate(), Some(7.0));
        p.observe(1.0).unwrap();
        p.observe(4.0).unwrap();
        // Exact median of {1, 4, 7}.
        assert_eq!(p.estimate(), Some(4.0));
    }

    #[test]
    fn matches_exact_median_on_uniform_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = P2Quantile::median();
        let mut data = Vec::new();
        for _ in 0..50_000 {
            let x: f64 = rng.gen();
            data.push(x);
            p.observe(x).unwrap();
        }
        let exact = crate::descriptive::median(&data).unwrap();
        let est = p.estimate().unwrap();
        assert!((est - exact).abs() < 0.01, "est {est} vs exact {exact}");
        assert_eq!(p.count(), 50_000);
    }

    #[test]
    fn tracks_other_quantiles_of_skewed_data() {
        // Lognormal-ish data, like latency.
        let mut rng = StdRng::seed_from_u64(2);
        for q in [0.25, 0.75, 0.9] {
            let mut p = P2Quantile::new(q).unwrap();
            let mut data = Vec::new();
            for _ in 0..50_000 {
                let x = (crate::dist::standard_normal(&mut rng) * 0.5).exp() * 100.0;
                data.push(x);
                p.observe(x).unwrap();
            }
            let exact = crate::descriptive::quantile(&data, q).unwrap();
            let est = p.estimate().unwrap();
            assert!(
                (est - exact).abs() / exact < 0.03,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn sorted_input_is_handled() {
        // Monotone input is a classic stress case for P2.
        let mut p = P2Quantile::median();
        for i in 0..10_001 {
            p.observe(i as f64).unwrap();
        }
        let est = p.estimate().unwrap();
        assert!((est - 5_000.0).abs() < 250.0, "est = {est}");
    }

    #[test]
    fn constant_input_converges_to_the_constant() {
        let mut p = P2Quantile::new(0.9).unwrap();
        for _ in 0..1000 {
            p.observe(42.0).unwrap();
        }
        assert_eq!(p.estimate(), Some(42.0));
    }

    #[test]
    fn serde_roundtrip_preserves_state() {
        let mut p = P2Quantile::median();
        for i in 0..100 {
            p.observe((i % 17) as f64).unwrap();
        }
        let json = serde_json::to_string(&p).unwrap();
        let back: P2Quantile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
        assert_eq!(p.estimate(), back.estimate());
    }
}
