//! Simple smoothing baselines used in the ablation benches against the
//! Savitzky–Golay filter: a centered moving average and a median filter.

use crate::error::{invalid, StatsError};

/// Centered moving average with a shrinking window at the edges.
///
/// `window` must be odd and >= 1. For a point near a boundary the window is
/// truncated symmetrically as far as the data allows (so edge values are
/// averages of fewer points, never padded).
pub fn moving_average(data: &[f64], window: usize) -> Result<Vec<f64>, StatsError> {
    validate(data, window)?;
    let half = window / 2;
    let n = data.len();
    let out = (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let slice = &data[lo..hi];
            slice.iter().sum::<f64>() / slice.len() as f64
        })
        .collect();
    Ok(out)
}

/// Centered median filter with a shrinking window at the edges.
pub fn median_filter(data: &[f64], window: usize) -> Result<Vec<f64>, StatsError> {
    validate(data, window)?;
    let half = window / 2;
    let n = data.len();
    let mut buf = Vec::with_capacity(window);
    let out = (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            buf.clear();
            buf.extend_from_slice(&data[lo..hi]);
            buf.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
            let m = buf.len();
            if m % 2 == 1 {
                buf[m / 2]
            } else {
                (buf[m / 2 - 1] + buf[m / 2]) / 2.0
            }
        })
        .collect();
    Ok(out)
}

fn validate(data: &[f64], window: usize) -> Result<(), StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput("smoothing input"));
    }
    if window == 0 || window.is_multiple_of(2) {
        return Err(invalid(
            "window",
            format!("must be odd and >= 1, got {window}"),
        ));
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFinite("smoothing input"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_interior_and_edges() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let out = moving_average(&data, 3).unwrap();
        // Edges shrink to 2-point averages.
        assert_eq!(out, vec![1.5, 2.0, 3.0, 4.0, 4.5]);
    }

    #[test]
    fn window_one_is_identity() {
        let data = [3.0, 1.0, 2.0];
        assert_eq!(moving_average(&data, 1).unwrap(), data.to_vec());
        assert_eq!(median_filter(&data, 1).unwrap(), data.to_vec());
    }

    #[test]
    fn median_filter_removes_impulse_noise() {
        let data = [1.0, 1.0, 100.0, 1.0, 1.0];
        let out = median_filter(&data, 3).unwrap();
        assert_eq!(out[2], 1.0);
        // Moving average would smear the impulse instead.
        let ma = moving_average(&data, 3).unwrap();
        assert!(ma[2] > 30.0);
    }

    #[test]
    fn median_filter_even_truncated_window_averages_middle_pair() {
        let data = [1.0, 3.0, 5.0, 7.0];
        let out = median_filter(&data, 3).unwrap();
        // First point: window [1,3] -> median 2.
        assert_eq!(out[0], 2.0);
        assert_eq!(out[3], 6.0);
    }

    #[test]
    fn validation_errors() {
        assert!(moving_average(&[], 3).is_err());
        assert!(moving_average(&[1.0], 2).is_err());
        assert!(moving_average(&[1.0], 0).is_err());
        assert!(median_filter(&[1.0, f64::NAN], 3).is_err());
    }

    #[test]
    fn constant_series_unchanged() {
        let data = vec![2.5; 20];
        assert_eq!(moving_average(&data, 7).unwrap(), data);
        assert_eq!(median_filter(&data, 7).unwrap(), data);
    }
}
