//! Weighted histograms over a fixed-width [`Binner`].
//!
//! AutoSens builds two histograms per analysis slice — the biased action
//! histogram `B` and the unbiased occupancy histogram `U` — and, for the
//! time-confounder correction, one *weighted* histogram per 1-hour slot
//! (weights are counts divided by the slot's activity factor `α_T`). A single
//! weighted-count representation covers all of these.

use serde::{Deserialize, Serialize};

use crate::binning::Binner;
use crate::error::StatsError;
use crate::pdf::Pdf;

/// A histogram with floating-point (weighted) bin contents.
///
/// ```
/// use autosens_stats::binning::Binner;
/// use autosens_stats::histogram::Histogram;
///
/// let binner = Binner::latency_ms(1000.0).unwrap();
/// let mut h = Histogram::new(binner);
/// h.record_all(&[105.0, 108.0, 455.0]);
/// assert_eq!(h.count(10), 2.0);
/// assert_eq!(h.total(), 3.0);
///
/// // Normalize into a PDF whose densities integrate to 1.
/// let pdf = h.to_pdf().unwrap();
/// assert!((pdf.mass() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    binner: Binner,
    counts: Vec<f64>,
    /// Total weight recorded, including nothing for discarded samples.
    total: f64,
    /// Number of `record*` calls that landed in a bin.
    n_recorded: u64,
    /// Number of samples dropped by the out-of-range policy (or NaN).
    n_discarded: u64,
}

impl Histogram {
    /// An empty histogram over the given binning.
    pub fn new(binner: Binner) -> Self {
        let n = binner.n_bins();
        Histogram {
            binner,
            counts: vec![0.0; n],
            total: 0.0,
            n_recorded: 0,
            n_discarded: 0,
        }
    }

    /// Record one observation with weight 1.
    pub fn record(&mut self, value: f64) {
        self.record_weighted(value, 1.0);
    }

    /// Record one observation with an arbitrary non-negative weight.
    ///
    /// Non-finite or negative weights are treated as a discarded sample; they
    /// indicate upstream numerical trouble and must not corrupt the totals.
    pub fn record_weighted(&mut self, value: f64, weight: f64) {
        if !(weight.is_finite() && weight >= 0.0) {
            self.n_discarded += 1;
            return;
        }
        match self.binner.index_of(value) {
            Some(i) => {
                self.counts[i] += weight;
                self.total += weight;
                self.n_recorded += 1;
            }
            None => self.n_discarded += 1,
        }
    }

    /// Record every value in a slice with weight 1.
    pub fn record_all(&mut self, values: &[f64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Build a histogram directly from a slice of values.
    pub fn from_values(binner: Binner, values: &[f64]) -> Self {
        let mut h = Histogram::new(binner);
        h.record_all(values);
        h
    }

    /// Reassemble a histogram from previously extracted state — the
    /// inverse of reading [`Histogram::counts`] / [`Histogram::total`] /
    /// [`Histogram::n_recorded`] / [`Histogram::n_discarded`], used to
    /// rehydrate checkpointed partial aggregates. Errors when the counts
    /// length does not match the binner's bin count.
    pub fn from_parts(
        binner: Binner,
        counts: Vec<f64>,
        total: f64,
        n_recorded: u64,
        n_discarded: u64,
    ) -> Result<Self, StatsError> {
        if counts.len() != binner.n_bins() {
            return Err(StatsError::InvalidParameter {
                name: "counts",
                reason: format!(
                    "length {} does not match {} bins",
                    counts.len(),
                    binner.n_bins()
                ),
            });
        }
        Ok(Histogram {
            binner,
            counts,
            total,
            n_recorded,
            n_discarded,
        })
    }

    /// The binner underlying this histogram.
    pub fn binner(&self) -> &Binner {
        &self.binner
    }

    /// Weighted content of bin `i`.
    pub fn count(&self, i: usize) -> f64 {
        self.counts[i]
    }

    /// Weighted contents of all bins.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Sum of all recorded weights.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of samples that landed in a bin.
    pub fn n_recorded(&self) -> u64 {
        self.n_recorded
    }

    /// Number of samples dropped (out-of-range under `Discard`, NaN values,
    /// or invalid weights).
    pub fn n_discarded(&self) -> u64 {
        self.n_discarded
    }

    /// True when no weight has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0.0
    }

    /// Scale every bin (and the total) by `factor`.
    ///
    /// This is the primitive behind the α-normalization of per-slot counts:
    /// dividing a slot's counts by `α_T` is `scale(1.0 / alpha)`.
    pub fn scale(&mut self, factor: f64) -> Result<(), StatsError> {
        if !factor.is_finite() || factor < 0.0 {
            return Err(crate::error::invalid(
                "factor",
                format!("must be finite and non-negative, got {factor}"),
            ));
        }
        for c in &mut self.counts {
            *c *= factor;
        }
        self.total *= factor;
        Ok(())
    }

    /// Add another histogram's contents into this one.
    ///
    /// Both histograms must share the same bin grid.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), StatsError> {
        if !self.binner.same_grid(&other.binner) {
            return Err(StatsError::BinnerMismatch);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.n_recorded += other.n_recorded;
        self.n_discarded += other.n_discarded;
        Ok(())
    }

    /// Normalize into a probability density function.
    ///
    /// Densities integrate to 1 over the binned range. Fails on an empty
    /// histogram (a PDF of nothing is meaningless and would silently poison
    /// downstream ratios with NaN).
    pub fn to_pdf(&self) -> Result<Pdf, StatsError> {
        if self.is_empty() {
            return Err(StatsError::EmptyInput("histogram has zero total weight"));
        }
        let w = self.binner.width();
        let densities: Vec<f64> = self.counts.iter().map(|c| c / (self.total * w)).collect();
        Pdf::from_densities(self.binner.clone(), densities)
    }

    /// Mean of the recorded distribution, using bin centers.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let s: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, c)| c * self.binner.center(i))
            .sum();
        Some(s / self.total)
    }

    /// The fraction of total weight in each bin (sums to 1); unlike
    /// [`Histogram::to_pdf`] these are probabilities per bin, not densities.
    pub fn fractions(&self) -> Option<Vec<f64>> {
        if self.is_empty() {
            return None;
        }
        Some(self.counts.iter().map(|c| c / self.total).collect())
    }
}

/// Histograms are the canonical per-chunk partial aggregate of the
/// data-parallel pipeline: a chunked map builds one histogram per chunk
/// (or one `Vec<Histogram>` per chunk for the per-slot α partition) and
/// the scheduler folds them in chunk order. Partials of one job share one
/// binner by construction, so a grid mismatch is a programming error and
/// panics (the scheduler's panic capture turns it into a typed error).
impl autosens_exec::Mergeable for Histogram {
    fn merge(&mut self, other: Self) {
        Histogram::merge(self, &other).expect("chunk partials share one binner grid");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::OutOfRange;

    fn binner() -> Binner {
        Binner::new(0.0, 100.0, 10.0, OutOfRange::Discard).unwrap()
    }

    #[test]
    fn records_and_totals() {
        let mut h = Histogram::new(binner());
        h.record(5.0);
        h.record(5.0);
        h.record(95.0);
        assert_eq!(h.count(0), 2.0);
        assert_eq!(h.count(9), 1.0);
        assert_eq!(h.total(), 3.0);
        assert_eq!(h.n_recorded(), 3);
        assert_eq!(h.n_discarded(), 0);
    }

    #[test]
    fn discards_out_of_range_and_nan() {
        let mut h = Histogram::new(binner());
        h.record(-1.0);
        h.record(100.0);
        h.record(f64::NAN);
        assert!(h.is_empty());
        assert_eq!(h.n_discarded(), 3);
    }

    #[test]
    fn weighted_records() {
        let mut h = Histogram::new(binner());
        h.record_weighted(15.0, 2.5);
        h.record_weighted(15.0, 0.5);
        assert_eq!(h.count(1), 3.0);
        assert_eq!(h.total(), 3.0);
    }

    #[test]
    fn invalid_weights_are_discarded() {
        let mut h = Histogram::new(binner());
        h.record_weighted(15.0, f64::NAN);
        h.record_weighted(15.0, -1.0);
        h.record_weighted(15.0, f64::INFINITY);
        assert!(h.is_empty());
        assert_eq!(h.n_discarded(), 3);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::from_values(binner(), &[5.0, 15.0]);
        let b = Histogram::from_values(binner(), &[15.0, 25.0]);
        a.merge(&b).unwrap();
        assert_eq!(a.count(0), 1.0);
        assert_eq!(a.count(1), 2.0);
        assert_eq!(a.count(2), 1.0);
        assert_eq!(a.total(), 4.0);
        assert_eq!(a.n_recorded(), 4);
    }

    #[test]
    fn merge_rejects_mismatched_binners() {
        let mut a = Histogram::new(binner());
        let b = Histogram::new(Binner::new(0.0, 100.0, 20.0, OutOfRange::Discard).unwrap());
        assert_eq!(a.merge(&b), Err(StatsError::BinnerMismatch));
    }

    #[test]
    fn scale_behaves_like_alpha_normalization() {
        let mut h = Histogram::from_values(binner(), &[5.0, 5.0, 15.0]);
        h.scale(1.0 / 0.5).unwrap();
        assert_eq!(h.count(0), 4.0);
        assert_eq!(h.count(1), 2.0);
        assert_eq!(h.total(), 6.0);
        assert!(h.scale(f64::NAN).is_err());
        assert!(h.scale(-1.0).is_err());
    }

    #[test]
    fn to_pdf_normalizes_to_unit_mass() {
        let h = Histogram::from_values(binner(), &[5.0, 15.0, 15.0, 35.0]);
        let pdf = h.to_pdf().unwrap();
        let mass: f64 = pdf.densities().iter().map(|d| d * 10.0).sum();
        assert!((mass - 1.0).abs() < 1e-12);
        // Bin 1 holds half the samples: density = 0.5 / 10ms.
        assert!((pdf.density(1) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn to_pdf_fails_on_empty() {
        let h = Histogram::new(binner());
        assert!(h.to_pdf().is_err());
    }

    #[test]
    fn mean_uses_bin_centers() {
        let h = Histogram::from_values(binner(), &[5.0, 15.0]);
        // Bin centers 5 and 15 -> mean 10.
        assert_eq!(h.mean(), Some(10.0));
        assert_eq!(Histogram::new(binner()).mean(), None);
    }

    #[test]
    fn mergeable_impl_matches_inherent_merge() {
        let mut a = Histogram::from_values(binner(), &[5.0, 15.0]);
        let b = Histogram::from_values(binner(), &[15.0, 25.0]);
        let mut expected = a.clone();
        expected.merge(&b).unwrap();
        autosens_exec::Mergeable::merge(&mut a, b);
        assert_eq!(a, expected);
    }

    #[test]
    #[should_panic(expected = "share one binner grid")]
    fn mergeable_impl_panics_on_grid_mismatch() {
        let mut a = Histogram::new(binner());
        let b = Histogram::new(Binner::new(0.0, 100.0, 20.0, OutOfRange::Discard).unwrap());
        autosens_exec::Mergeable::merge(&mut a, b);
    }

    #[test]
    fn fractions_sum_to_one() {
        let h = Histogram::from_values(binner(), &[5.0, 15.0, 15.0, 95.0]);
        let f = h.fractions().unwrap();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(f[1], 0.5);
        assert_eq!(Histogram::new(binner()).fractions(), None);
    }
}
