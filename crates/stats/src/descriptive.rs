//! Descriptive statistics on slices of `f64`.
//!
//! Used throughout the workspace: per-user median latency (the §3.4
//! conditioning quartiles), summary reporting, and test assertions.

use crate::error::StatsError;

/// Arithmetic mean. Errors on an empty slice.
pub fn mean(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput("mean"));
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased (n-1) sample variance. Errors on fewer than two points.
pub fn variance(data: &[f64]) -> Result<f64, StatsError> {
    if data.len() < 2 {
        return Err(StatsError::EmptyInput("variance needs >= 2 points"));
    }
    let m = mean(data)?;
    let ss: f64 = data.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / (data.len() - 1) as f64)
}

/// Sample standard deviation.
pub fn std_dev(data: &[f64]) -> Result<f64, StatsError> {
    variance(data).map(f64::sqrt)
}

/// Median (quantile 0.5).
pub fn median(data: &[f64]) -> Result<f64, StatsError> {
    quantile(data, 0.5)
}

/// Linear-interpolation quantile (the "type 7" estimator used by NumPy/R).
///
/// `q` must lie in `[0, 1]`. Errors on an empty slice, non-finite values,
/// or `q` out of range.
pub fn quantile(data: &[f64], q: f64) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput("quantile"));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(crate::error::invalid(
            "q",
            format!("must be in [0,1], got {q}"),
        ));
    }
    if data.iter().any(|x| x.is_nan()) {
        return Err(StatsError::NonFinite("quantile input"));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    Ok(quantile_sorted(&sorted, q))
}

/// Quantile on data the caller guarantees is already sorted ascending.
///
/// Panics on empty input (caller bug: check before sorting).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile_sorted on empty slice");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Minimum, ignoring nothing (errors on empty or NaN-containing input).
pub fn min(data: &[f64]) -> Result<f64, StatsError> {
    fold_extreme(data, f64::min, "min")
}

/// Maximum counterpart of [`min`].
pub fn max(data: &[f64]) -> Result<f64, StatsError> {
    fold_extreme(data, f64::max, "max")
}

fn fold_extreme(
    data: &[f64],
    op: fn(f64, f64) -> f64,
    what: &'static str,
) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput(what));
    }
    if data.iter().any(|x| x.is_nan()) {
        return Err(StatsError::NonFinite(what));
    }
    Ok(data.iter().copied().fold(data[0], op))
}

/// Weighted arithmetic mean. Errors when weights are all zero, negative,
/// or lengths mismatch.
pub fn weighted_mean(data: &[f64], weights: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput("weighted_mean"));
    }
    if data.len() != weights.len() {
        return Err(crate::error::invalid(
            "weights",
            format!("length {} != data length {}", weights.len(), data.len()),
        ));
    }
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(StatsError::NonFinite("weights"));
    }
    let wsum: f64 = weights.iter().sum();
    if wsum == 0.0 {
        return Err(crate::error::invalid("weights", "sum to zero"));
    }
    Ok(data.iter().zip(weights).map(|(x, w)| x * w).sum::<f64>() / wsum)
}

/// Geometric mean of strictly positive data.
pub fn geometric_mean(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput("geometric_mean"));
    }
    if data.iter().any(|x| !x.is_finite() || *x <= 0.0) {
        return Err(crate::error::invalid(
            "data",
            "geometric mean requires strictly positive values",
        ));
    }
    let log_mean = data.iter().map(|x| x.ln()).sum::<f64>() / data.len() as f64;
    Ok(log_mean.exp())
}

/// A one-pass summary of a data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of points.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a data set. Errors on empty or NaN-containing input.
    pub fn of(data: &[f64]) -> Result<Self, StatsError> {
        if data.is_empty() {
            return Err(StatsError::EmptyInput("summary"));
        }
        if data.iter().any(|x| x.is_nan()) {
            return Err(StatsError::NonFinite("summary input"));
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        Ok(Summary {
            n: data.len(),
            mean: mean(data)?,
            std_dev: if data.len() >= 2 { std_dev(data)? } else { 0.0 },
            min: sorted[0],
            p25: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            p75: quantile_sorted(&sorted, 0.75),
            max: *sorted.last().expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_closed_form() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&data).unwrap(), 5.0);
        // Sum of squared deviations is 32; sample variance 32/7.
        assert!((variance(&data).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&data).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_short_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
        assert!(median(&[]).is_err());
        assert!(min(&[]).is_err());
        assert!(max(&[]).is_err());
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
        assert_eq!(median(&[42.0]).unwrap(), 42.0);
    }

    #[test]
    fn quantile_linear_interpolation_matches_numpy_type7() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 4.0);
        // numpy.percentile([1,2,3,4], 25) == 1.75
        assert!((quantile(&data, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert!((quantile(&data, 0.75).unwrap() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn quantile_rejects_bad_inputs() {
        assert!(quantile(&[1.0], -0.1).is_err());
        assert!(quantile(&[1.0], 1.1).is_err());
        assert!(quantile(&[1.0, f64::NAN], 0.5).is_err());
    }

    #[test]
    fn min_max_and_nan_rejection() {
        let data = [3.0, -1.0, 7.0];
        assert_eq!(min(&data).unwrap(), -1.0);
        assert_eq!(max(&data).unwrap(), 7.0);
        assert!(min(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn weighted_mean_basic_and_errors() {
        assert_eq!(weighted_mean(&[1.0, 3.0], &[1.0, 1.0]).unwrap(), 2.0);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[3.0, 1.0]).unwrap(), 1.5);
        assert!(weighted_mean(&[], &[]).is_err());
        assert!(weighted_mean(&[1.0], &[1.0, 2.0]).is_err());
        assert!(weighted_mean(&[1.0, 2.0], &[0.0, 0.0]).is_err());
        assert!(weighted_mean(&[1.0, 2.0], &[-1.0, 2.0]).is_err());
    }

    #[test]
    fn geometric_mean_closed_form() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!(geometric_mean(&[0.0, 1.0]).is_err());
        assert!(geometric_mean(&[-1.0, 1.0]).is_err());
        assert!(geometric_mean(&[]).is_err());
    }

    #[test]
    fn summary_is_consistent() {
        let data = [5.0, 1.0, 3.0, 2.0, 4.0];
        let s = Summary::of(&data).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
        assert!(Summary::of(&[]).is_err());
        let single = Summary::of(&[7.0]).unwrap();
        assert_eq!(single.std_dev, 0.0);
    }
}
