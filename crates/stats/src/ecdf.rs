//! Empirical cumulative distribution functions and two-sample
//! Kolmogorov–Smirnov distances, used in tests to compare simulated latency
//! marginals against their configured distributions.

use crate::error::StatsError;

/// An empirical CDF over a sorted copy of the sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample. Errors on empty or NaN-containing input.
    pub fn new(sample: &[f64]) -> Result<Self, StatsError> {
        if sample.is_empty() {
            return Err(StatsError::EmptyInput("ecdf sample"));
        }
        if sample.iter().any(|x| x.is_nan()) {
            return Err(StatsError::NonFinite("ecdf sample"));
        }
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected above"));
        Ok(Ecdf { sorted })
    }

    /// `F(x) = P(X <= x)` with the right-continuous step convention.
    pub fn at(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// Two-sample Kolmogorov–Smirnov statistic: the supremum distance between
/// the empirical CDFs, evaluated at every sample point of both samples.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    let ea = Ecdf::new(a)?;
    let eb = Ecdf::new(b)?;
    let mut d: f64 = 0.0;
    for &x in ea.sorted().iter().chain(eb.sorted().iter()) {
        d = d.max((ea.at(x) - eb.at(x)).abs());
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ecdf_step_values() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.at(0.5), 0.0);
        assert_eq!(e.at(1.0), 0.25);
        assert_eq!(e.at(2.5), 0.5);
        assert_eq!(e.at(4.0), 1.0);
        assert_eq!(e.at(9.0), 1.0);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
    }

    #[test]
    fn ecdf_handles_ties() {
        let e = Ecdf::new(&[2.0, 2.0, 2.0, 5.0]).unwrap();
        assert_eq!(e.at(2.0), 0.75);
        assert_eq!(e.at(1.9), 0.0);
    }

    #[test]
    fn ecdf_rejects_bad_input() {
        assert!(Ecdf::new(&[]).is_err());
        assert!(Ecdf::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn ks_identical_samples_is_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(ks_two_sample(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0];
        assert_eq!(ks_two_sample(&a, &b).unwrap(), 1.0);
    }

    #[test]
    fn ks_same_distribution_is_small_different_is_large() {
        let mut rng = StdRng::seed_from_u64(8);
        let a: Vec<f64> = (0..5000).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..5000).map(|_| rng.gen::<f64>()).collect();
        let shifted: Vec<f64> = (0..5000).map(|_| rng.gen::<f64>() + 0.3).collect();
        assert!(ks_two_sample(&a, &b).unwrap() < 0.05);
        assert!(ks_two_sample(&a, &shifted).unwrap() > 0.25);
    }
}
