//! Randomized resampling utilities: shuffles (for the Figure 1 baseline),
//! bootstrap resampling (for confidence intervals on preference curves), and
//! reservoir sampling (for bounded-memory subsampling of huge logs).

use rand::Rng;

use crate::error::StatsError;

/// Return a uniformly shuffled copy of the input (Fisher–Yates).
pub fn shuffled<T: Clone, R: Rng>(data: &[T], rng: &mut R) -> Vec<T> {
    let mut out = data.to_vec();
    shuffle_in_place(&mut out, rng);
    out
}

/// Fisher–Yates shuffle in place.
pub fn shuffle_in_place<T, R: Rng>(data: &mut [T], rng: &mut R) {
    // Manual Fisher–Yates rather than rand::seq::SliceRandom so the exact
    // byte stream consumed from the RNG is pinned by this crate (keeps
    // downstream golden tests stable across `rand` minor versions).
    for i in (1..data.len()).rev() {
        let j = rng.gen_range(0..=i);
        data.swap(i, j);
    }
}

/// Draw `n` indices uniformly with replacement from `0..len`.
pub fn bootstrap_indices<R: Rng>(
    rng: &mut R,
    len: usize,
    n: usize,
) -> Result<Vec<usize>, StatsError> {
    if len == 0 {
        return Err(StatsError::EmptyInput("bootstrap population"));
    }
    Ok((0..n).map(|_| rng.gen_range(0..len)).collect())
}

/// A basic percentile-bootstrap confidence interval for a statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate on the original data.
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lo: f64,
    /// Upper bound of the interval.
    pub hi: f64,
    /// Number of bootstrap replicates used.
    pub replicates: usize,
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// `level` is the two-sided confidence level, e.g. `0.95`. The statistic may
/// return `None` for degenerate resamples; those replicates are skipped (but
/// at least half must succeed or an error is returned).
pub fn bootstrap_ci<R: Rng>(
    rng: &mut R,
    data: &[f64],
    replicates: usize,
    level: f64,
    statistic: impl Fn(&[f64]) -> Option<f64>,
) -> Result<BootstrapCi, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput("bootstrap data"));
    }
    if !(0.0 < level && level < 1.0) {
        return Err(crate::error::invalid(
            "level",
            format!("must be in (0,1), got {level}"),
        ));
    }
    if replicates == 0 {
        return Err(crate::error::invalid("replicates", "must be > 0"));
    }
    let estimate = statistic(data).ok_or(StatsError::EmptyInput("statistic on original data"))?;
    let mut stats = Vec::with_capacity(replicates);
    let mut resample = vec![0.0; data.len()];
    for _ in 0..replicates {
        for slot in resample.iter_mut() {
            *slot = data[rng.gen_range(0..data.len())];
        }
        if let Some(s) = statistic(&resample) {
            stats.push(s);
        }
    }
    if stats.len() < replicates / 2 {
        return Err(crate::error::invalid(
            "statistic",
            "failed on more than half of the bootstrap replicates",
        ));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("statistics must be comparable"));
    let alpha = (1.0 - level) / 2.0;
    let lo = crate::descriptive::quantile_sorted(&stats, alpha);
    let hi = crate::descriptive::quantile_sorted(&stats, 1.0 - alpha);
    Ok(BootstrapCi {
        estimate,
        lo,
        hi,
        replicates: stats.len(),
    })
}

/// Reservoir-sample `k` items from an iterator (Algorithm R).
///
/// Returns fewer than `k` items when the iterator is shorter than `k`.
pub fn reservoir_sample<T, I, R>(rng: &mut R, iter: I, k: usize) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng,
{
    if k == 0 {
        return Vec::new();
    }
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for (i, item) in iter.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<i32> = (0..100).collect();
        let mut shuf = shuffled(&data, &mut rng);
        assert_ne!(shuf, data, "astronomically unlikely to be unchanged");
        shuf.sort();
        assert_eq!(shuf, data);
    }

    #[test]
    fn shuffle_is_roughly_uniform() {
        // Track where element 0 lands over many shuffles of a 5-vector.
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            let mut v = [0, 1, 2, 3, 4];
            shuffle_in_place(&mut v, &mut rng);
            let pos = v.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for c in counts {
            assert!((c as f64 - 2000.0).abs() < 250.0, "counts = {counts:?}");
        }
    }

    #[test]
    fn bootstrap_indices_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let idx = bootstrap_indices(&mut rng, 10, 1000).unwrap();
        assert_eq!(idx.len(), 1000);
        assert!(idx.iter().all(|&i| i < 10));
        assert!(bootstrap_indices(&mut rng, 0, 5).is_err());
    }

    #[test]
    fn bootstrap_ci_covers_the_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let data: Vec<f64> = (0..200)
            .map(|_| 5.0 + crate::dist::standard_normal(&mut rng))
            .collect();
        let ci = bootstrap_ci(&mut rng, &data, 500, 0.95, |d| {
            crate::descriptive::mean(d).ok()
        })
        .unwrap();
        assert!(ci.lo < ci.estimate && ci.estimate < ci.hi);
        assert!(ci.lo < 5.0 && 5.0 < ci.hi, "ci = {ci:?}");
        assert!(ci.hi - ci.lo < 0.5, "interval too wide: {ci:?}");
    }

    #[test]
    fn bootstrap_ci_validates_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let ok = |d: &[f64]| crate::descriptive::mean(d).ok();
        assert!(bootstrap_ci(&mut rng, &[], 100, 0.95, ok).is_err());
        assert!(bootstrap_ci(&mut rng, &[1.0], 0, 0.95, ok).is_err());
        assert!(bootstrap_ci(&mut rng, &[1.0], 100, 1.5, ok).is_err());
        assert!(bootstrap_ci(&mut rng, &[1.0], 100, 0.95, |_| None).is_err());
    }

    #[test]
    fn reservoir_sample_sizes() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(reservoir_sample(&mut rng, 0..100, 0).len(), 0);
        assert_eq!(reservoir_sample(&mut rng, 0..100, 10).len(), 10);
        assert_eq!(reservoir_sample(&mut rng, 0..5, 10).len(), 5);
    }

    #[test]
    fn reservoir_sample_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut hit = [0usize; 10];
        for _ in 0..20_000 {
            let picked = reservoir_sample(&mut rng, 0..10usize, 1);
            hit[picked[0]] += 1;
        }
        for h in hit {
            assert!((h as f64 - 2000.0).abs() < 300.0, "hit = {hit:?}");
        }
    }
}
