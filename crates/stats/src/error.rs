//! Error type shared by the statistics substrate.

use std::fmt;

/// Errors produced by statistical routines in this crate.
///
/// The crate favours returning `Result` over panicking for conditions that
/// can arise from data (empty inputs, degenerate configurations) and reserves
/// panics for caller bugs (e.g. mismatched binners, which indicate mixed-up
/// pipelines rather than bad data).
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// An input slice was empty where at least one element is required.
    EmptyInput(&'static str),
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Which parameter was invalid.
        name: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A numeric input was NaN or infinite where a finite value is required.
    NonFinite(&'static str),
    /// A linear system was singular (or numerically indistinguishable from
    /// singular) and could not be solved.
    SingularMatrix,
    /// Two structures that must share a binner (histograms, PDFs) did not.
    BinnerMismatch,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput(what) => write!(f, "empty input: {what}"),
            StatsError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            StatsError::NonFinite(what) => write!(f, "non-finite value in {what}"),
            StatsError::SingularMatrix => write!(f, "singular matrix in linear solve"),
            StatsError::BinnerMismatch => write!(f, "operands use different binners"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience constructor for [`StatsError::InvalidParameter`].
pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> StatsError {
    StatsError::InvalidParameter {
        name,
        reason: reason.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StatsError::EmptyInput("samples");
        assert_eq!(e.to_string(), "empty input: samples");
        let e = invalid("window", "must be odd");
        assert_eq!(e.to_string(), "invalid parameter `window`: must be odd");
        assert_eq!(
            StatsError::NonFinite("latency").to_string(),
            "non-finite value in latency"
        );
        assert_eq!(
            StatsError::SingularMatrix.to_string(),
            "singular matrix in linear solve"
        );
        assert_eq!(
            StatsError::BinnerMismatch.to_string(),
            "operands use different binners"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&StatsError::SingularMatrix);
    }
}
