//! Fixed-width bin arithmetic.
//!
//! AutoSens discretizes latency into fixed-width bins (10 ms in the paper).
//! The [`Binner`] centralizes the mapping between continuous values and bin
//! indices so that histograms, PDFs, and the confounder-normalization
//! machinery all agree bit-for-bit about bin boundaries.

use serde::{Deserialize, Serialize};

use crate::error::{invalid, StatsError};

/// What to do with values that fall outside `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutOfRange {
    /// Silently drop out-of-range values (they are not counted anywhere).
    Discard,
    /// Clamp out-of-range values into the first/last bin.
    Clamp,
}

/// A fixed-width binning of the half-open interval `[lo, hi)`.
///
/// Bin `i` covers `[lo + i*width, lo + (i+1)*width)`. The last bin may be
/// slightly narrower conceptually if `hi - lo` is not an exact multiple of
/// `width`; in that case `hi` is rounded up to the next bin edge so every bin
/// has identical width (this keeps density arithmetic trivial).
///
/// ```
/// use autosens_stats::binning::{Binner, OutOfRange};
///
/// // The paper's latency binning: 10 ms bins over [0, 3000) ms.
/// let b = Binner::latency_ms(3000.0).unwrap();
/// assert_eq!(b.n_bins(), 300);
/// assert_eq!(b.index_of(299.0), Some(29));
/// assert_eq!(b.center(29), 295.0);
/// // Out-of-range samples are discarded under this policy.
/// assert_eq!(b.index_of(3000.0), None);
///
/// let clamping = Binner::new(0.0, 100.0, 10.0, OutOfRange::Clamp).unwrap();
/// assert_eq!(clamping.index_of(1e9), Some(9));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Binner {
    lo: f64,
    width: f64,
    n_bins: usize,
    policy: OutOfRange,
}

impl Binner {
    /// Create a binner over `[lo, hi)` with the given bin `width`.
    ///
    /// `hi` is rounded up to the next multiple of `width` above `lo` so all
    /// bins have equal width. Returns an error if the parameters are
    /// non-finite, `width <= 0`, or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, width: f64, policy: OutOfRange) -> Result<Self, StatsError> {
        if !lo.is_finite() || !hi.is_finite() || !width.is_finite() {
            return Err(StatsError::NonFinite("binner bounds"));
        }
        if width <= 0.0 {
            return Err(invalid("width", format!("must be positive, got {width}")));
        }
        if hi <= lo {
            return Err(invalid("hi", format!("must exceed lo={lo}, got {hi}")));
        }
        // Tolerate floating-point error when the range is an (almost-)exact
        // multiple of the width, e.g. lo=-6484.229, width=0.001: the naive
        // ceil() would add a spurious extra bin.
        let ratio = (hi - lo) / width;
        let nearest = ratio.round();
        let n_bins = if (ratio - nearest).abs() <= 1e-9 * nearest.max(1.0) {
            nearest as usize
        } else {
            ratio.ceil() as usize
        };
        if n_bins == 0 {
            return Err(invalid("width", "produces zero bins"));
        }
        Ok(Binner {
            lo,
            width,
            n_bins,
            policy,
        })
    }

    /// The binning used throughout the AutoSens paper: 10 ms latency bins
    /// over `[0, hi_ms)`, discarding out-of-range samples.
    pub fn latency_ms(hi_ms: f64) -> Result<Self, StatsError> {
        Binner::new(0.0, hi_ms, 10.0, OutOfRange::Discard)
    }

    /// Lower edge of the binned range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the binned range (exclusive).
    pub fn hi(&self) -> f64 {
        self.lo + self.width * self.n_bins as f64
    }

    /// Bin width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// The out-of-range policy.
    pub fn policy(&self) -> OutOfRange {
        self.policy
    }

    /// Map a value to its bin index.
    ///
    /// Returns `None` when the value is NaN, or out of range under the
    /// [`OutOfRange::Discard`] policy.
    pub fn index_of(&self, value: f64) -> Option<usize> {
        if value.is_nan() {
            return None;
        }
        if value < self.lo {
            return match self.policy {
                OutOfRange::Discard => None,
                OutOfRange::Clamp => Some(0),
            };
        }
        let idx = ((value - self.lo) / self.width) as usize;
        if idx >= self.n_bins {
            return match self.policy {
                OutOfRange::Discard => None,
                OutOfRange::Clamp => Some(self.n_bins - 1),
            };
        }
        Some(idx)
    }

    /// Center of bin `i`. Panics if `i` is out of range (caller bug).
    pub fn center(&self, i: usize) -> f64 {
        assert!(
            i < self.n_bins,
            "bin index {i} out of range ({})",
            self.n_bins
        );
        self.lo + (i as f64 + 0.5) * self.width
    }

    /// Lower edge of bin `i`.
    pub fn left_edge(&self, i: usize) -> f64 {
        assert!(
            i < self.n_bins,
            "bin index {i} out of range ({})",
            self.n_bins
        );
        self.lo + i as f64 * self.width
    }

    /// All bin centers, in order.
    pub fn centers(&self) -> Vec<f64> {
        (0..self.n_bins).map(|i| self.center(i)).collect()
    }

    /// Whether two binners describe the identical binning (same range, width,
    /// bin count). The out-of-range policy is intentionally *not* compared:
    /// densities from a clamping and a discarding binner over the same grid
    /// are still comparable bin-by-bin.
    pub fn same_grid(&self, other: &Binner) -> bool {
        self.lo == other.lo && self.width == other.width && self.n_bins == other.n_bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binner() -> Binner {
        Binner::new(0.0, 100.0, 10.0, OutOfRange::Discard).unwrap()
    }

    #[test]
    fn basic_properties() {
        let b = binner();
        assert_eq!(b.n_bins(), 10);
        assert_eq!(b.lo(), 0.0);
        assert_eq!(b.hi(), 100.0);
        assert_eq!(b.width(), 10.0);
    }

    #[test]
    fn index_of_interior_values() {
        let b = binner();
        assert_eq!(b.index_of(0.0), Some(0));
        assert_eq!(b.index_of(9.999), Some(0));
        assert_eq!(b.index_of(10.0), Some(1));
        assert_eq!(b.index_of(99.999), Some(9));
    }

    #[test]
    fn discard_policy_drops_out_of_range() {
        let b = binner();
        assert_eq!(b.index_of(-0.001), None);
        assert_eq!(b.index_of(100.0), None);
        assert_eq!(b.index_of(f64::NAN), None);
    }

    #[test]
    fn clamp_policy_clamps() {
        let b = Binner::new(0.0, 100.0, 10.0, OutOfRange::Clamp).unwrap();
        assert_eq!(b.index_of(-5.0), Some(0));
        assert_eq!(b.index_of(100.0), Some(9));
        assert_eq!(b.index_of(1e9), Some(9));
        // NaN is still dropped: it has no meaningful bin.
        assert_eq!(b.index_of(f64::NAN), None);
    }

    #[test]
    fn non_multiple_range_rounds_up() {
        let b = Binner::new(0.0, 95.0, 10.0, OutOfRange::Discard).unwrap();
        assert_eq!(b.n_bins(), 10);
        assert_eq!(b.hi(), 100.0);
        assert_eq!(b.index_of(97.0), Some(9));
    }

    #[test]
    fn centers_and_edges() {
        let b = binner();
        assert_eq!(b.center(0), 5.0);
        assert_eq!(b.center(9), 95.0);
        assert_eq!(b.left_edge(3), 30.0);
        assert_eq!(b.centers().len(), 10);
    }

    #[test]
    fn latency_ms_preset_matches_paper() {
        let b = Binner::latency_ms(3000.0).unwrap();
        assert_eq!(b.width(), 10.0);
        assert_eq!(b.n_bins(), 300);
        assert_eq!(b.index_of(299.0), Some(29));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Binner::new(0.0, 10.0, 0.0, OutOfRange::Discard).is_err());
        assert!(Binner::new(0.0, 10.0, -1.0, OutOfRange::Discard).is_err());
        assert!(Binner::new(10.0, 10.0, 1.0, OutOfRange::Discard).is_err());
        assert!(Binner::new(10.0, 0.0, 1.0, OutOfRange::Discard).is_err());
        assert!(Binner::new(f64::NAN, 10.0, 1.0, OutOfRange::Discard).is_err());
        assert!(Binner::new(0.0, f64::INFINITY, 1.0, OutOfRange::Discard).is_err());
    }

    #[test]
    fn same_grid_ignores_policy() {
        let a = Binner::new(0.0, 100.0, 10.0, OutOfRange::Discard).unwrap();
        let b = Binner::new(0.0, 100.0, 10.0, OutOfRange::Clamp).unwrap();
        assert!(a.same_grid(&b));
        let c = Binner::new(0.0, 100.0, 20.0, OutOfRange::Discard).unwrap();
        assert!(!a.same_grid(&c));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn center_panics_out_of_range() {
        binner().center(10);
    }

    #[test]
    fn serde_roundtrip() {
        let b = binner();
        let json = serde_json::to_string(&b).unwrap();
        let back: Binner = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
