//! Seeded distribution samplers.
//!
//! `rand` 0.8 alone only supplies uniform primitives; the heavier `rand_distr`
//! crate is avoided to keep the dependency set to the approved list, so the
//! handful of distributions the simulator needs are implemented here:
//! Normal (Box–Muller), LogNormal, Exponential (inverse CDF), Pareto
//! (inverse CDF), and Poisson counts (Knuth's product method with a normal
//! approximation for large means).

use rand::Rng;

use crate::error::{invalid, StatsError};

/// Standard-normal draw via the Box–Muller transform.
///
/// Uses both uniforms each call and discards the spare; simplicity and
/// statelessness are worth the extra uniform draw here.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Guard against ln(0): sample u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution; `std_dev` must be finite and >= 0.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() || !std_dev.is_finite() {
            return Err(StatsError::NonFinite("normal parameters"));
        }
        if std_dev < 0.0 {
            return Err(invalid("std_dev", format!("must be >= 0, got {std_dev}")));
        }
        Ok(Normal { mean, std_dev })
    }

    /// Draw one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution parameterized by the mean/std-dev of the
/// underlying normal (`ln X ~ N(mu, sigma^2)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create from the log-space parameters.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        if !mu.is_finite() || !sigma.is_finite() {
            return Err(StatsError::NonFinite("lognormal parameters"));
        }
        if sigma < 0.0 {
            return Err(invalid("sigma", format!("must be >= 0, got {sigma}")));
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Create from the desired *median* of X and log-space sigma.
    /// (`median = e^mu`, a more intuitive parameterization for latency.)
    pub fn from_median(median: f64, sigma: f64) -> Result<Self, StatsError> {
        if !median.is_finite() || median <= 0.0 {
            return Err(invalid("median", format!("must be > 0, got {median}")));
        }
        LogNormal::new(median.ln(), sigma)
    }

    /// Draw one sample (always positive).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// The distribution median `e^mu`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// The distribution mean `e^(mu + sigma^2/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Exponential distribution with the given rate (inverse mean).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create an exponential distribution; `rate` must be finite and > 0.
    pub fn new(rate: f64) -> Result<Self, StatsError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(invalid("rate", format!("must be > 0, got {rate}")));
        }
        Ok(Exponential { rate })
    }

    /// Draw one sample via inverse CDF.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        -u.ln() / self.rate
    }
}

/// Pareto (type I) distribution: heavy-tailed latency spikes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Create a Pareto distribution with minimum `scale` and tail `shape`.
    pub fn new(scale: f64, shape: f64) -> Result<Self, StatsError> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(invalid("scale", format!("must be > 0, got {scale}")));
        }
        if !shape.is_finite() || shape <= 0.0 {
            return Err(invalid("shape", format!("must be > 0, got {shape}")));
        }
        Ok(Pareto { scale, shape })
    }

    /// Draw one sample (always >= scale) via inverse CDF.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        self.scale / u.powf(1.0 / self.shape)
    }
}

/// Draw a Poisson-distributed count with the given mean.
///
/// Knuth's product method for `lambda <= 30`; for larger means a rounded
/// normal approximation `N(lambda, lambda)` clipped at zero (adequate for
/// workload generation, where lambda is a per-window event count).
pub fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> Result<u64, StatsError> {
    if !lambda.is_finite() || lambda < 0.0 {
        return Err(invalid("lambda", format!("must be >= 0, got {lambda}")));
    }
    if lambda == 0.0 {
        return Ok(0);
    }
    if lambda <= 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        Ok(count)
    } else {
        let draw = lambda + lambda.sqrt() * standard_normal(rng);
        Ok(draw.round().max(0.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 50_000;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..N).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / N as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / N as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn normal_respects_parameters() {
        let mut r = rng();
        let d = Normal::new(10.0, 3.0).unwrap();
        let xs: Vec<f64> = (0..N).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / N as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / N as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var - 9.0).abs() < 0.3);
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn lognormal_median_and_positivity() {
        let mut r = rng();
        let d = LogNormal::from_median(200.0, 0.5).unwrap();
        assert!((d.median() - 200.0).abs() < 1e-9);
        let mut xs: Vec<f64> = (0..N).map(|_| d.sample(&mut r)).collect();
        assert!(xs.iter().all(|x| *x > 0.0));
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[N / 2];
        assert!((med - 200.0).abs() / 200.0 < 0.03, "median = {med}");
        // mean = e^(mu + sigma^2/2)
        let mean = xs.iter().sum::<f64>() / N as f64;
        assert!((mean - d.mean()).abs() / d.mean() < 0.05);
        assert!(LogNormal::from_median(0.0, 1.0).is_err());
        assert!(LogNormal::new(0.0, -0.1).is_err());
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let d = Exponential::new(0.25).unwrap();
        let xs: Vec<f64> = (0..N).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / N as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean = {mean}");
        assert!(xs.iter().all(|x| *x >= 0.0));
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
    }

    #[test]
    fn pareto_minimum_and_tail() {
        let mut r = rng();
        let d = Pareto::new(100.0, 2.5).unwrap();
        let xs: Vec<f64> = (0..N).map(|_| d.sample(&mut r)).collect();
        assert!(xs.iter().all(|x| *x >= 100.0));
        // Mean of Pareto(scale, shape>1) = scale * shape / (shape - 1).
        let mean = xs.iter().sum::<f64>() / N as f64;
        let expect = 100.0 * 2.5 / 1.5;
        assert!((mean - expect).abs() / expect < 0.05, "mean = {mean}");
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut r = rng();
        let lambda = 3.5;
        let xs: Vec<f64> = (0..N)
            .map(|_| poisson(&mut r, lambda).unwrap() as f64)
            .collect();
        let mean = xs.iter().sum::<f64>() / N as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / N as f64;
        assert!((mean - lambda).abs() < 0.05, "mean = {mean}");
        assert!((var - lambda).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut r = rng();
        let lambda = 400.0;
        let xs: Vec<f64> = (0..20_000)
            .map(|_| poisson(&mut r, lambda).unwrap() as f64)
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - lambda).abs() / lambda < 0.01, "mean = {mean}");
        assert!((var - lambda).abs() / lambda < 0.1, "var = {var}");
    }

    #[test]
    fn poisson_edge_cases() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0).unwrap(), 0);
        assert!(poisson(&mut r, -1.0).is_err());
        assert!(poisson(&mut r, f64::NAN).is_err());
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let d = LogNormal::from_median(300.0, 0.4).unwrap();
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
