//! Savitzky–Golay smoothing, derived from first principles.
//!
//! The paper smooths the noisy `B/U` ratio with a Savitzky–Golay filter of
//! window 101 and polynomial degree 3 (§2.3). A Savitzky–Golay filter fits,
//! around every point, a least-squares polynomial over a symmetric window and
//! replaces the point with the polynomial's value there. For interior points
//! this reduces to a fixed convolution; near the boundaries we fit the
//! polynomial over the first/last full window and evaluate it at the edge
//! offsets (the same behaviour as SciPy's `mode="interp"`).
//!
//! Coefficients are obtained by solving the normal equations of the
//! polynomial fit with the small dense solver in [`crate::linalg`]; no
//! tabulated kernels are used.

use crate::error::{invalid, StatsError};
use crate::linalg::Matrix;

/// A configured Savitzky–Golay filter.
///
/// ```
/// use autosens_stats::savgol::SavGol;
///
/// // A degree-3 filter reproduces any cubic exactly...
/// let filter = SavGol::new(11, 3).unwrap();
/// let cubic: Vec<f64> = (0..40).map(|i| {
///     let x = i as f64;
///     0.5 * x * x * x - 2.0 * x * x + 3.0 * x - 7.0
/// }).collect();
/// let smoothed = filter.smooth(&cubic).unwrap();
/// for (a, b) in smoothed.iter().zip(&cubic) {
///     assert!((a - b).abs() < 1e-6 * b.abs().max(1.0));
/// }
///
/// // ...and the paper's default is window 101, degree 3.
/// let paper = SavGol::paper_default();
/// assert_eq!((paper.window(), paper.degree()), (101, 3));
/// ```
#[derive(Debug, Clone)]
pub struct SavGol {
    window: usize,
    degree: usize,
    /// `window x window` matrix of weights; row `r` holds the weights that
    /// produce the fitted value at window offset `r` (0 = leftmost point).
    /// Row `window/2` is the classical interior convolution kernel.
    weights: Matrix,
}

impl SavGol {
    /// Create a filter with the given odd `window` length and polynomial
    /// `degree < window`.
    pub fn new(window: usize, degree: usize) -> Result<Self, StatsError> {
        if window < 3 || window.is_multiple_of(2) {
            return Err(invalid(
                "window",
                format!("must be odd and >= 3, got {window}"),
            ));
        }
        if degree >= window {
            return Err(invalid(
                "degree",
                format!("must be < window ({window}), got {degree}"),
            ));
        }
        let weights = projection_matrix(window, degree)?;
        Ok(SavGol {
            window,
            degree,
            weights,
        })
    }

    /// The paper's configuration: window 101, degree 3.
    pub fn paper_default() -> Self {
        SavGol::new(101, 3).expect("101/3 is a valid configuration")
    }

    /// Window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Polynomial degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The interior convolution kernel (weights for the window center).
    pub fn kernel(&self) -> Vec<f64> {
        let mid = self.window / 2;
        (0..self.window).map(|c| self.weights.get(mid, c)).collect()
    }

    /// Smooth a series.
    ///
    /// When the series is shorter than the window, the filter transparently
    /// degrades to the largest valid odd window (and, if necessary, a lower
    /// degree) so short slices are smoothed rather than rejected — the paper
    /// applies a window of 101 bins to curves whose well-supported range can
    /// be shorter than that.
    pub fn smooth(&self, data: &[f64]) -> Result<Vec<f64>, StatsError> {
        if data.is_empty() {
            return Err(StatsError::EmptyInput("savgol input"));
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::NonFinite("savgol input"));
        }
        if data.len() < self.window {
            // Degrade: largest odd window <= len, degree capped below it.
            let mut w = data.len();
            if w.is_multiple_of(2) {
                w -= 1;
            }
            if w < 3 {
                // 1- or 2-point series: nothing to fit, return unchanged.
                return Ok(data.to_vec());
            }
            let deg = self.degree.min(w - 1);
            let reduced = SavGol::new(w, deg)?;
            return reduced.smooth(data);
        }

        let n = data.len();
        let w = self.window;
        let half = w / 2;
        let mut out = vec![0.0; n];

        // Interior: convolution with the center kernel.
        let kernel = self.kernel();
        for i in half..(n - half) {
            let mut acc = 0.0;
            for (k, &coef) in kernel.iter().enumerate() {
                acc += coef * data[i - half + k];
            }
            out[i] = acc;
        }
        // Left edge: fit over the first window, evaluate at offsets 0..half.
        for (i, slot) in out.iter_mut().enumerate().take(half) {
            let mut acc = 0.0;
            for (c, &v) in data.iter().enumerate().take(w) {
                acc += self.weights.get(i, c) * v;
            }
            *slot = acc;
        }
        // Right edge: fit over the last window, evaluate at trailing offsets.
        for (i, slot) in out.iter_mut().enumerate().skip(n - half) {
            let offset = w - (n - i);
            let mut acc = 0.0;
            for (c, &v) in data[n - w..].iter().enumerate() {
                acc += self.weights.get(offset, c) * v;
            }
            *slot = acc;
        }
        Ok(out)
    }
}

/// The least-squares projection matrix `A (AᵀA)⁻¹ Aᵀ` for a Vandermonde
/// design over window offsets centered at zero. Row `r` gives the weights
/// producing the fitted value at offset position `r`.
fn projection_matrix(window: usize, degree: usize) -> Result<Matrix, StatsError> {
    let half = (window / 2) as isize;
    // Design matrix: rows = window positions, cols = powers 0..=degree.
    let a = Matrix::from_fn(window, degree + 1, |r, c| {
        let t = (r as isize - half) as f64;
        t.powi(c as i32)
    });
    let at = a.transpose();
    let gram = at.matmul(&a);
    let gram_inv = gram.inverse()?;
    // P = A (AᵀA)⁻¹ Aᵀ  — symmetric, idempotent.
    Ok(a.matmul(&gram_inv).matmul(&at))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_configurations() {
        assert!(SavGol::new(4, 2).is_err());
        assert!(SavGol::new(1, 0).is_err());
        assert!(SavGol::new(5, 5).is_err());
        assert!(SavGol::new(5, 7).is_err());
        assert!(SavGol::new(5, 2).is_ok());
    }

    #[test]
    fn kernel_matches_published_5_point_quadratic() {
        // The classical 5-point quadratic/cubic smoothing kernel is
        // [-3, 12, 17, 12, -3] / 35 (Savitzky & Golay 1964).
        let f = SavGol::new(5, 2).unwrap();
        let expect = [-3.0, 12.0, 17.0, 12.0, -3.0].map(|v| v / 35.0);
        for (a, b) in f.kernel().iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-12, "kernel {:?}", f.kernel());
        }
        // Degree 3 over the same window yields the identical smoothing kernel
        // (odd-degree term does not affect the center value).
        let f3 = SavGol::new(5, 3).unwrap();
        for (a, b) in f3.kernel().iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn kernel_matches_published_7_point_quadratic() {
        // 7-point quadratic kernel: [-2, 3, 6, 7, 6, 3, -2] / 21.
        let f = SavGol::new(7, 2).unwrap();
        let expect = [-2.0, 3.0, 6.0, 7.0, 6.0, 3.0, -2.0].map(|v| v / 21.0);
        for (a, b) in f.kernel().iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn kernel_weights_sum_to_one() {
        for (w, d) in [(5, 2), (7, 3), (11, 4), (101, 3)] {
            let f = SavGol::new(w, d).unwrap();
            let s: f64 = f.kernel().iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "window {w} degree {d}: sum {s}");
        }
    }

    #[test]
    fn polynomials_up_to_degree_pass_through_exactly() {
        // A SavGol filter of degree d reproduces any polynomial of degree <= d
        // exactly, including at the edges (interp-style edge handling).
        let f = SavGol::new(7, 3).unwrap();
        let data: Vec<f64> = (0..40)
            .map(|i| {
                let x = i as f64;
                0.5 * x * x * x - 2.0 * x * x + 3.0 * x - 7.0
            })
            .collect();
        let out = f.smooth(&data).unwrap();
        for (a, b) in out.iter().zip(&data) {
            assert!((a - b).abs() < 1e-6 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn constant_series_is_unchanged() {
        let f = SavGol::new(11, 3).unwrap();
        let data = vec![4.2; 50];
        let out = f.smooth(&data).unwrap();
        for v in out {
            assert!((v - 4.2).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_variance_is_reduced() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let clean: Vec<f64> = (0..500).map(|i| (i as f64 / 50.0).sin()).collect();
        let noisy: Vec<f64> = clean
            .iter()
            .map(|c| c + 0.3 * (rng.gen::<f64>() - 0.5))
            .collect();
        let f = SavGol::new(21, 3).unwrap();
        let smoothed = f.smooth(&noisy).unwrap();
        let err_noisy: f64 = noisy
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let err_smooth: f64 = smoothed
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!(
            err_smooth < err_noisy / 3.0,
            "smoothing should cut error at least 3x: {err_smooth} vs {err_noisy}"
        );
    }

    #[test]
    fn short_series_degrades_gracefully() {
        let f = SavGol::new(101, 3).unwrap();
        // Shorter than the window: must still smooth, not error.
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let out = f.smooth(&data).unwrap();
        assert_eq!(out.len(), 20);
        // A line is a degree-1 polynomial: reproduced exactly by degree-3 fit.
        for (a, b) in out.iter().zip(&data) {
            assert!((a - b).abs() < 1e-8);
        }
        // 1- and 2-point series pass through.
        assert_eq!(f.smooth(&[5.0]).unwrap(), vec![5.0]);
        assert_eq!(f.smooth(&[5.0, 6.0]).unwrap(), vec![5.0, 6.0]);
    }

    #[test]
    fn rejects_bad_data() {
        let f = SavGol::new(5, 2).unwrap();
        assert!(f.smooth(&[]).is_err());
        assert!(f.smooth(&[1.0, f64::NAN, 2.0]).is_err());
        assert!(f.smooth(&[1.0, f64::INFINITY, 2.0]).is_err());
    }

    #[test]
    fn paper_default_configuration() {
        let f = SavGol::paper_default();
        assert_eq!(f.window(), 101);
        assert_eq!(f.degree(), 3);
    }
}
