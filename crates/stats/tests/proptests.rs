//! Property-based tests for the statistics substrate.

use autosens_stats::binning::{Binner, OutOfRange};
use autosens_stats::histogram::Histogram;
use autosens_stats::{correlation, descriptive, sampling, savgol, smoothing, succdiff};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a vector of finite, reasonably sized floats.
fn finite_vec(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6f64..1.0e6, min_len..=max_len)
}

proptest! {
    // ---------- binning ----------

    #[test]
    fn binner_index_roundtrips_centers(
        n_bins in 1usize..200,
        width in 0.001f64..1000.0,
        lo in -1.0e4f64..1.0e4,
    ) {
        let hi = lo + width * n_bins as f64;
        let b = Binner::new(lo, hi, width, OutOfRange::Discard).unwrap();
        prop_assert_eq!(b.n_bins(), n_bins);
        for i in 0..n_bins {
            // The center of every bin maps back to that bin.
            prop_assert_eq!(b.index_of(b.center(i)), Some(i));
        }
    }

    #[test]
    fn binner_clamp_never_discards_finite(
        v in -1.0e9f64..1.0e9,
    ) {
        let b = Binner::new(0.0, 100.0, 10.0, OutOfRange::Clamp).unwrap();
        prop_assert!(b.index_of(v).is_some());
    }

    // ---------- histogram / pdf ----------

    #[test]
    fn histogram_conserves_count(values in finite_vec(1, 500)) {
        let b = Binner::new(-1.0e6, 1.0e6, 1.0e4, OutOfRange::Discard).unwrap();
        let h = Histogram::from_values(b, &values);
        prop_assert_eq!(h.n_recorded() + h.n_discarded(), values.len() as u64);
        // All inputs are in range, so nothing may be discarded.
        prop_assert_eq!(h.n_discarded(), 0);
        prop_assert!((h.total() - values.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn pdf_mass_is_one(values in finite_vec(1, 500)) {
        let b = Binner::new(-1.0e6, 1.0e6, 1.0e4, OutOfRange::Discard).unwrap();
        let pdf = Histogram::from_values(b, &values).to_pdf().unwrap();
        prop_assert!((pdf.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_is_additive(a in finite_vec(0, 200), b in finite_vec(0, 200)) {
        let binner = Binner::new(-1.0e6, 1.0e6, 1.0e4, OutOfRange::Discard).unwrap();
        let mut ha = Histogram::from_values(binner.clone(), &a);
        let hb = Histogram::from_values(binner.clone(), &b);
        ha.merge(&hb).unwrap();
        let mut both = a.clone();
        both.extend_from_slice(&b);
        let hboth = Histogram::from_values(binner, &both);
        for i in 0..hboth.binner().n_bins() {
            prop_assert!((ha.count(i) - hboth.count(i)).abs() < 1e-9);
        }
    }

    // ---------- descriptive ----------

    #[test]
    fn quantiles_are_monotone_and_bounded(values in finite_vec(1, 300)) {
        let q0 = descriptive::quantile(&values, 0.0).unwrap();
        let q25 = descriptive::quantile(&values, 0.25).unwrap();
        let q50 = descriptive::quantile(&values, 0.5).unwrap();
        let q75 = descriptive::quantile(&values, 0.75).unwrap();
        let q100 = descriptive::quantile(&values, 1.0).unwrap();
        prop_assert!(q0 <= q25 && q25 <= q50 && q50 <= q75 && q75 <= q100);
        prop_assert_eq!(q0, descriptive::min(&values).unwrap());
        prop_assert_eq!(q100, descriptive::max(&values).unwrap());
    }

    #[test]
    fn mean_is_between_min_and_max(values in finite_vec(1, 300)) {
        let m = descriptive::mean(&values).unwrap();
        prop_assert!(m >= descriptive::min(&values).unwrap() - 1e-9);
        prop_assert!(m <= descriptive::max(&values).unwrap() + 1e-9);
    }

    // ---------- successive differences ----------

    #[test]
    fn sorted_series_minimizes_msd(values in finite_vec(3, 200)) {
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let msd_orig = succdiff::mean_successive_difference(&values).unwrap();
        let msd_sorted = succdiff::mean_successive_difference(&sorted).unwrap();
        prop_assert!(msd_sorted <= msd_orig + 1e-9);
    }

    #[test]
    fn mad_is_permutation_invariant(values in finite_vec(2, 200), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shuf = sampling::shuffled(&values, &mut rng);
        let a = succdiff::mean_absolute_difference(&values).unwrap();
        let b = succdiff::mean_absolute_difference(&shuf).unwrap();
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    }

    // ---------- correlation ----------

    #[test]
    fn pearson_is_symmetric_and_bounded(
        pairs in prop::collection::vec((-1.0e3f64..1.0e3, -1.0e3f64..1.0e3), 3..100)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let (Ok(rxy), Ok(ryx)) = (correlation::pearson(&x, &y), correlation::pearson(&y, &x)) {
            prop_assert!((rxy - ryx).abs() < 1e-9);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rxy));
        }
    }

    #[test]
    fn pearson_invariant_to_affine_transform(
        pairs in prop::collection::vec((-1.0e3f64..1.0e3, -1.0e3f64..1.0e3), 3..100),
        scale in 0.1f64..10.0,
        shift in -100.0f64..100.0,
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let x2: Vec<f64> = x.iter().map(|v| v * scale + shift).collect();
        if let (Ok(a), Ok(b)) = (correlation::pearson(&x, &y), correlation::pearson(&x2, &y)) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    // ---------- savgol & smoothing ----------

    #[test]
    fn savgol_reproduces_cubics_exactly(
        c0 in -10.0f64..10.0,
        c1 in -1.0f64..1.0,
        c2 in -0.1f64..0.1,
        c3 in -0.01f64..0.01,
        n in 15usize..120,
    ) {
        let f = savgol::SavGol::new(11, 3).unwrap();
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64;
                c0 + c1 * x + c2 * x * x + c3 * x * x * x
            })
            .collect();
        let out = f.smooth(&data).unwrap();
        for (a, b) in out.iter().zip(&data) {
            prop_assert!((a - b).abs() < 1e-5 * b.abs().max(1.0), "{} vs {}", a, b);
        }
    }

    #[test]
    fn savgol_output_length_matches(values in finite_vec(1, 300)) {
        let f = savgol::SavGol::new(11, 3).unwrap();
        let out = f.smooth(&values).unwrap();
        prop_assert_eq!(out.len(), values.len());
    }

    #[test]
    fn moving_average_stays_within_range(values in finite_vec(1, 200)) {
        let out = smoothing::moving_average(&values, 7).unwrap();
        let lo = descriptive::min(&values).unwrap();
        let hi = descriptive::max(&values).unwrap();
        for v in out {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn median_filter_outputs_values_within_range(values in finite_vec(1, 200)) {
        let out = smoothing::median_filter(&values, 5).unwrap();
        let lo = descriptive::min(&values).unwrap();
        let hi = descriptive::max(&values).unwrap();
        for v in out {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    // ---------- sampling ----------

    #[test]
    fn shuffle_preserves_multiset(values in finite_vec(0, 200), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shuf = sampling::shuffled(&values, &mut rng);
        let mut orig = values.clone();
        shuf.sort_by(|a, b| a.partial_cmp(b).unwrap());
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(shuf, orig);
    }

    #[test]
    fn reservoir_sample_items_come_from_input(
        values in prop::collection::vec(0i64..1000, 0..200),
        k in 0usize..50,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let picked = sampling::reservoir_sample(&mut rng, values.iter().copied(), k);
        prop_assert_eq!(picked.len(), k.min(values.len()));
        for p in picked {
            prop_assert!(values.contains(&p));
        }
    }
}
