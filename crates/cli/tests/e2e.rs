//! End-to-end tests of the `autosens` binary: generate telemetry to a temp
//! file, then diagnose, analyze (with and without a slice/CI), and print
//! activity factors — exactly as an operator would.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autosens"))
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("autosens-e2e-{}-{name}", std::process::id()));
    p
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Generate once for the whole binary's tests (serial by file lock on the
/// path name — each test uses its own file to stay independent).
fn generate_csv(path: &std::path::Path) {
    run_ok(bin().args([
        "generate",
        "--scenario",
        "smoke",
        "--out",
        path.to_str().expect("utf8 temp path"),
    ]));
}

#[test]
fn generate_then_diagnose() {
    let path = tmp_path("diag.csv");
    generate_csv(&path);
    let out = run_ok(bin().args(["diagnose", "--in", path.to_str().unwrap()]));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("MSD/MAD actual"), "{text}");
    assert!(text.contains("locality precondition"), "{text}");
    assert!(text.contains("SATISFIED"), "{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn generate_then_analyze_slice() {
    let path = tmp_path("analyze.csv");
    generate_csv(&path);
    let out = run_ok(bin().args([
        "analyze",
        "--in",
        path.to_str().unwrap(),
        "--action",
        "SelectMail",
        "--class",
        "Business",
    ]));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SelectMail / Business"), "{text}");
    assert!(text.contains("normalized preference"), "{text}");
    // The table includes the reference row's neighbourhood.
    assert!(text.contains("300"), "{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn analyze_emits_json_when_asked() {
    let path = tmp_path("json.csv");
    generate_csv(&path);
    let out = run_ok(bin().args([
        "analyze",
        "--in",
        path.to_str().unwrap(),
        "--action",
        "SelectMail",
        "--json",
    ]));
    let text = String::from_utf8_lossy(&out.stdout);
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(parsed["reference_ms"], 300.0);
    assert!(parsed["points"]
        .as_array()
        .map(|a| !a.is_empty())
        .unwrap_or(false));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn analyze_with_confidence_band() {
    let path = tmp_path("ci.csv");
    generate_csv(&path);
    let out = run_ok(bin().args([
        "analyze",
        "--in",
        path.to_str().unwrap(),
        "--action",
        "SelectMail",
        "--ci",
        "25",
    ]));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ci lo"), "{text}");
    assert!(text.contains("ci hi"), "{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn alpha_command_prints_period_factors() {
    let path = tmp_path("alpha.csv");
    generate_csv(&path);
    let out = run_ok(bin().args(["alpha", "--in", path.to_str().unwrap()]));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("8am-2pm"), "{text}");
    assert!(text.contains("2am-8am"), "{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn jsonl_roundtrip_through_the_binary() {
    let path = tmp_path("log.jsonl");
    run_ok(bin().args([
        "generate",
        "--scenario",
        "smoke",
        "--format",
        "jsonl",
        "--out",
        path.to_str().unwrap(),
    ]));
    let out = run_ok(bin().args([
        "analyze",
        "--in",
        path.to_str().unwrap(),
        "--format",
        "jsonl",
        "--action",
        "SelectMail",
    ]));
    assert!(String::from_utf8_lossy(&out.stdout).contains("normalized preference"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn report_command_emits_full_json_bundle() {
    let path = tmp_path("report.csv");
    generate_csv(&path);
    let out = run_ok(bin().args([
        "report",
        "--in",
        path.to_str().unwrap(),
        "--action",
        "SelectMail",
        "--class",
        "Business",
    ]));
    let text = String::from_utf8_lossy(&out.stdout);
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(parsed["label"], "SelectMail / Business");
    assert!(parsed["preference"]["points"]
        .as_array()
        .map(|a| !a.is_empty())
        .unwrap_or(false));
    assert_eq!(
        parsed["alpha_by_period"].as_array().map(|a| a.len()),
        Some(4)
    );
    assert!(parsed["locality"]["msd_mad_actual"].as_f64().unwrap() < 1.0);
    assert!(parsed["bottleneck"]["bottleneck_factor"].as_f64() == Some(2.0));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn abandonment_command_prints_continuation() {
    let path = tmp_path("abandon.csv");
    generate_csv(&path);
    let out = run_ok(bin().args([
        "abandonment",
        "--in",
        path.to_str().unwrap(),
        "--class",
        "Business",
        "--gap",
        "600000",
    ]));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sessions"), "{text}");
    assert!(text.contains("normalized continuation"), "{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn profile_prints_stage_tree_and_writes_artifacts() {
    let path = tmp_path("profile.csv");
    let trace = tmp_path("trace.jsonl");
    let metrics = tmp_path("metrics.json");
    generate_csv(&path);
    let out = run_ok(bin().args([
        "analyze",
        "--in",
        path.to_str().unwrap(),
        "--ci",
        "25",
        "--profile",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]));
    // The stage tree lands on stderr with every documented stage.
    let err = String::from_utf8_lossy(&out.stderr);
    for stage in [
        "analyze",
        "sanitize",
        "alpha",
        "biased_pdf",
        "unbiased_pdf",
        "smoothing",
        "normalization",
        "ci_bootstrap",
        "codec.read_csv",
    ] {
        assert!(err.contains(stage), "missing stage {stage:?} in:\n{err}");
    }
    // stdout is still the normal table, untouched by profiling.
    assert!(String::from_utf8_lossy(&out.stdout).contains("ci lo"));

    // The trace is valid JSONL: every line parses as a JSON object.
    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    assert!(!trace_text.trim().is_empty());
    for line in trace_text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid trace line");
        assert!(v["name"].as_str().is_some(), "{line}");
    }

    // The metrics snapshot is valid JSON and carries the pipeline counters.
    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics written");
    let v: serde_json::Value = serde_json::from_str(&metrics_text).expect("valid metrics JSON");
    let counters = v["counters"].as_array().expect("counters array");
    let get = |name: &str| {
        counters
            .iter()
            .find(|c| c["name"] == name)
            .and_then(|c| c["value"].as_f64())
            .unwrap_or_else(|| panic!("missing counter {name} in {metrics_text}"))
    };
    assert_eq!(get("autosens_core_analyses_total"), 1.0);
    assert!(get("autosens_core_records_read_total") > 0.0);
    assert!(get("autosens_telemetry_records_read_total") > 0.0);
    assert!(get("autosens_core_bootstrap_replicates_total") >= 25.0);

    for p in [&path, &trace, &metrics] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn quiet_suppresses_progress_and_json_stays_clean() {
    let path = tmp_path("quiet.csv");
    let out = run_ok(bin().args([
        "generate",
        "--scenario",
        "smoke",
        "--out",
        path.to_str().unwrap(),
        "--quiet",
    ]));
    assert!(
        out.stderr.is_empty(),
        "quiet generate still wrote stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = run_ok(bin().args(["analyze", "--in", path.to_str().unwrap(), "--json", "-q"]));
    assert!(out.stderr.is_empty());
    let text = String::from_utf8_lossy(&out.stdout);
    let _: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bad_usage_exits_nonzero_with_usage_text() {
    let out = bin().args(["frobnicate"]).output().expect("runs");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");

    let out = bin()
        .args(["analyze", "--in", "/nonexistent.csv"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1));
}
