//! End-to-end tests of the binary container through the CLI: `convert`
//! produces an `.asc` whose analysis is byte-identical to the text input,
//! every reading command auto-detects containers by magic, and `watch`
//! checkpoints a growing container by row offset and refuses to resume
//! past a truncated source.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autosens"))
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("autosens-asc-{}-{name}", std::process::id()));
    p
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn generate_csv(path: &Path) {
    run_ok(bin().args([
        "generate",
        "--scenario",
        "smoke",
        "--out",
        path.to_str().expect("utf8 temp path"),
        "--quiet",
    ]));
}

fn convert(input: &Path, out: &Path) {
    run_ok(bin().args([
        "convert",
        "--in",
        input.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--quiet",
    ]));
}

fn analyze_json(path: &Path, extra: &[&str]) -> String {
    let out = run_ok(
        bin()
            .args([
                "analyze",
                "--in",
                path.to_str().unwrap(),
                "--json",
                "--quiet",
            ])
            .args(extra),
    );
    String::from_utf8(out.stdout).expect("utf8 json")
}

fn cleanup(paths: &[&Path]) {
    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn convert_then_analyze_is_byte_identical_to_csv() {
    let csv = tmp_path("equiv.csv");
    let asc = tmp_path("equiv.asc");
    generate_csv(&csv);
    convert(&csv, &asc);

    // Same JSON bytes out of the text parse and the zero-parse mmap path,
    // serially and under threading, with and without the CI band.
    for extra in [&[][..], &["--threads", "4"][..], &["--ci", "25"][..]] {
        let from_csv = analyze_json(&csv, extra);
        let from_asc = analyze_json(&asc, extra);
        assert_eq!(from_csv, from_asc, "extra args: {extra:?}");
    }
    cleanup(&[&csv, &asc]);
}

#[test]
fn generate_writes_containers_directly() {
    let csv = tmp_path("direct.csv");
    let asc = tmp_path("direct.asc");
    // Same scenario and seed through both writers.
    for (path, format) in [(&csv, "csv"), (&asc, "asc")] {
        run_ok(bin().args([
            "generate",
            "--scenario",
            "smoke",
            "--seed",
            "7",
            "--format",
            format,
            "--out",
            path.to_str().unwrap(),
            "--quiet",
        ]));
    }
    assert_eq!(analyze_json(&csv, &[]), analyze_json(&asc, &[]));

    // Containers are detected by magic, not extension or --format: audit
    // reads one strictly with zero malformed rows.
    let out = run_ok(bin().args(["audit", "--in", asc.to_str().unwrap(), "--json", "--quiet"]));
    let report: serde_json::Value = serde_json::from_str(&String::from_utf8_lossy(&out.stdout))
        .expect("audit emits valid JSON");
    assert!(report["n_records"].as_u64().unwrap_or(0) > 0, "{report:?}");
    cleanup(&[&csv, &asc]);
}

#[test]
fn analyze_rejects_text_file_under_format_asc() {
    let csv = tmp_path("notasc.csv");
    generate_csv(&csv);
    let out = bin()
        .args([
            "analyze",
            "--in",
            csv.to_str().unwrap(),
            "--format",
            "asc",
            "--quiet",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not a container file"), "{stderr}");
    cleanup(&[&csv]);
}

/// Write a CSV holding only the first `n` data rows of `full`.
fn csv_prefix(full: &Path, prefix: &Path, n: usize) -> usize {
    let text = std::fs::read_to_string(full).unwrap();
    let mut lines = text.lines();
    let header = lines.next().expect("csv header");
    let rows: Vec<&str> = lines.take(n).collect();
    let mut out = String::from(header);
    out.push('\n');
    for r in &rows {
        out.push_str(r);
        out.push('\n');
    }
    std::fs::write(prefix, out).unwrap();
    rows.len()
}

fn checkpoint_offset(path: &Path) -> u64 {
    let ck: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(path).unwrap()).expect("checkpoint JSON");
    ck["source_offset"].as_u64().expect("source_offset field")
}

#[test]
fn watch_checkpoints_growing_container_by_row() {
    let csv = tmp_path("grow.csv");
    let half_csv = tmp_path("grow-half.csv");
    let source = tmp_path("grow.asc");
    let ck = tmp_path("grow-ck.json");
    generate_csv(&csv);
    let total = std::fs::read_to_string(&csv).unwrap().lines().count() - 1;
    let half = csv_prefix(&csv, &half_csv, total / 2);

    // First watch covers the container's first half and checkpoints.
    convert(&half_csv, &source);
    run_ok(bin().args([
        "watch",
        "--in",
        source.to_str().unwrap(),
        "--until-eof",
        "--json",
        "--checkpoint",
        ck.to_str().unwrap(),
        "--quiet",
    ]));
    // The offset is a row count, aligned to what the container holds.
    assert_eq!(checkpoint_offset(&ck), half as u64);

    // The source grows by atomic replacement (convert writes tmp+rename).
    convert(&csv, &source);
    let resumed = run_ok(bin().args([
        "watch",
        "--in",
        source.to_str().unwrap(),
        "--until-eof",
        "--json",
        "--checkpoint",
        ck.to_str().unwrap(),
        "--resume",
        "--quiet",
    ]));
    assert_eq!(checkpoint_offset(&ck), total as u64);

    // The resumed stream's final snapshot equals batch analyze over the
    // full container, byte for byte.
    let batch = analyze_json(&source, &[]);
    assert_eq!(String::from_utf8_lossy(&resumed.stdout), batch);

    // A source that shrank below the checkpointed row offset must refuse
    // to resume instead of replaying rows that no longer exist.
    convert(&half_csv, &source);
    let out = bin()
        .args([
            "watch",
            "--in",
            source.to_str().unwrap(),
            "--until-eof",
            "--json",
            "--checkpoint",
            ck.to_str().unwrap(),
            "--resume",
            "--quiet",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "resume past EOF must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("truncated"), "{stderr}");
    cleanup(&[&csv, &half_csv, &source, &ck]);
}
