//! Argument parsing for the `autosens` CLI (hand-rolled: the approved
//! dependency set has no argument parser, and the surface is small).

use autosens_sim::Scenario;
use autosens_telemetry::record::{ActionType, UserClass};
use autosens_telemetry::time::{DayPeriod, Month};

/// Usage text shown on parse errors.
pub const USAGE: &str = "\
usage:
  autosens generate --scenario <smoke|default|paper-scale> --out <path> [--format csv|jsonl|asc] [--seed N]
                    [--threads N]
  autosens convert  --in <path> --out <path> [--format csv|jsonl] [--shard-ms MS]
  autosens analyze  --in <path> [--format csv|jsonl] [--action A] [--class C]
                    [--period P] [--month M] [--tz HOURS] [--no-alpha]
                    [--loss-correct[=on|off]] [--reference MS]
                    [--ci REPLICATES] [--json] [--threads N]
                    [--profile] [--trace-out PATH] [--metrics-out PATH]
  autosens diagnose --in <path> [--format csv|jsonl]
  autosens alpha    --in <path> [--format csv|jsonl] [--action A] [--class C]
  autosens abandonment --in <path> [--format csv|jsonl] [--class C] [--gap MS]
  autosens report   --in <path> [--format csv|jsonl] [--action A] [--class C]
  autosens audit    --in <path> [--format csv|jsonl] [--json] [--metrics-out PATH]
  autosens inject   --in <path> --plan <plan.json> --out <path> [--format csv|jsonl]
  autosens watch    --in <path> [--format csv|jsonl] [--action A] [--class C]
                    [--period P] [--month M] [--tz HOURS] [--no-alpha]
                    [--loss-correct[=on|off]] [--reference MS] [--json] [--threads N]
                    [--every-events N] [--every-ms MS] [--until-eof]
                    [--shard-ms MS] [--lateness-ms MS]
                    [--checkpoint PATH] [--resume]
                    [--detect] [--half-life MS] [--status-out PATH]
                    [--profile] [--trace-out PATH] [--metrics-out PATH]
  autosens serve    [--listen ADDR] [--http ADDR] [--checkpoint-dir DIR] [--resume]
                    [--ready-file PATH] [--shard-ms MS] [--lateness-ms MS]
                    [--no-alpha] [--loss-correct[=on|off]] [--reference MS]
                    [--capacity N] [--threads N]
  autosens agent    --to ADDR --in <path> --service S --region R
                    [--format csv|jsonl] [--batch N] [--retries N]
                    [--backoff-ms MS] [--no-commit]
  autosens query    --addr ADDR --path /tenant/<service>/<region>/curve

  global:  [--quiet|-q] [--verbose|-v]

  serve listens for agent pushes on --listen (TCP `host:port`, or a unix
  socket when the address contains `/`) and answers HTTP GETs on --http
  (/healthz, /tenants, /fleet, /metrics, /tenant/<service>/<region>/
  {curve,status,shifts}). --ready-file is written as `INGEST HTTP` once
  both listeners are bound (useful with port 0). agent pushes a log to a
  gateway for one tenant and COMMITs at EOF unless --no-commit. query
  prints the raw HTTP response body from a gateway.

  Binary `.asc` container inputs are auto-detected by file magic on every
  reading command; `--format` describes the *text* format and is ignored
  for container inputs.

  actions: SelectMail | SwitchFolder | Search | ComposeSend | Other
  classes: Business | Consumer
  periods: 8am-2pm | 2pm-8pm | 8pm-2am | 2am-8am
  months:  Jan | Feb | ... | Dec";

/// Input/output file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Comma-separated values with the fixed header.
    Csv,
    /// One serde-JSON record per line.
    Jsonl,
    /// The `.asc` binary columnar container (write-side only; reads
    /// auto-detect containers by magic regardless of this flag).
    Asc,
}

/// Slice filters shared by `analyze` and `alpha`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SliceArgs {
    /// Restrict to one action type.
    pub action: Option<ActionType>,
    /// Restrict to one user class.
    pub class: Option<UserClass>,
    /// Restrict to one local-time day period.
    pub period: Option<DayPeriod>,
    /// Restrict to one calendar month.
    pub month: Option<Month>,
    /// Restrict to one timezone region (offset in whole hours).
    pub tz_hours: Option<i64>,
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate synthetic telemetry.
    Generate {
        /// Which preset scenario.
        scenario: Scenario,
        /// Output path.
        out: String,
        /// Output format.
        format: Format,
        /// Optional seed override.
        seed: Option<u64>,
        /// Worker threads (0 = auto).
        threads: usize,
    },
    /// Analyze a log and print the preference curve.
    Analyze {
        /// Input path.
        input: String,
        /// Input format.
        format: Format,
        /// Slice filters.
        slice: SliceArgs,
        /// Disable the time-confounder correction.
        no_alpha: bool,
        /// Estimate telemetry loss and reweight the curve (`--loss-correct`,
        /// default on; `--loss-correct=off` preserves the uncorrected
        /// output byte for byte).
        loss_correct: bool,
        /// Reference latency in ms.
        reference_ms: f64,
        /// Bootstrap replicates for a 95% confidence band (None = no band).
        ci_replicates: Option<usize>,
        /// Emit JSON instead of a text table.
        json: bool,
        /// Print the per-stage wall-clock profile to stderr.
        profile: bool,
        /// Write the span trace as JSONL to this path.
        trace_out: Option<String>,
        /// Write the metrics snapshot as JSON to this path.
        metrics_out: Option<String>,
        /// Worker threads (0 = auto).
        threads: usize,
    },
    /// Convert a telemetry log to the `.asc` binary columnar container.
    Convert {
        /// Input path (CSV, JSONL, or an existing container).
        input: String,
        /// Output path for the container.
        out: String,
        /// Input format when the input is text.
        format: Format,
        /// Optional shard width for the embedded time-range index.
        shard_ms: Option<i64>,
    },
    /// Run the locality diagnostics.
    Diagnose {
        /// Input path.
        input: String,
        /// Input format.
        format: Format,
    },
    /// Print activity factors per day period.
    Alpha {
        /// Input path.
        input: String,
        /// Input format.
        format: Format,
        /// Slice filters.
        slice: SliceArgs,
    },
    /// Emit the full JSON analysis bundle for a slice.
    Report {
        /// Input path.
        input: String,
        /// Input format.
        format: Format,
        /// Slice filters.
        slice: SliceArgs,
    },
    /// Audit a log's data quality (loss, duplicates, heaping, nulls).
    Audit {
        /// Input path.
        input: String,
        /// Input format.
        format: Format,
        /// Emit the quality report as JSON instead of text.
        json: bool,
        /// Write the audit's metrics snapshot (including the per-cell
        /// `autosens_quality_*` loss evidence) as JSON to this path.
        metrics_out: Option<String>,
    },
    /// Apply a fault-injection plan to a log and write the corrupted copy.
    Inject {
        /// Input path.
        input: String,
        /// Path to the JSON fault plan.
        plan: String,
        /// Output path for the corrupted log.
        out: String,
        /// Input and output format.
        format: Format,
    },
    /// Tail a growing log and emit updated curves via the streaming engine.
    Watch {
        /// Input path (may still be growing).
        input: String,
        /// Input format.
        format: Format,
        /// Slice filters.
        slice: SliceArgs,
        /// Disable the time-confounder correction.
        no_alpha: bool,
        /// Estimate telemetry loss and reweight the curve (default on).
        loss_correct: bool,
        /// Reference latency in ms.
        reference_ms: f64,
        /// Emit JSON instead of a text table.
        json: bool,
        /// Emit a snapshot every N admitted events (None = final only).
        every_events: Option<u64>,
        /// Emit a snapshot at least every M wall-clock ms (None = final only).
        every_ms: Option<u64>,
        /// Stop at end-of-file instead of waiting for growth.
        until_eof: bool,
        /// Shard width in event-time ms.
        shard_ms: i64,
        /// Allowed lateness (watermark budget) in ms.
        lateness_ms: i64,
        /// Checkpoint file to write after each flush (and read with --resume).
        checkpoint: Option<String>,
        /// Resume from the --checkpoint file instead of starting fresh.
        resume: bool,
        /// Run online regime-shift detection at each flush.
        detect: bool,
        /// Maintain a windowed decayed curve with this half-life (event-time
        /// ms) alongside the lifetime curve.
        half_life_ms: Option<i64>,
        /// Rewrite a JSON health document at this path on every flush.
        status_out: Option<String>,
        /// Print the per-stage wall-clock profile to stderr after the run.
        profile: bool,
        /// Write the span trace as JSONL to this path.
        trace_out: Option<String>,
        /// Write the metrics snapshot as JSON to this path.
        metrics_out: Option<String>,
        /// Worker threads (0 = auto).
        threads: usize,
    },
    /// Run the multi-tenant ingest gateway plus its HTTP query plane.
    Serve {
        /// Ingest listen address (`host:port`, or a unix-socket path when
        /// it contains `/`).
        listen: String,
        /// HTTP query-plane listen address.
        http: String,
        /// Directory for versioned fleet checkpoints (enables COMMIT
        /// durability).
        checkpoint_dir: Option<String>,
        /// Restore the fleet from --checkpoint-dir before serving.
        resume: bool,
        /// Write `INGEST HTTP` bound addresses to this file once ready.
        ready_file: Option<String>,
        /// Shard width in event-time ms.
        shard_ms: i64,
        /// Allowed lateness (watermark budget) in ms.
        lateness_ms: i64,
        /// Disable the time-confounder correction.
        no_alpha: bool,
        /// Estimate telemetry loss and reweight curves (default on).
        loss_correct: bool,
        /// Reference latency in ms.
        reference_ms: f64,
        /// Per-tenant intake queue capacity.
        capacity: usize,
        /// Worker threads (0 = auto).
        threads: usize,
    },
    /// Push a telemetry log to a gateway as one tenant's agent.
    AgentPush {
        /// Gateway ingest address.
        to: String,
        /// Input path.
        input: String,
        /// Input format.
        format: Format,
        /// Tenant service label.
        service: String,
        /// Tenant region label.
        region: String,
        /// Records per batch frame.
        batch: usize,
        /// Connect attempts before giving up.
        retries: u32,
        /// Base backoff between connect attempts, ms (doubles per retry).
        backoff_ms: u64,
        /// Ask the gateway to checkpoint durably after the last batch
        /// (default on; `--no-commit` disables).
        commit: bool,
    },
    /// Fetch one query-plane path from a gateway and print the body.
    Query {
        /// Gateway HTTP address.
        addr: String,
        /// Request path (e.g. `/tenant/mail/eu/curve`).
        path: String,
    },
    /// Session-abandonment analysis (non-sticky services).
    Abandonment {
        /// Input path.
        input: String,
        /// Input format.
        format: Format,
        /// Slice filters.
        slice: SliceArgs,
        /// Sessionization gap threshold in ms.
        gap_ms: i64,
    },
}

/// Parse an argument vector (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let sub = it.next().ok_or("missing subcommand")?;
    let rest: Vec<&String> = it.collect();

    let flag = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| a.as_str() == name)
            .and_then(|i| rest.get(i + 1))
            .map(|s| s.as_str())
    };
    let has = |name: &str| rest.iter().any(|a| a.as_str() == name);
    let known_flags: &[&str] = &[
        "--scenario",
        "--out",
        "--format",
        "--seed",
        "--in",
        "--action",
        "--class",
        "--period",
        "--month",
        "--tz",
        "--no-alpha",
        "--reference",
        "--ci",
        "--gap",
        "--json",
        "--plan",
        "--profile",
        "--trace-out",
        "--metrics-out",
        "--threads",
        "--every-events",
        "--every-ms",
        "--until-eof",
        "--shard-ms",
        "--lateness-ms",
        "--checkpoint",
        "--resume",
        "--detect",
        "--half-life",
        "--status-out",
        "--listen",
        "--http",
        "--checkpoint-dir",
        "--ready-file",
        "--capacity",
        "--to",
        "--service",
        "--region",
        "--batch",
        "--retries",
        "--backoff-ms",
        "--no-commit",
        "--addr",
        "--path",
        "--quiet",
        "--verbose",
    ];
    // Boolean flags take no value token.
    let is_boolean = |a: &str| {
        matches!(
            a,
            "--no-alpha"
                | "--json"
                | "--profile"
                | "--until-eof"
                | "--resume"
                | "--detect"
                | "--no-commit"
                | "--quiet"
                | "--verbose"
        )
    };
    // Reject unknown flags early (typos must not be silently ignored).
    let mut skip_next = false;
    for a in &rest {
        if skip_next {
            skip_next = false;
            continue;
        }
        if matches!(a.as_str(), "-q" | "-v") {
            // Short verbosity aliases, valid anywhere.
            continue;
        }
        if a.starts_with("--loss-correct") {
            // Boolean flag with an optional inline value.
            match a.as_str() {
                "--loss-correct" | "--loss-correct=on" | "--loss-correct=off" => continue,
                other => {
                    return Err(format!(
                        "bad value for --loss-correct: {other:?} (use --loss-correct[=on|off])"
                    ))
                }
            }
        }
        if a.starts_with("--") {
            if !known_flags.contains(&a.as_str()) {
                return Err(format!("unknown flag {a}"));
            }
            // Flags with values consume the next token.
            if !is_boolean(a.as_str()) {
                skip_next = true;
            }
        } else {
            return Err(format!("unexpected argument {a:?}"));
        }
    }

    let format = match flag("--format") {
        None => Format::Csv,
        Some("csv") => Format::Csv,
        Some("jsonl") => Format::Jsonl,
        Some("asc") => Format::Asc,
        Some(other) => return Err(format!("unknown format {other:?}")),
    };
    let slice = || -> Result<SliceArgs, String> {
        Ok(SliceArgs {
            action: flag("--action")
                .map(|s| ActionType::parse(s).ok_or(format!("unknown action {s:?}")))
                .transpose()?,
            class: flag("--class")
                .map(|s| UserClass::parse(s).ok_or(format!("unknown class {s:?}")))
                .transpose()?,
            period: flag("--period").map(parse_period).transpose()?,
            month: flag("--month").map(parse_month).transpose()?,
            tz_hours: flag("--tz")
                .map(|s| s.parse::<i64>().map_err(|_| format!("bad tz offset {s:?}")))
                .transpose()?,
        })
    };

    let threads = flag("--threads")
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| format!("bad thread count {s:?}"))
        })
        .transpose()?
        .unwrap_or(0);

    // Loss correction defaults on; the last occurrence wins.
    let loss_correct = rest.iter().fold(true, |v, a| match a.as_str() {
        "--loss-correct" | "--loss-correct=on" => true,
        "--loss-correct=off" => false,
        _ => v,
    });

    match sub.as_str() {
        "generate" => {
            let scenario = match flag("--scenario").unwrap_or("default") {
                "smoke" => Scenario::Smoke,
                "default" => Scenario::Default,
                "paper-scale" => Scenario::PaperScale,
                other => return Err(format!("unknown scenario {other:?}")),
            };
            let out = flag("--out").ok_or("generate requires --out")?.to_string();
            let seed = flag("--seed")
                .map(|s| s.parse::<u64>().map_err(|_| format!("bad seed {s:?}")))
                .transpose()?;
            Ok(Command::Generate {
                scenario,
                out,
                format,
                seed,
                threads,
            })
        }
        "analyze" => Ok(Command::Analyze {
            input: flag("--in").ok_or("analyze requires --in")?.to_string(),
            format,
            slice: slice()?,
            no_alpha: has("--no-alpha"),
            loss_correct,
            reference_ms: flag("--reference")
                .map(|s| s.parse::<f64>().map_err(|_| format!("bad reference {s:?}")))
                .transpose()?
                .unwrap_or(300.0),
            ci_replicates: flag("--ci")
                .map(|s| {
                    s.parse::<usize>()
                        .map_err(|_| format!("bad ci replicates {s:?}"))
                })
                .transpose()?,
            json: has("--json"),
            profile: has("--profile"),
            trace_out: flag("--trace-out").map(str::to_string),
            metrics_out: flag("--metrics-out").map(str::to_string),
            threads,
        }),
        "convert" => {
            let shard_ms = flag("--shard-ms")
                .map(|s| {
                    s.parse::<i64>()
                        .ok()
                        .filter(|v| *v > 0)
                        .ok_or(format!("--shard-ms must be a positive ms count, got {s:?}"))
                })
                .transpose()?;
            Ok(Command::Convert {
                input: flag("--in").ok_or("convert requires --in")?.to_string(),
                out: flag("--out").ok_or("convert requires --out")?.to_string(),
                format,
                shard_ms,
            })
        }
        "diagnose" => Ok(Command::Diagnose {
            input: flag("--in").ok_or("diagnose requires --in")?.to_string(),
            format,
        }),
        "alpha" => Ok(Command::Alpha {
            input: flag("--in").ok_or("alpha requires --in")?.to_string(),
            format,
            slice: slice()?,
        }),
        "report" => Ok(Command::Report {
            input: flag("--in").ok_or("report requires --in")?.to_string(),
            format,
            slice: slice()?,
        }),
        "audit" => Ok(Command::Audit {
            input: flag("--in").ok_or("audit requires --in")?.to_string(),
            format,
            json: has("--json"),
            metrics_out: flag("--metrics-out").map(str::to_string),
        }),
        "inject" => Ok(Command::Inject {
            input: flag("--in").ok_or("inject requires --in")?.to_string(),
            plan: flag("--plan").ok_or("inject requires --plan")?.to_string(),
            out: flag("--out").ok_or("inject requires --out")?.to_string(),
            format,
        }),
        "watch" => {
            let parse_u64 = |name: &str| {
                flag(name)
                    .map(|s| {
                        s.parse::<u64>()
                            .map_err(|_| format!("bad value for {name}: {s:?}"))
                    })
                    .transpose()
            };
            let parse_ms = |name: &str, default: i64| -> Result<i64, String> {
                let v = flag(name)
                    .map(|s| {
                        s.parse::<i64>()
                            .map_err(|_| format!("bad value for {name}: {s:?}"))
                    })
                    .transpose()?
                    .unwrap_or(default);
                if v <= 0 {
                    return Err(format!("{name} must be > 0, got {v}"));
                }
                Ok(v)
            };
            let checkpoint = flag("--checkpoint").map(str::to_string);
            let resume = has("--resume");
            if resume && checkpoint.is_none() {
                return Err("--resume requires --checkpoint".into());
            }
            Ok(Command::Watch {
                input: flag("--in").ok_or("watch requires --in")?.to_string(),
                format,
                slice: slice()?,
                no_alpha: has("--no-alpha"),
                loss_correct,
                reference_ms: flag("--reference")
                    .map(|s| s.parse::<f64>().map_err(|_| format!("bad reference {s:?}")))
                    .transpose()?
                    .unwrap_or(300.0),
                json: has("--json"),
                every_events: parse_u64("--every-events")?,
                every_ms: parse_u64("--every-ms")?,
                until_eof: has("--until-eof"),
                shard_ms: parse_ms("--shard-ms", 6 * 3_600_000)?,
                lateness_ms: parse_ms("--lateness-ms", 3_600_000)?,
                checkpoint,
                resume,
                detect: has("--detect"),
                half_life_ms: flag("--half-life")
                    .map(|s| {
                        s.parse::<i64>().ok().filter(|v| *v > 0).ok_or(format!(
                            "--half-life must be a positive ms count, got {s:?}"
                        ))
                    })
                    .transpose()?,
                status_out: flag("--status-out").map(str::to_string),
                profile: has("--profile"),
                trace_out: flag("--trace-out").map(str::to_string),
                metrics_out: flag("--metrics-out").map(str::to_string),
                threads,
            })
        }
        "serve" => {
            let parse_ms = |name: &str, default: i64| -> Result<i64, String> {
                let v = flag(name)
                    .map(|s| {
                        s.parse::<i64>()
                            .map_err(|_| format!("bad value for {name}: {s:?}"))
                    })
                    .transpose()?
                    .unwrap_or(default);
                if v <= 0 {
                    return Err(format!("{name} must be > 0, got {v}"));
                }
                Ok(v)
            };
            let checkpoint_dir = flag("--checkpoint-dir").map(str::to_string);
            let resume = has("--resume");
            if resume && checkpoint_dir.is_none() {
                return Err("--resume requires --checkpoint-dir".into());
            }
            Ok(Command::Serve {
                listen: flag("--listen").unwrap_or("127.0.0.1:7341").to_string(),
                http: flag("--http").unwrap_or("127.0.0.1:7342").to_string(),
                checkpoint_dir,
                resume,
                ready_file: flag("--ready-file").map(str::to_string),
                shard_ms: parse_ms("--shard-ms", 6 * 3_600_000)?,
                lateness_ms: parse_ms("--lateness-ms", 3_600_000)?,
                no_alpha: has("--no-alpha"),
                loss_correct,
                reference_ms: flag("--reference")
                    .map(|s| s.parse::<f64>().map_err(|_| format!("bad reference {s:?}")))
                    .transpose()?
                    .unwrap_or(300.0),
                capacity: flag("--capacity")
                    .map(|s| {
                        s.parse::<usize>()
                            .ok()
                            .filter(|v| *v > 0)
                            .ok_or(format!("--capacity must be a positive count, got {s:?}"))
                    })
                    .transpose()?
                    .unwrap_or(65_536),
                threads,
            })
        }
        "agent" => Ok(Command::AgentPush {
            to: flag("--to").ok_or("agent requires --to")?.to_string(),
            input: flag("--in").ok_or("agent requires --in")?.to_string(),
            format,
            service: flag("--service")
                .ok_or("agent requires --service")?
                .to_string(),
            region: flag("--region")
                .ok_or("agent requires --region")?
                .to_string(),
            batch: flag("--batch")
                .map(|s| {
                    s.parse::<usize>()
                        .ok()
                        .filter(|v| *v > 0)
                        .ok_or(format!("--batch must be a positive count, got {s:?}"))
                })
                .transpose()?
                .unwrap_or(4096),
            retries: flag("--retries")
                .map(|s| {
                    s.parse::<u32>()
                        .map_err(|_| format!("bad value for --retries: {s:?}"))
                })
                .transpose()?
                .unwrap_or(5),
            backoff_ms: flag("--backoff-ms")
                .map(|s| {
                    s.parse::<u64>()
                        .map_err(|_| format!("bad value for --backoff-ms: {s:?}"))
                })
                .transpose()?
                .unwrap_or(100),
            commit: !has("--no-commit"),
        }),
        "query" => Ok(Command::Query {
            addr: flag("--addr").ok_or("query requires --addr")?.to_string(),
            path: flag("--path").ok_or("query requires --path")?.to_string(),
        }),
        "abandonment" => Ok(Command::Abandonment {
            input: flag("--in").ok_or("abandonment requires --in")?.to_string(),
            format,
            slice: slice()?,
            gap_ms: flag("--gap")
                .map(|s| s.parse::<i64>().map_err(|_| format!("bad gap {s:?}")))
                .transpose()?
                .unwrap_or(10 * 60_000),
        }),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Extract the output verbosity from an argument vector. Independent of
/// subcommand parsing so warnings emitted *during* parsing already honor it;
/// the last flag wins when several are given.
pub fn verbosity(argv: &[String]) -> autosens_obs::Verbosity {
    let mut v = autosens_obs::Verbosity::Normal;
    for a in argv {
        match a.as_str() {
            "--quiet" | "-q" => v = autosens_obs::Verbosity::Quiet,
            "--verbose" | "-v" => v = autosens_obs::Verbosity::Verbose,
            _ => {}
        }
    }
    v
}

fn parse_period(s: &str) -> Result<DayPeriod, String> {
    match s {
        "8am-2pm" => Ok(DayPeriod::Morning8to14),
        "2pm-8pm" => Ok(DayPeriod::Afternoon14to20),
        "8pm-2am" => Ok(DayPeriod::Evening20to2),
        "2am-8am" => Ok(DayPeriod::Night2to8),
        other => Err(format!("unknown period {other:?}")),
    }
}

fn parse_month(s: &str) -> Result<Month, String> {
    let months = [
        ("Jan", Month::Jan),
        ("Feb", Month::Feb),
        ("Mar", Month::Mar),
        ("Apr", Month::Apr),
        ("May", Month::May),
        ("Jun", Month::Jun),
        ("Jul", Month::Jul),
        ("Aug", Month::Aug),
        ("Sep", Month::Sep),
        ("Oct", Month::Oct),
        ("Nov", Month::Nov),
        ("Dec", Month::Dec),
    ];
    months
        .iter()
        .find(|(name, _)| *name == s)
        .map(|(_, m)| *m)
        .ok_or(format!("unknown month {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse(&sv(&["generate", "--scenario", "smoke", "--out", "x.csv"])).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                scenario: Scenario::Smoke,
                out: "x.csv".into(),
                format: Format::Csv,
                seed: None,
                threads: 0,
            }
        );
        let cmd = parse(&sv(&[
            "generate", "--out", "x.jsonl", "--format", "jsonl", "--seed", "7",
        ]))
        .unwrap();
        match cmd {
            Command::Generate {
                scenario,
                format,
                seed,
                ..
            } => {
                assert_eq!(scenario, Scenario::Default);
                assert_eq!(format, Format::Jsonl);
                assert_eq!(seed, Some(7));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_analyze_with_slice() {
        let cmd = parse(&sv(&[
            "analyze",
            "--in",
            "logs.csv",
            "--action",
            "SelectMail",
            "--class",
            "Business",
            "--period",
            "8am-2pm",
            "--month",
            "Feb",
            "--no-alpha",
            "--reference",
            "250",
            "--json",
        ]))
        .unwrap();
        match cmd {
            Command::Analyze {
                input,
                slice,
                no_alpha,
                reference_ms,
                json,
                ..
            } => {
                assert_eq!(input, "logs.csv");
                assert_eq!(slice.action, Some(ActionType::SelectMail));
                assert_eq!(slice.class, Some(UserClass::Business));
                assert_eq!(slice.period, Some(DayPeriod::Morning8to14));
                assert_eq!(slice.month, Some(Month::Feb));
                assert!(no_alpha);
                assert_eq!(reference_ms, 250.0);
                assert!(json);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_convert() {
        let cmd = parse(&sv(&["convert", "--in", "x.csv", "--out", "x.asc"])).unwrap();
        assert_eq!(
            cmd,
            Command::Convert {
                input: "x.csv".into(),
                out: "x.asc".into(),
                format: Format::Csv,
                shard_ms: None,
            }
        );
        match parse(&sv(&[
            "convert",
            "--in",
            "x.jsonl",
            "--out",
            "x.asc",
            "--format",
            "jsonl",
            "--shard-ms",
            "3600000",
        ]))
        .unwrap()
        {
            Command::Convert {
                format, shard_ms, ..
            } => {
                assert_eq!(format, Format::Jsonl);
                assert_eq!(shard_ms, Some(3_600_000));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&sv(&["convert", "--in", "x.csv"])).is_err()); // missing --out
        assert!(parse(&sv(&["convert", "--out", "x.asc"])).is_err()); // missing --in
        assert!(parse(&sv(&[
            "convert",
            "--in",
            "x",
            "--out",
            "y",
            "--shard-ms",
            "0"
        ]))
        .is_err());
        assert!(parse(&sv(&[
            "convert",
            "--in",
            "x",
            "--out",
            "y",
            "--shard-ms",
            "1h"
        ]))
        .is_err());
    }

    #[test]
    fn parses_asc_format() {
        match parse(&sv(&["generate", "--out", "x.asc", "--format", "asc"])).unwrap() {
            Command::Generate { format, .. } => assert_eq!(format, Format::Asc),
            other => panic!("{other:?}"),
        }
        match parse(&sv(&["watch", "--in", "x.asc", "--format", "asc"])).unwrap() {
            Command::Watch { format, .. } => assert_eq!(format, Format::Asc),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_diagnose_and_alpha() {
        assert!(matches!(
            parse(&sv(&["diagnose", "--in", "x.csv"])).unwrap(),
            Command::Diagnose { .. }
        ));
        assert!(matches!(
            parse(&sv(&["alpha", "--in", "x.csv", "--class", "Consumer"])).unwrap(),
            Command::Alpha { .. }
        ));
    }

    #[test]
    fn parses_audit_and_inject() {
        let cmd = parse(&sv(&["audit", "--in", "x.csv", "--json"])).unwrap();
        assert_eq!(
            cmd,
            Command::Audit {
                input: "x.csv".into(),
                format: Format::Csv,
                json: true,
                metrics_out: None,
            }
        );
        match parse(&sv(&["audit", "--in", "x.csv", "--metrics-out", "m.json"])).unwrap() {
            Command::Audit { metrics_out, .. } => {
                assert_eq!(metrics_out.as_deref(), Some("m.json"));
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&sv(&[
            "inject", "--in", "x.jsonl", "--plan", "p.json", "--out", "y.jsonl", "--format",
            "jsonl",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Inject {
                input: "x.jsonl".into(),
                plan: "p.json".into(),
                out: "y.jsonl".into(),
                format: Format::Jsonl,
            }
        );
        assert!(parse(&sv(&["audit"])).is_err()); // missing --in
        assert!(parse(&sv(&["inject", "--in", "x"])).is_err()); // missing --plan
        assert!(parse(&sv(&["inject", "--in", "x", "--plan", "p"])).is_err()); // missing --out
    }

    #[test]
    fn parses_watch() {
        let cmd = parse(&sv(&["watch", "--in", "x.csv", "--until-eof", "--json"])).unwrap();
        match cmd {
            Command::Watch {
                input,
                until_eof,
                json,
                every_events,
                every_ms,
                shard_ms,
                lateness_ms,
                checkpoint,
                resume,
                ..
            } => {
                assert_eq!(input, "x.csv");
                assert!(until_eof);
                assert!(json);
                assert_eq!(every_events, None);
                assert_eq!(every_ms, None);
                assert_eq!(shard_ms, 6 * 3_600_000);
                assert_eq!(lateness_ms, 3_600_000);
                assert_eq!(checkpoint, None);
                assert!(!resume);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&sv(&[
            "watch",
            "--in",
            "x.csv",
            "--every-events",
            "5000",
            "--every-ms",
            "2000",
            "--shard-ms",
            "3600000",
            "--lateness-ms",
            "60000",
            "--checkpoint",
            "ck.json",
            "--resume",
            "--action",
            "Search",
        ]))
        .unwrap();
        match cmd {
            Command::Watch {
                every_events,
                every_ms,
                shard_ms,
                lateness_ms,
                checkpoint,
                resume,
                slice,
                ..
            } => {
                assert_eq!(every_events, Some(5000));
                assert_eq!(every_ms, Some(2000));
                assert_eq!(shard_ms, 3_600_000);
                assert_eq!(lateness_ms, 60_000);
                assert_eq!(checkpoint.as_deref(), Some("ck.json"));
                assert!(resume);
                assert_eq!(slice.action, Some(ActionType::Search));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&sv(&["watch"])).is_err()); // missing --in
        assert!(parse(&sv(&["watch", "--in", "x", "--resume"])).is_err()); // no --checkpoint
        assert!(parse(&sv(&["watch", "--in", "x", "--shard-ms", "0"])).is_err());
        assert!(parse(&sv(&["watch", "--in", "x", "--every-events", "soon"])).is_err());
    }

    #[test]
    fn parses_watch_observability_flags() {
        // Defaults: detection off, no windowed curve, no status document.
        match parse(&sv(&["watch", "--in", "x.csv", "--until-eof"])).unwrap() {
            Command::Watch {
                detect,
                half_life_ms,
                status_out,
                profile,
                ..
            } => {
                assert!(!detect);
                assert_eq!(half_life_ms, None);
                assert_eq!(status_out, None);
                assert!(!profile);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&sv(&[
            "watch",
            "--in",
            "x.csv",
            "--detect",
            "--half-life",
            "172800000",
            "--status-out",
            "status.json",
            "--profile",
            "--trace-out",
            "trace.jsonl",
        ]))
        .unwrap();
        match cmd {
            Command::Watch {
                detect,
                half_life_ms,
                status_out,
                profile,
                trace_out,
                ..
            } => {
                assert!(detect);
                assert_eq!(half_life_ms, Some(172_800_000));
                assert_eq!(status_out.as_deref(), Some("status.json"));
                assert!(profile);
                assert_eq!(trace_out.as_deref(), Some("trace.jsonl"));
            }
            other => panic!("{other:?}"),
        }
        // --detect is boolean: it must not swallow the next token.
        match parse(&sv(&["watch", "--detect", "--in", "x.csv"])).unwrap() {
            Command::Watch { input, detect, .. } => {
                assert_eq!(input, "x.csv");
                assert!(detect);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&sv(&["watch", "--in", "x", "--half-life", "0"])).is_err());
        assert!(parse(&sv(&["watch", "--in", "x", "--half-life", "2d"])).is_err());
    }

    #[test]
    fn parses_serve() {
        match parse(&sv(&["serve"])).unwrap() {
            Command::Serve {
                listen,
                http,
                checkpoint_dir,
                resume,
                ready_file,
                shard_ms,
                lateness_ms,
                loss_correct,
                capacity,
                ..
            } => {
                assert_eq!(listen, "127.0.0.1:7341");
                assert_eq!(http, "127.0.0.1:7342");
                assert_eq!(checkpoint_dir, None);
                assert!(!resume);
                assert_eq!(ready_file, None);
                assert_eq!(shard_ms, 6 * 3_600_000);
                assert_eq!(lateness_ms, 3_600_000);
                assert!(loss_correct);
                assert_eq!(capacity, 65_536);
            }
            other => panic!("{other:?}"),
        }
        match parse(&sv(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--http",
            "127.0.0.1:0",
            "--checkpoint-dir",
            "ckpts",
            "--resume",
            "--ready-file",
            "ready.txt",
            "--capacity",
            "1024",
        ]))
        .unwrap()
        {
            Command::Serve {
                listen,
                checkpoint_dir,
                resume,
                ready_file,
                capacity,
                ..
            } => {
                assert_eq!(listen, "127.0.0.1:0");
                assert_eq!(checkpoint_dir.as_deref(), Some("ckpts"));
                assert!(resume);
                assert_eq!(ready_file.as_deref(), Some("ready.txt"));
                assert_eq!(capacity, 1024);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&sv(&["serve", "--resume"])).is_err()); // no --checkpoint-dir
        assert!(parse(&sv(&["serve", "--capacity", "0"])).is_err());
        assert!(parse(&sv(&["serve", "--shard-ms", "0"])).is_err());
    }

    #[test]
    fn parses_agent_and_query() {
        let cmd = parse(&sv(&[
            "agent",
            "--to",
            "127.0.0.1:7341",
            "--in",
            "x.csv",
            "--service",
            "mail",
            "--region",
            "eu",
        ]))
        .unwrap();
        match cmd {
            Command::AgentPush {
                to,
                input,
                service,
                region,
                batch,
                retries,
                backoff_ms,
                commit,
                ..
            } => {
                assert_eq!(to, "127.0.0.1:7341");
                assert_eq!(input, "x.csv");
                assert_eq!(service, "mail");
                assert_eq!(region, "eu");
                assert_eq!(batch, 4096);
                assert_eq!(retries, 5);
                assert_eq!(backoff_ms, 100);
                assert!(commit);
            }
            other => panic!("{other:?}"),
        }
        match parse(&sv(&[
            "agent",
            "--to",
            "a:1",
            "--in",
            "x",
            "--service",
            "s",
            "--region",
            "r",
            "--batch",
            "128",
            "--no-commit",
        ]))
        .unwrap()
        {
            Command::AgentPush { batch, commit, .. } => {
                assert_eq!(batch, 128);
                assert!(!commit);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&sv(&["agent", "--in", "x"])).is_err()); // missing --to
        assert!(parse(&sv(&["agent", "--to", "a:1", "--in", "x"])).is_err()); // missing tenant
        assert!(parse(&sv(&[
            "agent",
            "--to",
            "a:1",
            "--in",
            "x",
            "--service",
            "s",
            "--region",
            "r",
            "--batch",
            "0",
        ]))
        .is_err());

        let cmd = parse(&sv(&[
            "query",
            "--addr",
            "127.0.0.1:7342",
            "--path",
            "/tenant/mail/eu/curve",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                addr: "127.0.0.1:7342".into(),
                path: "/tenant/mail/eu/curve".into(),
            }
        );
        assert!(parse(&sv(&["query", "--addr", "a:1"])).is_err()); // missing --path
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&sv(&[])).is_err());
        assert!(parse(&sv(&["frobnicate"])).is_err());
        assert!(parse(&sv(&["generate"])).is_err()); // missing --out
        assert!(parse(&sv(&["analyze"])).is_err()); // missing --in
        assert!(parse(&sv(&["analyze", "--in", "x", "--action", "Click"])).is_err());
        assert!(parse(&sv(&["analyze", "--in", "x", "--class", "VIP"])).is_err());
        assert!(parse(&sv(&["analyze", "--in", "x", "--period", "noon"])).is_err());
        assert!(parse(&sv(&["analyze", "--in", "x", "--month", "Smarch"])).is_err());
        assert!(parse(&sv(&["analyze", "--in", "x", "--tz", "east"])).is_err());
        assert!(parse(&sv(&["analyze", "--in", "x", "--format", "xml"])).is_err());
        assert!(parse(&sv(&["analyze", "--in", "x", "--reference", "fast"])).is_err());
        assert!(parse(&sv(&["generate", "--out", "x", "--seed", "NaN"])).is_err());
        assert!(parse(&sv(&["analyze", "--in", "x", "--bogus", "y"])).is_err());
        assert!(parse(&sv(&["analyze", "--in", "x", "stray"])).is_err());
        assert!(parse(&sv(&["generate", "--out", "x", "--scenario", "huge"])).is_err());
        assert!(parse(&sv(&["analyze", "--in", "x", "--threads", "many"])).is_err());
    }

    #[test]
    fn parses_threads() {
        // Default is 0 (auto); explicit values pass through on both commands.
        match parse(&sv(&["analyze", "--in", "x.csv"])).unwrap() {
            Command::Analyze { threads, .. } => assert_eq!(threads, 0),
            other => panic!("{other:?}"),
        }
        match parse(&sv(&["analyze", "--in", "x.csv", "--threads", "4"])).unwrap() {
            Command::Analyze { threads, .. } => assert_eq!(threads, 4),
            other => panic!("{other:?}"),
        }
        match parse(&sv(&["generate", "--out", "x.csv", "--threads", "2"])).unwrap() {
            Command::Generate { threads, .. } => assert_eq!(threads, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_loss_correct() {
        // Default on.
        match parse(&sv(&["analyze", "--in", "x.csv"])).unwrap() {
            Command::Analyze { loss_correct, .. } => assert!(loss_correct),
            other => panic!("{other:?}"),
        }
        // Bare flag and =on are explicit on.
        match parse(&sv(&["analyze", "--in", "x.csv", "--loss-correct"])).unwrap() {
            Command::Analyze { loss_correct, .. } => assert!(loss_correct),
            other => panic!("{other:?}"),
        }
        match parse(&sv(&["analyze", "--in", "x.csv", "--loss-correct=on"])).unwrap() {
            Command::Analyze { loss_correct, .. } => assert!(loss_correct),
            other => panic!("{other:?}"),
        }
        // =off disables the correction.
        match parse(&sv(&["analyze", "--in", "x.csv", "--loss-correct=off"])).unwrap() {
            Command::Analyze { loss_correct, .. } => assert!(!loss_correct),
            other => panic!("{other:?}"),
        }
        // Watch takes the same flag; last occurrence wins.
        match parse(&sv(&[
            "watch",
            "--in",
            "x.csv",
            "--loss-correct=off",
            "--loss-correct=on",
        ]))
        .unwrap()
        {
            Command::Watch { loss_correct, .. } => assert!(loss_correct),
            other => panic!("{other:?}"),
        }
        // The flag is boolean: it must not swallow the next token.
        match parse(&sv(&["analyze", "--loss-correct", "--in", "x.csv"])).unwrap() {
            Command::Analyze { input, .. } => assert_eq!(input, "x.csv"),
            other => panic!("{other:?}"),
        }
        // Any other inline value is rejected.
        assert!(parse(&sv(&["analyze", "--in", "x", "--loss-correct=maybe"])).is_err());
        assert!(parse(&sv(&["analyze", "--in", "x", "--loss-correction"])).is_err());
    }

    #[test]
    fn parses_profiling_flags() {
        let cmd = parse(&sv(&[
            "analyze",
            "--in",
            "x.csv",
            "--profile",
            "--trace-out",
            "trace.jsonl",
            "--metrics-out",
            "metrics.json",
        ]))
        .unwrap();
        match cmd {
            Command::Analyze {
                profile,
                trace_out,
                metrics_out,
                ..
            } => {
                assert!(profile);
                assert_eq!(trace_out.as_deref(), Some("trace.jsonl"));
                assert_eq!(metrics_out.as_deref(), Some("metrics.json"));
            }
            other => panic!("{other:?}"),
        }
        // Verbosity flags are accepted anywhere, long or short.
        assert!(parse(&sv(&["analyze", "--in", "x.csv", "--quiet"])).is_ok());
        assert!(parse(&sv(&["audit", "--in", "x.csv", "-v"])).is_ok());
    }

    #[test]
    fn extracts_verbosity() {
        use autosens_obs::Verbosity;
        assert_eq!(verbosity(&sv(&["analyze", "--in", "x"])), Verbosity::Normal);
        assert_eq!(verbosity(&sv(&["analyze", "-q"])), Verbosity::Quiet);
        assert_eq!(
            verbosity(&sv(&["analyze", "--verbose"])),
            Verbosity::Verbose
        );
        // Last one wins.
        assert_eq!(verbosity(&sv(&["-v", "--quiet"])), Verbosity::Quiet);
    }

    #[test]
    fn month_parser_covers_all() {
        for m in [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ] {
            assert!(parse_month(m).is_ok());
        }
        assert!(parse_month("January").is_err());
    }
}
