//! `autosens` — the end-user command line.
//!
//! ```text
//! autosens generate --scenario default --out logs.csv [--format csv|jsonl]
//! autosens analyze --in logs.csv [--action SelectMail] [--class Business]
//!                  [--period 8am-2pm] [--month Feb] [--no-alpha]
//!                  [--reference 300] [--json]
//! autosens diagnose --in logs.csv
//! autosens alpha --in logs.csv [--action SelectMail] [--class Business]
//! autosens audit --in logs.csv [--format csv|jsonl] [--json]
//! autosens inject --in logs.csv --plan plan.json --out corrupted.csv
//! autosens watch --in logs.csv [--every-events 5000] [--every-ms 2000]
//!                [--until-eof] [--checkpoint ck.json] [--resume] [--json]
//! ```
//!
//! `analyze` prints the normalized latency preference curve for the
//! requested slice of the given telemetry; `diagnose` checks the
//! natural-experiment preconditions (latency locality); `alpha` prints the
//! time-based activity factors per day period; `audit` grades the data
//! quality of a log (loss, duplication, ordering, heaping, metadata
//! nulls); `inject` applies a seeded [`autosens_faults::FaultPlan`] to a
//! log, producing a reproducibly corrupted copy for robustness testing;
//! `watch` tails a growing log through the streaming engine
//! ([`autosens_stream`]) and re-emits the curve as new telemetry arrives,
//! with `--checkpoint`/`--resume` surviving process restarts.

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    autosens_obs::set_verbosity(args::verbosity(&argv));
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
