//! Command implementations for the `autosens` CLI.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use autosens_core::locality::{decorrelation_report, density_latency_correlation, locality_report};
use autosens_core::report::{f3, text_table, PreferenceSummary};
use autosens_core::{AnalysisPlan, AutoSens, AutoSensConfig, PlanInput, RunOptions};
use autosens_faults::FaultPlan;
use autosens_serve::{serve_http, Agent, AgentConfig, Gateway, GatewayConfig, TenantKey};
use autosens_sim::{generate_with_threads, SimConfig};
use autosens_stream::{
    Checkpoint, DetectorConfig, Ingestor, Offer, OverflowPolicy, StatusDocument, StreamConfig,
    StreamEngine,
};
use autosens_telemetry::codec;
use autosens_telemetry::container::{self, MappedLog};
use autosens_telemetry::quality;
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::ActionRecord;
use autosens_telemetry::{ContainerTailReader, LogView, TailFormat, TailReader, TelemetryLog};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::args::{Command, Format, SliceArgs};

/// Execute a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Generate {
            scenario,
            out,
            format,
            seed,
            threads,
        } => {
            let mut cfg = SimConfig::scenario(scenario);
            if let Some(seed) = seed {
                cfg.seed = seed;
            }
            autosens_obs::info!(
                "generating {} days for {} users (seed {})...",
                cfg.days,
                cfg.n_users(),
                cfg.seed
            );
            let (log, _) = generate_with_threads(&cfg, threads)?;
            write_log(&log, &out, format)?;
            autosens_obs::info!("wrote {} records to {out}", log.len());
            Ok(())
        }
        Command::Analyze {
            input,
            format,
            slice,
            no_alpha,
            loss_correct,
            reference_ms,
            ci_replicates,
            json,
            profile,
            trace_out,
            metrics_out,
            threads,
        } => {
            let profiling = profile || trace_out.is_some() || metrics_out.is_some();
            // One recorder for the whole run — the global one, so the codec
            // spans emitted while reading the log land in the same trace as
            // the pipeline stages, and every counter shares one registry.
            let recorder = autosens_obs::Recorder::global().clone();
            if profiling {
                recorder.set_collecting(true);
            }
            // Containers analyze straight off the mapped columns — no parse,
            // no copy; text formats parse into an owned log first. Both
            // shapes expose the same `LogView`, so the reports (and the JSON
            // bytes) are identical across formats.
            let source = open_log(&input, format)?;
            let view = source.view();
            let config = AutoSensConfig {
                alpha_correction: !no_alpha,
                loss_correct,
                reference_latency_ms: reference_ms,
                threads,
                ..AutoSensConfig::default()
            };
            let plan = AnalysisPlan::with_recorder(config, recorder.clone());
            let opts = match ci_replicates {
                Some(replicates) => RunOptions::with_ci(replicates, 0.95),
                None => RunOptions::default(),
            };
            let out = plan
                .run(PlanInput::view(&view, &to_slice(&slice)), opts)
                .map_err(|e| e.to_string())?;
            let (report, ci) = (out.report, out.ci);
            // Surface survived data-quality problems on stderr so they are
            // visible in both output modes without contaminating the JSON.
            for d in &report.degradations {
                autosens_obs::warn!("degraded input: {d}");
            }
            if profiling {
                let tree = recorder.finish();
                if profile {
                    eprint!("{}", tree.render());
                }
                if let Some(path) = &trace_out {
                    std::fs::write(path, tree.to_jsonl())
                        .map_err(|e| format!("write {path}: {e}"))?;
                }
                if let Some(path) = &metrics_out {
                    let snapshot = recorder.metrics().snapshot();
                    snapshot
                        .validate_finite()
                        .map_err(|e| format!("non-finite metric: {e}"))?;
                    std::fs::write(path, snapshot.to_json())
                        .map_err(|e| format!("write {path}: {e}"))?;
                }
            }
            if json {
                let summary = PreferenceSummary::from_report(
                    slice_label(&slice),
                    &report,
                    &autosens_core::report::default_grid(),
                );
                println!(
                    "{}",
                    serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
                );
            } else {
                println!(
                    "slice: {} — {} actions, span {:.0}..{:.0} ms, reference {reference_ms} ms\n",
                    slice_label(&slice),
                    report.n_actions,
                    report.preference.span_ms().0,
                    report.preference.span_ms().1
                );
                match &ci {
                    Some(ci) => {
                        let rows: Vec<Vec<String>> = autosens_core::report::default_grid()
                            .iter()
                            .filter_map(|&l| {
                                let v = report.preference.at(l)?;
                                let (lo, hi) = ci.band_at(l)?;
                                Some(vec![format!("{l:.0}"), f3(v), f3(lo), f3(hi)])
                            })
                            .collect();
                        println!(
                            "{}",
                            text_table(
                                &["latency (ms)", "preference", "ci lo (95%)", "ci hi (95%)"],
                                &rows
                            )
                        );
                    }
                    None => {
                        let rows: Vec<Vec<String>> = autosens_core::report::default_grid()
                            .iter()
                            .filter_map(|&l| {
                                report
                                    .preference
                                    .at(l)
                                    .map(|v| vec![format!("{l:.0}"), f3(v)])
                            })
                            .collect();
                        println!(
                            "{}",
                            text_table(&["latency (ms)", "normalized preference"], &rows)
                        );
                    }
                }
            }
            Ok(())
        }
        Command::Convert {
            input,
            out,
            format,
            shard_ms,
        } => {
            let log = read_log(&input, format)?;
            let bytes = container::write_container_file(&log, &out, shard_ms)
                .map_err(|e| format!("write {out}: {e}"))?;
            autosens_obs::info!(
                "wrote {} records ({bytes} bytes{}) to {out}",
                log.len(),
                match shard_ms {
                    Some(ms) => format!(", {ms} ms shards"),
                    None => String::new(),
                }
            );
            Ok(())
        }
        Command::Diagnose { input, format } => {
            let log = read_log(&input, format)?;
            let mut rng = StdRng::seed_from_u64(0xD1A6);
            let loc = locality_report(&log.view(), &mut rng).map_err(|e| e.to_string())?;
            let corr =
                density_latency_correlation(&log.view(), 60_000).map_err(|e| e.to_string())?;
            println!("samples:               {}", loc.n_samples);
            println!("MSD/MAD actual:        {}", f3(loc.msd_mad_actual));
            println!("MSD/MAD shuffled:      {}", f3(loc.msd_mad_shuffled));
            println!("MSD/MAD sorted:        {:.5}", loc.msd_mad_sorted);
            println!("von Neumann ratio:     {}", f3(loc.von_neumann));
            println!("density/latency corr.: {}", f3(corr.correlation));
            if let Ok(dec) = decorrelation_report(&log.view(), 60_000, 24 * 60) {
                match (dec.decorrelation_ms, dec.effective_excursions) {
                    (Some(ms), Some(ex)) => println!(
                        "latency decorrelation:  ~{} min (~{:.0} independent excursions in span)",
                        ms / 60_000,
                        ex
                    ),
                    _ => println!(
                        "latency decorrelation:  beyond the 24h ACF horizon (strongly correlated)"
                    ),
                }
            }
            println!(
                "locality precondition:  {}",
                if loc.has_locality() {
                    "SATISFIED (latency is predictable; AutoSens applicable)"
                } else {
                    "WEAK (little temporal locality; estimates may be unreliable)"
                }
            );
            Ok(())
        }
        Command::Report {
            input,
            format,
            slice,
        } => {
            let log = read_log(&input, format)?;
            let engine = AutoSens::new(AutoSensConfig::default());
            let report = engine
                .full_report(&log, &to_slice(&slice), slice_label(&slice))
                .map_err(|e| e.to_string())?;
            println!(
                "{}",
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
            );
            Ok(())
        }
        Command::Abandonment {
            input,
            format,
            slice,
            gap_ms,
        } => {
            let log = read_log(&input, format)?;
            let sub = to_slice(&slice).successes().apply(&log);
            let report = autosens_core::abandonment::session_continuation(
                &sub,
                &AutoSensConfig::default(),
                gap_ms,
            )
            .map_err(|e| e.to_string())?;
            let s = &report.stats;
            println!(
                "slice: {} — {} sessions, {} labelable actions, mean length {:.1},\n\
                 overall continuation {:.3} (gap threshold {} s)\n",
                slice_label(&slice),
                s.n_sessions,
                s.n_actions,
                s.mean_session_len,
                s.overall_continuation(),
                s.gap_ms / 1000
            );
            let rows: Vec<Vec<String>> = autosens_core::report::default_grid()
                .iter()
                .filter_map(|&l| {
                    report
                        .continuation
                        .at(l)
                        .map(|v| vec![format!("{l:.0}"), f3(v)])
                })
                .collect();
            println!(
                "{}",
                text_table(&["latency (ms)", "normalized continuation"], &rows)
            );
            Ok(())
        }
        Command::Audit {
            input,
            format,
            json,
            metrics_out,
        } => {
            // Lenient read: an audit must survive the very corruption it is
            // meant to measure. Malformed rows are counted, not fatal.
            // Containers are all-or-nothing by design (checksummed sections
            // admit no row-level salvage), so a container that opens at all
            // audits with zero malformed rows.
            let log = if is_container(&input)? {
                MappedLog::open(&input)
                    .and_then(|m| m.to_log())
                    .map_err(|e| format!("read {input}: {e}"))?
            } else {
                let file = File::open(&input).map_err(|e| format!("open {input}: {e}"))?;
                let reader = BufReader::new(file);
                let (log, errors) = match format {
                    Format::Csv => codec::read_csv_lenient(reader),
                    Format::Jsonl => codec::read_jsonl_lenient(reader),
                    Format::Asc => return Err(format!("{input} is not a container file")),
                }
                .map_err(|e| e.to_string())?;
                if !errors.is_empty() {
                    autosens_obs::warn!(
                        "skipped {} malformed row(s) ({} stored, {} past cap)",
                        errors.total(),
                        errors.len(),
                        errors.overflow()
                    );
                }
                log
            };
            let report = quality::audit(&log);
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
                );
            } else {
                print!("{}", report.render());
            }
            // The audit records its per-cell loss evidence (and every other
            // quality counter) in the global registry; export it on request.
            if let Some(path) = &metrics_out {
                let snapshot = autosens_obs::MetricsRegistry::global().snapshot();
                snapshot
                    .validate_finite()
                    .map_err(|e| format!("non-finite metric: {e}"))?;
                std::fs::write(path, snapshot.to_json())
                    .map_err(|e| format!("write {path}: {e}"))?;
            }
            Ok(())
        }
        Command::Inject {
            input,
            plan,
            out,
            format,
        } => {
            let log = read_log(&input, format)?;
            let plan_text =
                std::fs::read_to_string(&plan).map_err(|e| format!("read {plan}: {e}"))?;
            let plan = FaultPlan::from_json(&plan_text)?;
            let corrupted = plan.apply(&log).map_err(|e| e.to_string())?;
            write_log(&corrupted, &out, format)?;
            autosens_obs::info!(
                "injected {} fault op(s) (seed {}): {} -> {} records, wrote {out}",
                plan.ops.len(),
                plan.seed,
                log.len(),
                corrupted.len()
            );
            for op in &plan.ops {
                autosens_obs::debug!("fault op: {}", op.describe());
            }
            Ok(())
        }
        Command::Watch {
            input,
            format,
            slice,
            no_alpha,
            loss_correct,
            reference_ms,
            json,
            every_events,
            every_ms,
            until_eof,
            shard_ms,
            lateness_ms,
            checkpoint,
            resume,
            detect,
            half_life_ms,
            status_out,
            profile,
            trace_out,
            metrics_out,
            threads,
        } => run_watch(WatchArgs {
            input,
            format,
            slice,
            no_alpha,
            loss_correct,
            reference_ms,
            json,
            every_events,
            every_ms,
            until_eof,
            shard_ms,
            lateness_ms,
            checkpoint,
            resume,
            detect,
            half_life_ms,
            status_out,
            profile,
            trace_out,
            metrics_out,
            threads,
        }),
        Command::Serve {
            listen,
            http,
            checkpoint_dir,
            resume,
            ready_file,
            shard_ms,
            lateness_ms,
            no_alpha,
            loss_correct,
            reference_ms,
            capacity,
            threads,
        } => run_serve(ServeArgs {
            listen,
            http,
            checkpoint_dir,
            resume,
            ready_file,
            shard_ms,
            lateness_ms,
            no_alpha,
            loss_correct,
            reference_ms,
            capacity,
            threads,
        }),
        Command::AgentPush {
            to,
            input,
            format,
            service,
            region,
            batch,
            retries,
            backoff_ms,
            commit,
        } => {
            let source = open_log(&input, format)?;
            let view = source.view();
            let tenant = TenantKey::new(&service, &region).map_err(|e| e.to_string())?;
            let mut cfg = AgentConfig::new(&to, tenant);
            cfg.batch_size = batch;
            cfg.retries = retries;
            cfg.backoff_ms = backoff_ms;
            let mut agent = Agent::connect(cfg).map_err(|e| e.to_string())?;
            let n = view.len();
            for i in 0..n {
                agent.push(view.get(i)).map_err(|e| e.to_string())?;
            }
            if commit {
                agent.commit().map_err(|e| e.to_string())?;
            } else {
                agent.flush().map_err(|e| e.to_string())?;
            }
            autosens_obs::info!(
                "pushed {n} records to {to} as {service}/{region} ({} acknowledged{})",
                agent.acked(),
                if commit { ", committed" } else { "" }
            );
            Ok(())
        }
        Command::Query { addr, path } => {
            let (status, body) =
                autosens_serve::http_get(&addr, &path).map_err(|e| e.to_string())?;
            print!("{}", String::from_utf8_lossy(&body));
            if status != 200 {
                return Err(format!("{addr}{path}: HTTP {status}"));
            }
            Ok(())
        }
        Command::Alpha {
            input,
            format,
            slice,
        } => {
            let log = read_log(&input, format)?;
            let engine = AutoSens::new(AutoSensConfig::default());
            let est = engine
                .alpha_by_period(&log, &to_slice(&slice))
                .map_err(|e| e.to_string())?;
            let rows: Vec<Vec<String>> = est
                .groups
                .iter()
                .map(|g| {
                    vec![
                        g.label.clone(),
                        g.n_actions.to_string(),
                        g.alpha.map(f3).unwrap_or_else(|| "-".into()),
                    ]
                })
                .collect();
            println!("activity factor per day period (8am-2pm = 1.0)\n");
            println!("{}", text_table(&["period", "actions", "alpha"], &rows));
            Ok(())
        }
    }
}

/// The `watch` parameters, bundled so the run function stays callable.
struct WatchArgs {
    input: String,
    format: Format,
    slice: SliceArgs,
    no_alpha: bool,
    loss_correct: bool,
    reference_ms: f64,
    json: bool,
    every_events: Option<u64>,
    every_ms: Option<u64>,
    until_eof: bool,
    shard_ms: i64,
    lateness_ms: i64,
    checkpoint: Option<String>,
    resume: bool,
    detect: bool,
    half_life_ms: Option<i64>,
    status_out: Option<String>,
    profile: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    threads: usize,
}

/// The tailed source: text files advance by byte offset, binary containers
/// by row count (a container grows by atomic whole-file replacement, so
/// byte positions of old rows are not stable — row indices are).
enum SourceReader {
    /// Line-oriented CSV/JSONL tailing.
    Text(TailReader),
    /// Row-oriented `.asc` container tailing.
    Binary(ContainerTailReader),
}

impl SourceReader {
    /// Current position: bytes consumed (text) or rows consumed (binary).
    fn offset(&self) -> u64 {
        match self {
            SourceReader::Text(r) => r.offset(),
            SourceReader::Binary(r) => r.offset(),
        }
    }

    /// Read whatever the source has grown by. Returns the new records and
    /// the count of malformed rows skipped (always 0 for containers, which
    /// validate all-or-nothing).
    fn poll(&mut self) -> Result<(Vec<ActionRecord>, usize), String> {
        match self {
            SourceReader::Text(r) => {
                let (records, errors) = r.poll().map_err(|e| e.to_string())?;
                Ok((records, errors.total()))
            }
            SourceReader::Binary(r) => {
                let records = r.poll().map_err(|e| e.to_string())?;
                Ok((records, 0))
            }
        }
    }
}

/// Tail a telemetry file through the streaming engine, emitting updated
/// curves on the requested cadence. With `--until-eof` and no cadence the
/// single final snapshot is byte-identical to batch `analyze` over the
/// same file (the CI equivalence gate depends on this).
fn run_watch(args: WatchArgs) -> Result<(), String> {
    let profiling = args.profile || args.trace_out.is_some() || args.metrics_out.is_some();
    let recorder = autosens_obs::Recorder::global().clone();
    if profiling {
        recorder.set_collecting(true);
    }
    // A container source is detected by magic (or forced with --format asc
    // before the file exists); everything else tails as text lines.
    let binary =
        args.format == Format::Asc || container::is_container_file(&args.input).unwrap_or(false);
    let tail_format = match args.format {
        Format::Jsonl => TailFormat::Jsonl,
        _ => TailFormat::Csv,
    };
    let filter = to_slice(&args.slice);
    let label = slice_label(&args.slice);

    // Fresh start or checkpoint resume: the checkpoint carries the full
    // streaming configuration and the tailed file's offset (bytes for text
    // sources, rows for containers), so a resumed watch continues exactly
    // where the checkpointed one stopped.
    let (mut engine, mut reader) = match (&args.checkpoint, args.resume) {
        (Some(path), true) => {
            let ck = Checkpoint::load(std::path::Path::new(path))
                .map_err(|e| format!("resume from {path}: {e}"))?;
            // Refuse to seek past the end of a truncated/replaced source:
            // the checkpointed offset would land on unrelated bytes (text)
            // or rows that no longer exist (binary).
            if binary {
                let rows = container::peek_row_count(&args.input)
                    .map_err(|e| format!("resume from {path}: {e}"))?;
                ck.check_source_length(rows)
                    .map_err(|e| format!("resume from {path}: {e}"))?;
            } else {
                ck.check_source_file(std::path::Path::new(&args.input))
                    .map_err(|e| format!("resume from {path}: {e}"))?;
            }
            let offset = ck.source_offset;
            autosens_obs::info!(
                "resuming from {path}: {} live records, offset {offset}",
                ck.shards.iter().map(|s| s.records.len()).sum::<usize>()
            );
            let engine = StreamEngine::restore(ck, filter, recorder.clone())
                .map_err(|e| format!("resume from {path}: {e}"))?;
            let reader = if binary {
                SourceReader::Binary(ContainerTailReader::resume(&args.input, offset))
            } else {
                SourceReader::Text(TailReader::resume(&args.input, tail_format, offset))
            };
            (engine, reader)
        }
        _ => {
            let config = StreamConfig {
                analysis: AutoSensConfig {
                    alpha_correction: !args.no_alpha,
                    loss_correct: args.loss_correct,
                    reference_latency_ms: args.reference_ms,
                    threads: args.threads,
                    ..AutoSensConfig::default()
                },
                shard_ms: args.shard_ms,
                allowed_lateness_ms: args.lateness_ms,
                retain_ms: None,
                detector: args.detect.then(DetectorConfig::default),
                decay_half_life_ms: args.half_life_ms,
            };
            let engine = StreamEngine::with_recorder(config, filter, recorder.clone())
                .map_err(|e| e.to_string())?;
            let reader = if binary {
                SourceReader::Binary(ContainerTailReader::new(&args.input))
            } else {
                SourceReader::Text(TailReader::new(&args.input, tail_format))
            };
            (engine, reader)
        }
    };

    let ingestor = Ingestor::new(65_536, OverflowPolicy::Block, recorder.clone());
    let mut admitted_since_emit: u64 = 0;
    let mut last_emit = std::time::Instant::now();
    let mut emitted_any = false;

    let save_checkpoint = |engine: &StreamEngine, reader: &SourceReader| -> Result<(), String> {
        if let Some(path) = &args.checkpoint {
            engine
                .checkpoint(reader.offset())
                .save(std::path::Path::new(path))
                .map_err(|e| format!("checkpoint {path}: {e}"))?;
            autosens_obs::debug!("checkpointed to {path} at offset {}", reader.offset());
        }
        Ok(())
    };

    loop {
        let (records, skipped) = reader.poll()?;
        if skipped > 0 {
            autosens_obs::warn!("skipped {skipped} malformed row(s) while tailing");
        }
        let got_new = !records.is_empty();
        for r in records {
            // The bounded queue applies backpressure: drain before retrying.
            if ingestor.offer(r) == Offer::Full {
                let summary = ingestor
                    .drain_into(&mut engine)
                    .map_err(|e| e.to_string())?;
                admitted_since_emit += summary.admitted as u64;
                if ingestor.offer(r) != Offer::Accepted {
                    return Err("ingest queue rejected a record after draining".into());
                }
            }
        }
        let summary = ingestor
            .drain_into(&mut engine)
            .map_err(|e| e.to_string())?;
        admitted_since_emit += summary.admitted as u64;

        // Cadence-driven intermediate snapshots.
        let due_events = args.every_events.is_some_and(|n| admitted_since_emit >= n);
        let due_time = args
            .every_ms
            .is_some_and(|ms| last_emit.elapsed().as_millis() as u64 >= ms)
            && admitted_since_emit > 0;
        if due_events || due_time {
            if args.detect {
                for s in engine.run_detection().map_err(|e| e.to_string())? {
                    autosens_obs::warn!(
                        "regime shift: {} {} {} at {} (z = {:.1}{})",
                        s.stream,
                        s.signal,
                        s.direction,
                        s.bucket_start_ms,
                        s.magnitude_z,
                        if s.shared { ", shared" } else { "" }
                    );
                }
            }
            let report = emit_snapshot(&engine, &label, args.json, args.reference_ms, false)?;
            if let (Some(path), Some(report)) = (&args.status_out, report.as_ref()) {
                StatusDocument::collect(&engine, report, ingestor.queue_depth() as u64)
                    .save(std::path::Path::new(path))
                    .map_err(|e| format!("status {path}: {e}"))?;
            }
            emitted_any = true;
            admitted_since_emit = 0;
            last_emit = std::time::Instant::now();
            save_checkpoint(&engine, &reader)?;
        }

        if !got_new {
            if args.until_eof {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(200));
        }
    }

    // Final snapshot: always emitted at EOF unless a cadence snapshot
    // already covered the complete stream.
    if admitted_since_emit > 0 || !emitted_any {
        if args.detect {
            engine.run_detection().map_err(|e| e.to_string())?;
        }
        let report = emit_snapshot(&engine, &label, args.json, args.reference_ms, true)?;
        if let (Some(path), Some(report)) = (&args.status_out, report.as_ref()) {
            StatusDocument::collect(&engine, report, ingestor.queue_depth() as u64)
                .save(std::path::Path::new(path))
                .map_err(|e| format!("status {path}: {e}"))?;
        }
    }
    save_checkpoint(&engine, &reader)?;

    if profiling {
        let tree = recorder.finish();
        if args.profile {
            eprint!("{}", tree.render());
        }
        if let Some(path) = &args.trace_out {
            std::fs::write(path, tree.to_jsonl()).map_err(|e| format!("write {path}: {e}"))?;
        }
        if let Some(path) = &args.metrics_out {
            let snapshot = recorder.metrics().snapshot();
            snapshot
                .validate_finite()
                .map_err(|e| format!("non-finite metric: {e}"))?;
            std::fs::write(path, snapshot.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        }
    }
    Ok(())
}

/// The `serve` parameters, bundled so the run function stays callable.
struct ServeArgs {
    listen: String,
    http: String,
    checkpoint_dir: Option<String>,
    resume: bool,
    ready_file: Option<String>,
    shard_ms: i64,
    lateness_ms: i64,
    no_alpha: bool,
    loss_correct: bool,
    reference_ms: f64,
    capacity: usize,
    threads: usize,
}

/// Run the multi-tenant ingest gateway plus its HTTP query plane until
/// the process is killed. The ingest side listens on TCP, or on a unix
/// socket when `--listen` contains a `/`. With `--ready-file` the bound
/// addresses are written out once both listeners are up, so scripts can
/// bind port 0 and discover where the gateway landed.
fn run_serve(args: ServeArgs) -> Result<(), String> {
    let recorder = autosens_obs::Recorder::global().clone();
    let config = GatewayConfig {
        stream: StreamConfig {
            analysis: AutoSensConfig {
                alpha_correction: !args.no_alpha,
                loss_correct: args.loss_correct,
                reference_latency_ms: args.reference_ms,
                threads: args.threads,
                ..AutoSensConfig::default()
            },
            shard_ms: args.shard_ms,
            allowed_lateness_ms: args.lateness_ms,
            retain_ms: None,
            detector: Some(DetectorConfig::default()),
            decay_half_life_ms: None,
        },
        ingest_capacity: args.capacity,
        checkpoint_dir: args.checkpoint_dir.map(std::path::PathBuf::from),
        resume: args.resume,
        threads: args.threads,
    };
    let gateway = Gateway::new(config, recorder).map_err(|e| e.to_string())?;
    if !gateway.registry().is_empty() {
        autosens_obs::info!(
            "restored {} tenant(s) at generation {}",
            gateway.registry().len(),
            gateway.registry().generation()
        );
    }

    let http_listener = std::net::TcpListener::bind(&args.http)
        .map_err(|e| format!("bind http {}: {e}", args.http))?;
    let http_addr = http_listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();

    // The unix-socket path doubles as its "address"; a TCP listen gets
    // its real bound address (which differs from the flag for port 0).
    let unix = args.listen.contains('/');
    let (tcp_listener, ingest_addr) = if unix {
        (None, args.listen.clone())
    } else {
        let l = std::net::TcpListener::bind(&args.listen)
            .map_err(|e| format!("bind ingest {}: {e}", args.listen))?;
        let addr = l.local_addr().map_err(|e| e.to_string())?.to_string();
        (Some(l), addr)
    };

    #[cfg(unix)]
    let unix_listener = if unix {
        let _ = std::fs::remove_file(&args.listen);
        Some(
            std::os::unix::net::UnixListener::bind(&args.listen)
                .map_err(|e| format!("bind ingest {}: {e}", args.listen))?,
        )
    } else {
        None
    };
    #[cfg(not(unix))]
    if unix {
        return Err(format!("unix sockets unsupported here: {}", args.listen));
    }

    if let Some(path) = &args.ready_file {
        std::fs::write(path, format!("INGEST {ingest_addr}\nHTTP {http_addr}\n"))
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    autosens_obs::info!("gateway ready: ingest {ingest_addr}, http {http_addr}");

    let http_gateway = gateway.clone();
    std::thread::spawn(move || {
        let _ = serve_http(&http_gateway, http_listener);
    });

    match tcp_listener {
        Some(l) => gateway.serve_tcp(l).map_err(|e| e.to_string()),
        None => {
            #[cfg(unix)]
            {
                gateway
                    .serve_unix(unix_listener.expect("unix listener bound above"))
                    .map_err(|e| e.to_string())
            }
            #[cfg(not(unix))]
            unreachable!("rejected above")
        }
    }
}

/// Print one streaming snapshot in the same shape `analyze` uses, so the
/// final `--until-eof` emission diffs clean against the batch output.
/// Returns the report so the caller can derive the status document from
/// the same snapshot instead of recomputing it.
fn emit_snapshot(
    engine: &StreamEngine,
    label: &str,
    json: bool,
    reference_ms: f64,
    final_emit: bool,
) -> Result<Option<autosens_core::pipeline::AnalysisReport>, String> {
    let report = match engine.snapshot() {
        Ok(report) => report,
        // An empty window is not fatal mid-stream (records may simply not
        // have arrived yet); only the final snapshot insists on data.
        Err(e) if !final_emit => {
            autosens_obs::debug!("skipping snapshot: {e}");
            return Ok(None);
        }
        Err(e) => return Err(e.to_string()),
    };
    for d in &report.degradations {
        autosens_obs::warn!("degraded input: {d}");
    }
    let status = engine.status();
    if !final_emit {
        autosens_obs::info!(
            "snapshot after {} events ({} live records, {} shards, {} late, {} dup)",
            status.events,
            status.live_records,
            status.shards,
            status.late,
            status.duplicates
        );
    }
    if json {
        let summary = PreferenceSummary::from_report(
            label.to_string(),
            &report,
            &autosens_core::report::default_grid(),
        );
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "slice: {} — {} actions, span {:.0}..{:.0} ms, reference {reference_ms} ms\n",
            label,
            report.n_actions,
            report.preference.span_ms().0,
            report.preference.span_ms().1
        );
        let rows: Vec<Vec<String>> = autosens_core::report::default_grid()
            .iter()
            .filter_map(|&l| {
                report
                    .preference
                    .at(l)
                    .map(|v| vec![format!("{l:.0}"), f3(v)])
            })
            .collect();
        println!(
            "{}",
            text_table(&["latency (ms)", "normalized preference"], &rows)
        );
    }
    Ok(Some(report))
}

/// An opened telemetry input: either a memory-mapped binary container or a
/// parsed-and-owned text log. Both expose the same zero-copy [`LogView`].
enum LogSource {
    /// A validated `.asc` container, columns borrowed from the mapping.
    Mapped(MappedLog),
    /// A log parsed from CSV or JSONL.
    Owned(TelemetryLog),
}

impl LogSource {
    /// Borrow the full columns, whatever the backing.
    fn view(&self) -> LogView<'_> {
        match self {
            LogSource::Mapped(m) => m.view(),
            LogSource::Owned(l) => l.view(),
        }
    }

    /// Materialize an owned log (copies the columns out of a mapping).
    fn into_log(self) -> Result<TelemetryLog, String> {
        match self {
            LogSource::Mapped(m) => m.to_log().map_err(|e| e.to_string()),
            LogSource::Owned(l) => Ok(l),
        }
    }
}

fn is_container(path: &str) -> Result<bool, String> {
    container::is_container_file(path).map_err(|e| format!("open {path}: {e}"))
}

/// Open a telemetry input, auto-detecting binary containers by file magic.
/// `format` only governs how *text* inputs are parsed; a container is
/// recognized (and a non-container rejected under `--format asc`) before
/// any text parsing happens.
fn open_log(path: &str, format: Format) -> Result<LogSource, String> {
    if is_container(path)? {
        return MappedLog::open(path)
            .map(LogSource::Mapped)
            .map_err(|e| format!("read {path}: {e}"));
    }
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let reader = BufReader::new(file);
    match format {
        Format::Csv => codec::read_csv(reader),
        Format::Jsonl => codec::read_jsonl(reader),
        Format::Asc => return Err(format!("{path} is not a container file")),
    }
    .map(LogSource::Owned)
    .map_err(|e| e.to_string())
}

fn read_log(path: &str, format: Format) -> Result<TelemetryLog, String> {
    open_log(path, format)?.into_log()
}

/// Write a log in the requested output format (text codecs or container).
fn write_log(log: &TelemetryLog, out: &str, format: Format) -> Result<(), String> {
    match format {
        Format::Asc => {
            container::write_container_file(log, out, None)
                .map_err(|e| format!("write {out}: {e}"))?;
        }
        Format::Csv | Format::Jsonl => {
            let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
            let mut w = BufWriter::new(file);
            match format {
                Format::Csv => codec::write_csv(log, &mut w),
                Format::Jsonl => codec::write_jsonl(log, &mut w),
                Format::Asc => unreachable!(),
            }
            .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn to_slice(args: &SliceArgs) -> Slice {
    let mut slice = Slice::all();
    if let Some(a) = args.action {
        slice = slice.action(a);
    }
    if let Some(c) = args.class {
        slice = slice.class(c);
    }
    if let Some(p) = args.period {
        slice = slice.period(p);
    }
    if let Some(m) = args.month {
        slice = slice.month(m);
    }
    if let Some(tz) = args.tz_hours {
        slice = slice.tz_offset_hours(tz);
    }
    slice
}

fn slice_label(args: &SliceArgs) -> String {
    let mut parts = Vec::new();
    if let Some(a) = args.action {
        parts.push(a.name().to_string());
    }
    if let Some(c) = args.class {
        parts.push(c.name().to_string());
    }
    if let Some(p) = args.period {
        parts.push(p.label().to_string());
    }
    if let Some(m) = args.month {
        parts.push(m.label().to_string());
    }
    if let Some(tz) = args.tz_hours {
        parts.push(format!("UTC{tz:+}"));
    }
    if parts.is_empty() {
        "all".to_string()
    } else {
        parts.join(" / ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_telemetry::record::{ActionType, UserClass};
    use autosens_telemetry::time::{DayPeriod, Month};

    #[test]
    fn slice_labels() {
        assert_eq!(slice_label(&SliceArgs::default()), "all");
        let s = SliceArgs {
            action: Some(ActionType::Search),
            class: Some(UserClass::Consumer),
            period: Some(DayPeriod::Night2to8),
            month: Some(Month::Jan),
            tz_hours: Some(-5),
        };
        assert_eq!(slice_label(&s), "Search / Consumer / 2am-8am / Jan / UTC-5");
    }

    #[test]
    fn to_slice_respects_filters() {
        use autosens_telemetry::record::{ActionRecord, Outcome, UserId};
        use autosens_telemetry::time::SimTime;
        let s = to_slice(&SliceArgs {
            action: Some(ActionType::Search),
            ..Default::default()
        });
        let r = ActionRecord {
            time: SimTime(0),
            action: ActionType::Search,
            latency_ms: 100.0,
            user: UserId(1),
            class: UserClass::Business,
            tz_offset_ms: 0,
            outcome: Outcome::Success,
        };
        assert!(s.matches(&r));
        let mut other = r;
        other.action = ActionType::SelectMail;
        assert!(!s.matches(&other));
    }

    #[test]
    fn read_log_reports_missing_file() {
        let err = read_log("/nonexistent/definitely-missing.csv", Format::Csv).unwrap_err();
        assert!(err.contains("open"));
    }
}
