//! Tests of the artifact registry and the cheap (dataset-free) artifacts;
//! the full-scale shape checks run via the `autosens-experiments all`
//! binary and the workspace integration tests.

use autosens_experiments::artifacts;
use autosens_experiments::dataset::{Dataset, Scale};

#[test]
fn registry_ids_are_unique_and_resolvable_on_demand() {
    let ids = artifacts::ids();
    assert_eq!(ids.len(), 11);
    let unique: std::collections::HashSet<_> = ids.iter().collect();
    assert_eq!(unique.len(), ids.len());
    // Paper order: figures first interleaved with table1, bottleneck last.
    assert_eq!(ids[0], "fig1");
    assert_eq!(ids[3], "table1");
    assert_eq!(*ids.last().unwrap(), "bottleneck");
}

#[test]
fn table1_is_dataset_free_and_exact() {
    let artifact = artifacts::table1::generate();
    assert_eq!(artifact.id, "table1");
    assert!(artifact.all_pass(), "{}", artifact.render_checks());
    assert!(artifact.rendered.contains("250"));
    assert!(artifact.rendered.contains("38"));
    assert_eq!(artifact.csv.len(), 1);
    assert!(artifact.csv[0].1.contains("Night,Low,26,80,250"));
}

#[test]
fn unknown_ids_resolve_to_none() {
    // `by_id` needs a dataset for most artifacts, but an unknown id must
    // be rejected before any analysis happens — use the cheap path by
    // checking table1 (dataset ignored) and the unknown id on a tiny
    // dataset.
    let data = tiny_dataset();
    assert!(artifacts::by_id(&data, "fig999").is_none());
    assert!(artifacts::by_id(&data, "").is_none());
    assert!(artifacts::by_id(&data, "table1").is_some());
}

#[test]
fn fig1_and_fig2_render_on_a_small_dataset() {
    let data = tiny_dataset();
    let fig1 = artifacts::by_id(&data, "fig1").expect("known id");
    assert!(fig1.rendered.contains("MSD/MAD"));
    assert!(!fig1.csv.is_empty());
    // Locality holds even at tiny scale (it is a property of the
    // congestion process, not of volume).
    assert!(
        fig1.checks.iter().any(|c| c.pass),
        "{}",
        fig1.render_checks()
    );
    let fig2 = artifacts::by_id(&data, "fig2").expect("known id");
    assert!(fig2.rendered.contains("activity"));
}

/// A deliberately small dataset for registry tests (not the shared Bench
/// scale — these tests only need mechanics, not statistics).
fn tiny_dataset() -> Dataset {
    use autosens_core::AutoSensConfig;
    use autosens_sim::{Scenario, SimConfig};
    let mut cfg = SimConfig::scenario(Scenario::Smoke);
    cfg.days = 3;
    cfg.n_business = 80;
    cfg.n_consumer = 80;
    Dataset::from_config(&cfg, AutoSensConfig::default()).expect("valid")
}

#[test]
fn dataset_scales_resolve() {
    // `Scale::Bench` is exercised across the bench suite; here just check
    // the enum round-trips through `load` without panicking at tiny scale
    // via from_config (Full scale is covered by the experiments binary).
    let _ = Scale::Bench;
    let d = tiny_dataset();
    assert!(d.log.len() > 100);
}
