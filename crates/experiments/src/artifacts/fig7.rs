//! Figure 7: preference by time of day (four 6-hour periods) for business
//! SelectMail. The paper finds every period shows a decreasing preference,
//! daytime periods drop more sharply than nighttime ones, and the pooled
//! curve lies inside the per-period envelope.

use autosens_core::report::{f3, series_csv, text_table};
use autosens_core::{PlanInput, RunOptions};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};
use autosens_telemetry::time::DayPeriod;

use super::{Artifact, ShapeCheck};
use crate::dataset::Dataset;

/// Regenerate Figure 7.
pub fn generate(data: &Dataset) -> Artifact {
    let base = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);
    let results = data.engine.by_day_period(&data.log, &base);
    let pooled = data
        .engine
        .plan()
        .run(PlanInput::slice(&data.log, &base), RunOptions::default())
        .ok()
        .map(|out| out.report);

    let grid = [600.0, 900.0, 1200.0];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut prefs = std::collections::HashMap::new();
    for (period, result) in &results {
        match result {
            Ok(report) => {
                let mut row = vec![period.label().to_string(), report.n_actions.to_string()];
                for l in grid {
                    row.push(
                        report
                            .preference
                            .at(l)
                            .map(f3)
                            .unwrap_or_else(|| "-".into()),
                    );
                }
                rows.push(row);
                csv.push((
                    format!("fig7_{}", period.label().replace('-', "_")),
                    series_csv(("latency_ms", "preference"), &report.preference.series()),
                ));
                prefs.insert(*period, report.preference.clone());
            }
            Err(e) => rows.push(vec![
                period.label().to_string(),
                "-".into(),
                format!("error: {e}"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    if let Some(p) = &pooled {
        let mut row = vec!["pooled (all hours)".to_string(), p.n_actions.to_string()];
        for l in grid {
            row.push(p.preference.at(l).map(f3).unwrap_or_else(|| "-".into()));
        }
        rows.push(row);
        csv.push((
            "fig7_pooled".to_string(),
            series_csv(("latency_ms", "preference"), &p.preference.series()),
        ));
    }

    let mut rendered = String::from(
        "Figure 7 — preference by time of day (business SelectMail)\n\
         (reference 300 ms; local-time periods)\n\n",
    );
    rendered.push_str(&text_table(
        &["period", "n", "@600ms", "@900ms", "@1200ms"],
        &rows,
    ));

    let probe = 900.0;
    let at = |p: DayPeriod| prefs.get(&p).and_then(|c| c.at(probe));
    let morning = at(DayPeriod::Morning8to14);
    let afternoon = at(DayPeriod::Afternoon14to20);
    let evening = at(DayPeriod::Evening20to2);
    let night = at(DayPeriod::Night2to8);
    let day_min = [morning, afternoon]
        .into_iter()
        .flatten()
        .fold(f64::INFINITY, f64::min);
    let night_vals: Vec<f64> = [evening, night].into_iter().flatten().collect();

    let mut checks = Vec::new();
    // Every period decreasing, probed within each curve's own supported
    // span (sparse periods — e.g. business evenings — end earlier).
    for (period, pref) in &prefs {
        let (_, span_hi) = pref.span_ms();
        let hi_probe = (span_hi - 55.0).min(1100.0);
        let dec = pref
            .at(600.0)
            .zip(pref.at(hi_probe))
            .map(|(a, b)| b < a && hi_probe > 800.0)
            .unwrap_or(false);
        checks.push(ShapeCheck::new(
            format!(
                "{} curve decreases (600 -> {hi_probe:.0} ms)",
                period.label()
            ),
            dec,
            format!("{:?} -> {:?}", pref.at(600.0), pref.at(hi_probe)),
        ));
    }
    checks.push(ShapeCheck::new(
        "daytime periods steeper than nighttime @900ms",
        !night_vals.is_empty() && day_min.is_finite() && night_vals.iter().all(|&n| day_min < n),
        format!("daytime min {day_min:.3} vs night {night_vals:?}"),
    ));
    if let Some(pooled) = &pooled {
        let v = pooled.preference.at(probe);
        let lo = prefs
            .values()
            .filter_map(|p| p.at(probe))
            .fold(f64::INFINITY, f64::min);
        let hi = prefs
            .values()
            .filter_map(|p| p.at(probe))
            .fold(f64::NEG_INFINITY, f64::max);
        checks.push(ShapeCheck::new(
            "pooled curve lies within the per-period envelope @900ms",
            v.map(|v| v >= lo - 0.02 && v <= hi + 0.02).unwrap_or(false),
            format!("pooled {v:?} in [{lo:.3}, {hi:.3}]"),
        ));
    }

    Artifact {
        id: "fig7",
        title: "Preference by time of day",
        rendered,
        csv,
        checks,
    }
}
