//! Figure 9: month-over-month stability — the preference curves for
//! SelectMail and SwitchFolder in January vs. February should coincide
//! closely, showing the sensitivity is a stable property over this window.

use autosens_core::report::{f3, series_csv, text_table};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};
use autosens_telemetry::time::Month;

use super::{Artifact, ShapeCheck};
use crate::dataset::Dataset;

/// Regenerate Figure 9.
pub fn generate(data: &Dataset) -> Artifact {
    let grid = [600.0, 1000.0, 1400.0];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut checks = Vec::new();

    for action in [ActionType::SelectMail, ActionType::SwitchFolder] {
        let base = Slice::all().action(action).class(UserClass::Business);
        let results = data
            .engine
            .by_month(&data.log, &base, &[Month::Jan, Month::Feb]);
        let mut month_prefs = Vec::new();
        for (month, result) in &results {
            match result {
                Ok(report) => {
                    let mut row = vec![
                        format!("{action:?}"),
                        month.label().to_string(),
                        report.n_actions.to_string(),
                    ];
                    for l in grid {
                        row.push(
                            report
                                .preference
                                .at(l)
                                .map(f3)
                                .unwrap_or_else(|| "-".into()),
                        );
                    }
                    rows.push(row);
                    csv.push((
                        format!(
                            "fig9_{}_{}",
                            action.name().to_lowercase(),
                            month.label().to_lowercase()
                        ),
                        series_csv(("latency_ms", "preference"), &report.preference.series()),
                    ));
                    month_prefs.push((month, report.preference.clone()));
                }
                Err(e) => rows.push(vec![
                    format!("{action:?}"),
                    month.label().to_string(),
                    "-".into(),
                    format!("error: {e}"),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
        // Stability check: mean absolute gap between the two months over
        // the shared probe range.
        if month_prefs.len() == 2 {
            let probes: Vec<f64> = (4..=12).map(|i| i as f64 * 100.0).collect();
            let cmp = autosens_core::compare::compare_curves(
                &month_prefs[0].1,
                &month_prefs[1].1,
                &probes,
            );
            let (pass, detail) = match cmp {
                Some(cmp) => (
                    cmp.points.len() >= 7 && cmp.mae < 0.08,
                    format!(
                        "MAE {:.4}, max gap {:.4} @ {:.0} ms over {} probes",
                        cmp.mae,
                        cmp.max_gap.1,
                        cmp.max_gap.0,
                        cmp.points.len()
                    ),
                ),
                None => (false, "no shared probes".into()),
            };
            checks.push(ShapeCheck::new(
                format!("{action:?} Jan and Feb curves agree (MAE < 0.08)"),
                pass,
                detail,
            ));
        } else {
            checks.push(ShapeCheck::new(
                format!("{action:?} has curves for both months"),
                false,
                "a month failed to fit",
            ));
        }
    }

    let mut rendered = String::from(
        "Figure 9 — month-over-month stability (business users)\n\
         (reference 300 ms)\n\n",
    );
    rendered.push_str(&text_table(
        &["action", "month", "n", "@600ms", "@1000ms", "@1400ms"],
        &rows,
    ));

    Artifact {
        id: "fig9",
        title: "Consistency across months",
        rendered,
        csv,
        checks,
    }
}
