//! Extension artifact (paper §4's future direction): session abandonment
//! on a non-sticky service. Generates session-structured telemetry with a
//! planted continuation curve and regenerates the continuation-vs-latency
//! figure per user class, checked against the planted truth.

use autosens_core::abandonment::session_continuation;
use autosens_core::report::{f3, series_csv, text_table};
use autosens_core::AutoSensConfig;
use autosens_sim::config::{Scenario, SimConfig};
use autosens_sim::sessions::{generate_sessions, SessionConfig};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::UserClass;

use super::{Artifact, ShapeCheck};

/// Regenerate the abandonment extension figure (generates its own
/// session-structured dataset; ignores the shared rate-based dataset).
pub fn generate_abandonment() -> Artifact {
    let mut cfg = SimConfig::scenario(Scenario::Smoke);
    cfg.days = 21;
    let scfg = SessionConfig::default();
    let (log, _) = generate_sessions(&cfg, &scfg).expect("valid configs");
    let analysis = AutoSensConfig::default();
    let gap_ms = 10 * 60_000;

    let grid = [500.0, 800.0, 1100.0];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut checks = Vec::new();
    for class in UserClass::all() {
        let sub = Slice::all().class(class).successes().apply(&log);
        let report = match session_continuation(&sub, &analysis, gap_ms) {
            Ok(r) => r,
            Err(e) => {
                rows.push(vec![
                    class.name().into(),
                    format!("error: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                checks.push(ShapeCheck::new(
                    format!("{} continuation fits", class.name()),
                    false,
                    e.to_string(),
                ));
                continue;
            }
        };
        let mut row = vec![
            class.name().to_string(),
            report.stats.n_sessions.to_string(),
        ];
        for l in grid {
            row.push(
                report
                    .continuation
                    .at(l)
                    .map(f3)
                    .unwrap_or_else(|| "-".into()),
            );
        }
        rows.push(row);
        csv.push((
            format!("abandonment_{}", class.name().to_lowercase()),
            series_csv(
                ("latency_ms", "continuation"),
                &report.continuation.series(),
            ),
        ));

        // Check: measured tracks the planted continuation curve.
        let planted = scfg.continuation(class);
        let mut err = 0.0;
        let mut n = 0;
        for l in (400..=1200).step_by(100) {
            if let Some(m) = report.continuation.at(l as f64) {
                err += (m - planted.eval(l as f64) / planted.eval(300.0)).abs();
                n += 1;
            }
        }
        let mae = if n > 0 { err / n as f64 } else { f64::NAN };
        checks.push(ShapeCheck::new(
            format!(
                "{} continuation tracks planted truth (MAE < 0.08)",
                class.name()
            ),
            n >= 7 && mae < 0.08,
            format!("MAE {mae:.4} over {n} probes"),
        ));
    }

    let mut rendered = String::from(
        "Extension — session continuation vs latency (non-sticky services)\n\
         (normalized at 300 ms; sessionization gap 10 min)\n\n",
    );
    rendered.push_str(&text_table(
        &["class", "sessions", "@500ms", "@800ms", "@1100ms"],
        &rows,
    ));

    Artifact {
        id: "abandonment-ext",
        title: "Session abandonment extension",
        rendered,
        csv,
        checks,
    }
}
