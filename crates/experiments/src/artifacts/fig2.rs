//! Figure 2: normalized latency and user-activity rate over a 2-day window
//! (1-minute aggregation), showing that fast periods attract activity.

use autosens_core::locality::{activity_latency_series, density_latency_correlation};
use autosens_core::report::text_table;
use autosens_telemetry::time::MS_PER_DAY;

use super::{Artifact, ShapeCheck};
use crate::dataset::Dataset;

/// Regenerate Figure 2 over days 4–5 (a Tuesday and Wednesday: the epoch,
/// Jan 1, is a Friday), falling back to the log's first two days when the
/// span is shorter.
pub fn generate(data: &Dataset) -> Artifact {
    let span_end = data.log.end_time().map(|t| t.millis()).unwrap_or(0);
    let (from, to) = if span_end >= 6 * MS_PER_DAY {
        (4 * MS_PER_DAY, 6 * MS_PER_DAY)
    } else {
        (0, span_end.clamp(MS_PER_DAY, 2 * MS_PER_DAY))
    };
    let points =
        activity_latency_series(&data.log.view(), from, to, 60_000).expect("log covers the window");

    // Hour-level view for the text rendering (the CSV has the full minutes).
    let mut rows = Vec::new();
    for h in 0..48 {
        let lo = h * 60;
        let hi = ((h + 1) * 60).min(points.len());
        if lo >= points.len() {
            break;
        }
        let chunk = &points[lo..hi];
        let act: f64 = chunk.iter().map(|p| p.activity).sum::<f64>() / chunk.len() as f64;
        let lats: Vec<f64> = chunk.iter().filter_map(|p| p.latency).collect();
        let lat = if lats.is_empty() {
            f64::NAN
        } else {
            lats.iter().sum::<f64>() / lats.len() as f64
        };
        rows.push(vec![
            format!("day {} {:02}:00", 4 + h / 24, h % 24),
            format!("{act:.2}"),
            if lat.is_nan() {
                "-".into()
            } else {
                format!("{lat:.2}")
            },
        ]);
    }
    let mut rendered = String::from(
        "Figure 2 — normalized activity rate and latency over two days\n\
         (hourly means of the 1-minute series; y-axes normalized to max = 1)\n\n",
    );
    rendered.push_str(&text_table(&["hour", "activity", "latency"], &rows));

    let mut csv_body = String::from("start_ms,activity,latency\n");
    for p in &points {
        csv_body.push_str(&format!(
            "{},{},{}\n",
            p.start_ms,
            p.activity,
            p.latency.map(|l| l.to_string()).unwrap_or_default()
        ));
    }
    let csv = vec![("fig2_activity_latency".to_string(), csv_body)];

    // The paper's claim: periods of low latency have much higher activity.
    // Across full days the diurnal confounder couples them positively
    // (daytime is both busy and slow); the *within-hour-band* relationship
    // is what carries the preference. Check both: (a) daytime vs night
    // contrast exists, (b) the within-band correlation (controlling the
    // clock by differencing against the hour-of-day means) is negative.
    let corr = density_latency_correlation(&data.log.view(), 60_000).expect("non-trivial log");

    // Within-band: subtract hour-of-day means from both series.
    let mut by_hour: Vec<(f64, f64, u32)> = vec![(0.0, 0.0, 0); 24];
    for (i, p) in points.iter().enumerate() {
        if let Some(l) = p.latency {
            let h = (i / 60) % 24;
            by_hour[h].0 += p.activity;
            by_hour[h].1 += l;
            by_hour[h].2 += 1;
        }
    }
    let mut devs_a = Vec::new();
    let mut devs_l = Vec::new();
    for (i, p) in points.iter().enumerate() {
        if let Some(l) = p.latency {
            let h = (i / 60) % 24;
            let (sa, sl, n) = by_hour[h];
            if n > 1 {
                devs_a.push(p.activity - sa / n as f64);
                devs_l.push(l - sl / n as f64);
            }
        }
    }
    let within = autosens_stats::correlation::pearson(&devs_a, &devs_l).unwrap_or(0.0);
    rendered.push_str(&format!(
        "\npooled density-vs-latency correlation: {:.3}\n\
         within-hour-band (clock-controlled) correlation: {:.3}\n",
        corr.correlation, within
    ));

    let checks = vec![
        ShapeCheck::new(
            "activity varies strongly across the day",
            {
                let max = points.iter().map(|p| p.activity).fold(0.0, f64::max);
                let min = points
                    .iter()
                    .map(|p| p.activity)
                    .fold(f64::INFINITY, f64::min);
                max - min > 0.5
            },
            "diurnal swing present",
        ),
        ShapeCheck::new(
            "clock-controlled activity/latency correlation is negative",
            within < 0.0,
            format!("r = {within:.3}"),
        ),
    ];

    Artifact {
        id: "fig2",
        title: "Activity rate vs latency over two days",
        rendered,
        csv,
        checks,
    }
}
