//! Beyond the paper: curve error under injected telemetry loss.
//!
//! The paper's pipeline sees production telemetry, which is lossy in a
//! latency-correlated way (slow responses are the ones whose beacons get
//! dropped). This artifact measures how the recovered preference curve
//! degrades as bursty, latency-correlated record loss is injected at
//! rates from 0 to 50%: the analysis is run on a clean simulated log,
//! then re-run on seeded `FaultPlan`-corrupted copies, and the mean
//! absolute deviation from the clean curve is reported per loss rate.

use autosens_core::report::text_table;
use autosens_core::{AutoSens, AutoSensConfig};
use autosens_faults::{FaultOp, FaultPlan};
use autosens_sim::config::{Scenario, SimConfig};
use autosens_sim::generate;
use autosens_telemetry::log::TelemetryLog;
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};

use super::{Artifact, ShapeCheck};

/// Deterministic seed for the injection plans (one stream per rate).
const PLAN_SEED: u64 = 0xFA017;

/// Loss rates swept, as fractions of records targeted for dropping.
const LOSS_RATES: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

/// Mean burst length (records) for the bursty MNAR drop model.
const MEAN_BURST: u32 = 25;

fn analysis_config() -> AutoSensConfig {
    AutoSensConfig {
        unbiased_draws: 48_000,
        min_supported_bins: 15,
        ..AutoSensConfig::default()
    }
}

fn curve(log: &TelemetryLog) -> Option<(Vec<(f64, f64)>, usize)> {
    let slice = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);
    let report = AutoSens::new(analysis_config())
        .analyze_slice(log, &slice)
        .ok()?;
    let pts: Vec<(f64, f64)> = (400..=1200)
        .step_by(100)
        .filter_map(|l| report.preference.at(l as f64).map(|v| (l as f64, v)))
        .collect();
    Some((pts, report.degradations.len()))
}

fn mae(clean: &[(f64, f64)], corrupted: &[(f64, f64)]) -> Option<f64> {
    let mut err = 0.0;
    let mut n = 0;
    for (x, v) in clean {
        if let Some((_, w)) = corrupted.iter().find(|(cx, _)| cx == x) {
            err += (v - w).abs();
            n += 1;
        }
    }
    // Require most probes to survive, else the comparison is meaningless.
    (n >= 6).then(|| err / n as f64)
}

/// Run the robustness sweep (regenerates a smoke-scale dataset).
pub fn generate_robustness() -> Artifact {
    let cfg = SimConfig::scenario(Scenario::Smoke);
    let log = match generate(&cfg) {
        Ok((log, _)) => log,
        Err(e) => {
            return Artifact {
                id: "robustness",
                title: "Curve error vs injected loss (beyond the paper)",
                rendered: format!("dataset generation failed: {e}\n"),
                csv: vec![],
                checks: vec![ShapeCheck::new("dataset generated", false, e)],
            }
        }
    };

    let clean = curve(&log);
    let mut rows = Vec::new();
    let mut points: Vec<(f64, usize, Option<f64>, usize)> = Vec::new();
    for (i, &rate) in LOSS_RATES.iter().enumerate() {
        let corrupted = if rate == 0.0 {
            log.clone()
        } else {
            let plan = FaultPlan {
                // One independent stream per rate so each point stands on
                // its own rather than sharing a drop pattern.
                seed: PLAN_SEED.wrapping_add(i as u64),
                ops: vec![FaultOp::DropBursty {
                    rate,
                    mean_burst: MEAN_BURST,
                }],
            };
            match plan.apply(&log) {
                Ok(l) => l,
                Err(_) => log.clone(),
            }
        };
        let result = curve(&corrupted);
        let m = match (&clean, &result) {
            (Some((c, _)), Some((r, _))) => mae(c, r),
            _ => None,
        };
        let degr = result.as_ref().map(|(_, d)| *d).unwrap_or(0);
        points.push((rate, corrupted.len(), m, degr));
        rows.push(vec![
            format!("{:.0}%", rate * 100.0),
            corrupted.len().to_string(),
            m.map(|m| format!("{m:.4}")).unwrap_or_else(|| "-".into()),
            degr.to_string(),
        ]);
    }

    let mut rendered = String::from(
        "Robustness — preference-curve error vs injected bursty loss\n\
         (business SelectMail, corrupted vs clean curve, probes 400-1200 ms)\n\n",
    );
    rendered.push_str(&text_table(
        &[
            "injected loss",
            "records",
            "curve MAE vs clean",
            "degradations",
        ],
        &rows,
    ));

    let csv = vec![("robustness_loss".to_string(), {
        let mut s = String::from("loss_rate,n_records,curve_mae,degradations\n");
        for (rate, n, m, d) in &points {
            s.push_str(&format!(
                "{rate},{n},{},{d}\n",
                m.map(|m| m.to_string()).unwrap_or_default()
            ));
        }
        s
    })];

    let all_completed = points.iter().all(|(_, _, m, _)| m.is_some());
    let zero_is_zero = points
        .first()
        .and_then(|(_, _, m, _)| *m)
        .map(|m| m == 0.0)
        .unwrap_or(false);
    let bounded_at_half = points
        .last()
        .and_then(|(_, _, m, _)| *m)
        .map(|m| m < 0.5)
        .unwrap_or(false);
    let checks = vec![
        ShapeCheck::new(
            "analysis completes at every loss rate",
            all_completed,
            format!(
                "maes: {:?}",
                points.iter().map(|(_, _, m, _)| *m).collect::<Vec<_>>()
            ),
        ),
        ShapeCheck::new(
            "zero injected loss reproduces the clean curve exactly",
            zero_is_zero,
            format!("mae(0%) = {:?}", points.first().and_then(|(_, _, m, _)| *m)),
        ),
        ShapeCheck::new(
            "curve error stays bounded (< 0.5) at 50% loss",
            bounded_at_half,
            format!("mae(50%) = {:?}", points.last().and_then(|(_, _, m, _)| *m)),
        ),
    ];

    Artifact {
        id: "robustness",
        title: "Curve error vs injected loss (beyond the paper)",
        rendered,
        csv,
        checks,
    }
}
