//! Beyond the paper: the bias-vs-loss-rate frontier.
//!
//! The paper's pipeline sees production telemetry, which is lossy in a
//! latency-correlated way (slow responses are the ones whose beacons get
//! dropped). This artifact measures how far the recovered preference
//! curve drifts from the clean-log truth as record loss is injected at
//! rates from 0 to 50% — and how much of that drift the loss-aware
//! correction removes. Two seeded drop mechanisms are swept:
//!
//! * **uniform** ([`FaultOp::DropUniform`]) — each record dropped
//!   independently (MCAR). This does not bias the biased/unbiased ratio,
//!   so the naive curve should already be close and the correction must
//!   do no harm.
//! * **bursty** ([`FaultOp::DropBursty`]) — whole runs of consecutive
//!   records dropped, onset latency-correlated (MNAR). This thins slow
//!   periods preferentially and biases the naive curve; the corrected
//!   curve must land strictly closer to the clean curve at heavy
//!   (≥ 20%) loss — the CI frontier gate.
//!
//! Each corrupted log is analyzed once with loss correction on; the
//! report carries the corrected curve and the naive (uncorrected) curve
//! side by side, so both errors come from the same run.

use autosens_core::report::text_table;
use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_faults::{FaultOp, FaultPlan};
use autosens_sim::config::{Scenario, SimConfig};
use autosens_sim::generate;
use autosens_telemetry::log::TelemetryLog;
use autosens_telemetry::query::Slice;

use super::{Artifact, ShapeCheck};

/// Deterministic seed for the injection plans (one stream per point).
const PLAN_SEED: u64 = 0xFA017;

/// Loss rates swept, as fractions of records targeted for dropping.
const LOSS_RATES: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

/// Mean burst length (records) for the bursty MNAR drop model.
const MEAN_BURST: u32 = 40;

/// Probe grid for curve comparison (ms).
const PROBE_LO: i64 = 400;
const PROBE_HI: i64 = 1200;
const PROBE_STEP: usize = 100;

fn analysis_config() -> AutoSensConfig {
    AutoSensConfig {
        unbiased_draws: 48_000,
        min_supported_bins: 15,
        ..AutoSensConfig::default()
    }
}

/// One analysis: corrected curve, naive curve, and the model's overall
/// loss estimate (0 when the correction was a no-op, in which case the
/// two curves are the same curve).
struct Curves {
    corrected: Vec<(f64, f64)>,
    naive: Vec<(f64, f64)>,
    estimated: f64,
}

fn curves(log: &TelemetryLog) -> Option<Curves> {
    let report = AnalysisPlan::new(analysis_config())
        .run(PlanInput::slice(log, &Slice::all()), RunOptions::default())
        .ok()?
        .report;
    let sample = |pref: &autosens_core::NormalizedPreference| -> Vec<(f64, f64)> {
        (PROBE_LO..=PROBE_HI)
            .step_by(PROBE_STEP)
            .filter_map(|l| pref.at(l as f64).map(|v| (l as f64, v)))
            .collect()
    };
    let corrected = sample(&report.preference);
    let (naive, estimated) = match &report.loss {
        Some(loss) => (
            loss.naive_preference.as_ref().map(sample)?,
            loss.overall_rate,
        ),
        None => (corrected.clone(), 0.0),
    };
    Some(Curves {
        corrected,
        naive,
        estimated,
    })
}

/// Mean and max absolute deviation from the clean curve over the probes
/// both curves support. Requires most probes to survive, else the
/// comparison is meaningless.
fn deviation(clean: &[(f64, f64)], other: &[(f64, f64)]) -> Option<(f64, f64)> {
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut n = 0;
    for (x, v) in clean {
        if let Some((_, w)) = other.iter().find(|(cx, _)| cx == x) {
            let d = (v - w).abs();
            sum += d;
            max = max.max(d);
            n += 1;
        }
    }
    (n >= 6).then(|| (sum / n as f64, max))
}

/// One swept point of the frontier.
struct Point {
    mechanism: &'static str,
    rate: f64,
    n_records: usize,
    estimated: f64,
    /// `(mae, max deviation)` of the naive curve vs clean.
    naive: Option<(f64, f64)>,
    /// `(mae, max deviation)` of the corrected curve vs clean.
    corrected: Option<(f64, f64)>,
}

/// Run the frontier sweep (regenerates a smoke-scale dataset).
pub fn generate_robustness() -> Artifact {
    let cfg = SimConfig::scenario(Scenario::Smoke);
    let log = match generate(&cfg) {
        Ok((log, _)) => log,
        Err(e) => {
            return Artifact {
                id: "robustness",
                title: "Bias-vs-loss-rate frontier: corrected vs naive (beyond the paper)",
                rendered: format!("dataset generation failed: {e}\n"),
                csv: vec![],
                checks: vec![ShapeCheck::new("dataset generated", false, e)],
            }
        }
    };

    let clean = curves(&log);
    let clean_truth: Option<&Vec<(f64, f64)>> = clean.as_ref().map(|c| &c.corrected);
    let clean_noop = clean.as_ref().map(|c| c.estimated == 0.0).unwrap_or(false);

    let mut points: Vec<Point> = Vec::new();
    for (m, mechanism) in ["uniform", "bursty"].iter().enumerate() {
        for (i, &rate) in LOSS_RATES.iter().enumerate() {
            let corrupted = if rate == 0.0 {
                log.clone()
            } else {
                let op = if *mechanism == "uniform" {
                    FaultOp::DropUniform { rate }
                } else {
                    FaultOp::DropBursty {
                        rate,
                        mean_burst: MEAN_BURST,
                    }
                };
                let plan = FaultPlan {
                    // One independent stream per point so each stands on
                    // its own rather than sharing a drop pattern.
                    seed: PLAN_SEED.wrapping_add((m * LOSS_RATES.len() + i) as u64),
                    ops: vec![op],
                };
                match plan.apply(&log) {
                    Ok(l) => l,
                    Err(_) => log.clone(),
                }
            };
            let result = curves(&corrupted);
            let (naive, corrected, estimated) = match (&clean_truth, &result) {
                (Some(truth), Some(c)) => (
                    deviation(truth, &c.naive),
                    deviation(truth, &c.corrected),
                    c.estimated,
                ),
                _ => (None, None, 0.0),
            };
            points.push(Point {
                mechanism,
                rate,
                n_records: corrupted.len(),
                estimated,
                naive,
                corrected,
            });
        }
    }

    let fmt_dev = |d: Option<(f64, f64)>| -> (String, String) {
        match d {
            Some((mae, max)) => (format!("{mae:.4}"), format!("{max:.4}")),
            None => ("-".into(), "-".into()),
        }
    };
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let (nm, nx) = fmt_dev(p.naive);
            let (cm, cx) = fmt_dev(p.corrected);
            vec![
                p.mechanism.to_string(),
                format!("{:.0}%", p.rate * 100.0),
                p.n_records.to_string(),
                format!("{:.3}", p.estimated),
                nm,
                cm,
                nx,
                cx,
            ]
        })
        .collect();

    let mut rendered = String::from(
        "Robustness frontier — curve error vs injected loss, naive and corrected\n\
         (all records, deviation vs clean-log curve, probes 400-1200 ms)\n\n",
    );
    rendered.push_str(&text_table(
        &[
            "mechanism",
            "injected",
            "records",
            "est. loss",
            "naive MAE",
            "corr. MAE",
            "naive max",
            "corr. max",
        ],
        &rows,
    ));

    let csv = vec![("robustness_frontier".to_string(), {
        let mut s = String::from(
            "mechanism,loss_rate,n_records,estimated_loss,\
             naive_mae,corrected_mae,naive_maxdev,corrected_maxdev\n",
        );
        for p in &points {
            let cell = |d: Option<(f64, f64)>, pick_max: bool| {
                d.map(|(mae, max)| if pick_max { max } else { mae }.to_string())
                    .unwrap_or_default()
            };
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                p.mechanism,
                p.rate,
                p.n_records,
                p.estimated,
                cell(p.naive, false),
                cell(p.corrected, false),
                cell(p.naive, true),
                cell(p.corrected, true),
            ));
        }
        s
    })];

    let all_completed = points
        .iter()
        .all(|p| p.naive.is_some() && p.corrected.is_some());
    let zero_is_noop = clean_noop
        && points
            .iter()
            .filter(|p| p.rate == 0.0)
            .all(|p| p.naive == Some((0.0, 0.0)) && p.corrected == Some((0.0, 0.0)));
    let heavy_bursty: Vec<&Point> = points
        .iter()
        .filter(|p| p.mechanism == "bursty" && p.rate >= 0.2)
        .collect();
    let bursty_corrected_wins = !heavy_bursty.is_empty()
        && heavy_bursty.iter().all(|p| match (p.corrected, p.naive) {
            (Some((_, cx)), Some((_, nx))) => cx < nx,
            _ => false,
        });
    let bursty_estimator_engages = heavy_bursty.iter().all(|p| p.estimated > 0.05);
    let uniform_no_harm =
        points
            .iter()
            .filter(|p| p.mechanism == "uniform")
            .all(|p| match (p.corrected, p.naive) {
                (Some((_, cx)), Some((_, nx))) => cx <= nx + 0.02,
                _ => false,
            });
    let detail_maxdev = |ps: &[&Point]| -> String {
        ps.iter()
            .map(|p| {
                format!(
                    "{:.0}%: naive {:?} corr {:?}",
                    p.rate * 100.0,
                    p.naive.map(|d| (d.1 * 1e4).round() / 1e4),
                    p.corrected.map(|d| (d.1 * 1e4).round() / 1e4),
                )
            })
            .collect::<Vec<_>>()
            .join("; ")
    };
    let checks = vec![
        ShapeCheck::new(
            "analysis completes at every mechanism and loss rate",
            all_completed,
            format!(
                "incomplete: {:?}",
                points
                    .iter()
                    .filter(|p| p.naive.is_none() || p.corrected.is_none())
                    .map(|p| (p.mechanism, p.rate))
                    .collect::<Vec<_>>()
            ),
        ),
        ShapeCheck::new(
            "zero injected loss is a correction no-op (both curves match clean exactly)",
            zero_is_noop,
            format!(
                "clean estimated loss {:?}",
                clean.as_ref().map(|c| c.estimated)
            ),
        ),
        ShapeCheck::new(
            "bursty (MNAR) >= 20%: corrected curve strictly closer than naive",
            bursty_corrected_wins,
            detail_maxdev(&heavy_bursty),
        ),
        ShapeCheck::new(
            "bursty (MNAR) >= 20%: loss estimator engages (> 5% estimated)",
            bursty_estimator_engages,
            format!(
                "estimated: {:?}",
                heavy_bursty
                    .iter()
                    .map(|p| (p.rate, (p.estimated * 1e3).round() / 1e3))
                    .collect::<Vec<_>>()
            ),
        ),
        ShapeCheck::new(
            "uniform (MCAR): correction does no harm (corr. max <= naive max + 0.02)",
            uniform_no_harm,
            detail_maxdev(
                &points
                    .iter()
                    .filter(|p| p.mechanism == "uniform")
                    .collect::<Vec<_>>(),
            ),
        ),
    ];

    Artifact {
        id: "robustness",
        title: "Bias-vs-loss-rate frontier: corrected vs naive (beyond the paper)",
        rendered,
        csv,
        checks,
    }
}
