//! Beyond the paper: detection latency of the online regime-shift
//! detector against planted ground truth.
//!
//! The simulator can plant congestion regimes with *known* boundaries
//! ([`autosens_sim::RegimeWindow`]): between two instants the global
//! latency multiplier shifts by a fixed log factor, on top of the usual
//! diurnal cycle and AR(1) drift. This artifact runs the streaming
//! engine's detector over two such datasets:
//!
//! * **clean** — identical config, no planted windows. The detector must
//!   stay silent: zero alarms across every stream and signal. This is the
//!   false-positive gate.
//! * **planted** — two regime windows (each a sharp up-shift followed by
//!   a recovery), four labeled boundaries total. Every boundary must be
//!   reported by the pooled level detector, in the right direction,
//!   within the documented lateness bound of [`BOUND_BUCKETS`] detector
//!   buckets (2 h at the default 15-minute bucket) — see DESIGN.md §6g.
//!
//! `results/regime_detection.csv` carries one row per planted boundary
//! with its detection latency; ci.sh runs this artifact at bench scale
//! and fails the build when a check regresses.

use autosens_core::report::text_table;
use autosens_sim::config::{Scenario, SimConfig};
use autosens_sim::{generate, RegimeWindow};
use autosens_stream::{DetectorConfig, RegimeShift, StreamConfig, StreamEngine};
use autosens_telemetry::query::Slice;

use super::{Artifact, ShapeCheck};

const DAY_MS: i64 = 86_400_000;

/// The documented detection-latency bound, in detector buckets. With the
/// default 15-minute bucket this is 2 hours of event time.
pub const BOUND_BUCKETS: i64 = 8;

/// Planted log-space shift: e^1.1 ≈ 3× latency while the regime holds —
/// the scale of a serious production incident, well clear of the AR(1)
/// congestion drift (stationary σ = 0.5).
const SHIFT_LOG: f64 = 1.1;

/// The planted schedule: two regimes, all four boundaries aligned to the
/// detector's bucket lattice and placed in *busy* hours (sparse night
/// buckets fail `min_bucket_n` and would stall detection), with ≥ 2 clean
/// warm-up days before the first boundary (the seasonal reference needs
/// `min_ref_days` days of history).
fn planted_windows() -> Vec<RegimeWindow> {
    let hour = DAY_MS / 24;
    vec![
        RegimeWindow {
            start_ms: 5 * DAY_MS + 10 * hour,
            end_ms: 6 * DAY_MS + 16 * hour,
            log_multiplier: SHIFT_LOG,
        },
        RegimeWindow {
            start_ms: 9 * DAY_MS + 9 * hour,
            end_ms: 9 * DAY_MS + 19 * hour,
            log_multiplier: SHIFT_LOG,
        },
    ]
}

/// The sim config both runs share: smoke scale with random incidents
/// disabled (so the only regime boundaries are the planted ones and the
/// clean twin is provably boundary-free) and with the AR(1) congestion
/// drift tamed. The default rho of 0.985/min keeps ~0.8 correlation
/// between adjacent 15-minute buckets — hours-long stochastic excursions
/// that *are* regime shifts to any online detector and would swamp the
/// planted ground truth. rho = 0.9/min (≈ 0.2 at bucket lag) makes the
/// bucket series near-white, matching the detector's calibrated null.
fn sim_config(windows: Vec<RegimeWindow>) -> SimConfig {
    let mut cfg = SimConfig::scenario(Scenario::Smoke);
    cfg.congestion.incident_rate_per_min = 0.0;
    cfg.congestion.rho = 0.9;
    cfg.congestion.sigma = 0.15;
    cfg.congestion.regimes = windows;
    cfg
}

/// The default threshold scale (1.5× the calibrated white-noise null) is
/// tuned for operator alerting; for a pass/fail CI gate we trade a little
/// detection latency for a hard zero-false-positive requirement. Planted
/// e^1.1 shifts alarm at z ≈ 11+, so the margin is wide.
fn detector_config() -> DetectorConfig {
    DetectorConfig {
        threshold_scale: 2.5,
        ..DetectorConfig::default()
    }
}

/// Run the detector over a generated dataset, via the streaming engine.
fn detect(windows: Vec<RegimeWindow>) -> Result<Vec<RegimeShift>, String> {
    let (log, _) = generate(&sim_config(windows)).map_err(|e| e.to_string())?;
    let config = StreamConfig {
        detector: Some(detector_config()),
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::new(config, Slice::all()).map_err(|e| e.to_string())?;
    for r in log.iter() {
        engine.push(r);
    }
    engine.run_detection().map_err(|e| e.to_string())
}

fn fail(reason: String) -> Artifact {
    Artifact {
        id: "regime",
        title: "Regime-shift detection latency vs planted ground truth (beyond the paper)",
        rendered: format!("{reason}\n"),
        csv: vec![],
        checks: vec![ShapeCheck::new("runs completed", false, reason)],
    }
}

/// Score the detector against planted boundaries (regenerates two
/// smoke-scale datasets: one planted, one clean).
pub fn generate_regime() -> Artifact {
    let cfg = detector_config();
    let bound_ms = BOUND_BUCKETS * cfg.bucket_ms;

    let clean = match detect(Vec::new()) {
        Ok(s) => s,
        Err(e) => return fail(format!("clean run failed: {e}")),
    };
    let planted = match detect(planted_windows()) {
        Ok(s) => s,
        Err(e) => return fail(format!("planted run failed: {e}")),
    };

    // Labeled boundaries: each window opens with an up-shift and closes
    // with a down-shift.
    let mut boundaries: Vec<(i64, &'static str)> = Vec::new();
    for w in planted_windows() {
        boundaries.push((w.start_ms, "up"));
        boundaries.push((w.end_ms, "down"));
    }
    boundaries.sort_unstable();

    // Match each boundary to the first pooled level alarm of the right
    // direction inside [boundary, boundary + bound].
    let pooled_level: Vec<&RegimeShift> = planted
        .iter()
        .filter(|s| s.stream == "pooled" && s.signal == "level")
        .collect();
    let mut rows = Vec::new();
    let mut csv = String::from("boundary_ms,direction,detected_ms,latency_min,matched\n");
    let mut all_matched = true;
    let mut worst_latency_ms: i64 = 0;
    for &(boundary, direction) in &boundaries {
        let hit = pooled_level.iter().find(|s| {
            s.direction == direction && (boundary..=boundary + bound_ms).contains(&s.detected_at_ms)
        });
        let matched = hit.is_some();
        all_matched &= matched;
        let (detected, latency_min) = match hit {
            Some(s) => {
                worst_latency_ms = worst_latency_ms.max(s.detected_at_ms - boundary);
                (
                    s.detected_at_ms.to_string(),
                    format!("{:.0}", (s.detected_at_ms - boundary) as f64 / 60_000.0),
                )
            }
            None => ("-".into(), "-".into()),
        };
        rows.push(vec![
            boundary.to_string(),
            direction.to_string(),
            detected.clone(),
            latency_min.clone(),
            matched.to_string(),
        ]);
        csv.push_str(&format!(
            "{boundary},{direction},{},{},{matched}\n",
            if detected == "-" { "" } else { &detected },
            if latency_min == "-" { "" } else { &latency_min },
        ));
    }

    // Alarms that sit near no boundary are false positives even on the
    // planted run (the planted windows are the only real boundaries).
    let spurious: Vec<&&RegimeShift> = pooled_level
        .iter()
        .filter(|s| {
            !boundaries
                .iter()
                .any(|&(b, _)| (b..=b + bound_ms).contains(&s.detected_at_ms))
        })
        .collect();

    let checks = vec![
        ShapeCheck::new(
            "clean run produces zero alarms (all streams, all signals)",
            clean.is_empty(),
            format!("{} alarm(s): {clean:?}", clean.len()),
        ),
        ShapeCheck::new(
            format!(
                "every planted boundary detected within {} buckets ({} min)",
                BOUND_BUCKETS,
                bound_ms / 60_000
            ),
            all_matched,
            format!(
                "worst latency {} min of {} allowed",
                worst_latency_ms / 60_000,
                bound_ms / 60_000
            ),
        ),
        ShapeCheck::new(
            "no pooled level alarms away from planted boundaries",
            spurious.is_empty(),
            format!("{} spurious alarm(s): {spurious:?}", spurious.len()),
        ),
    ];

    let rendered = format!(
        "regime-shift detection vs planted ground truth\n\
         ({} planted boundaries, lateness bound {} buckets = {} min;\n\
         clean-twin alarms: {})\n\n{}",
        boundaries.len(),
        BOUND_BUCKETS,
        bound_ms / 60_000,
        clean.len(),
        text_table(
            &[
                "boundary (ms)",
                "direction",
                "detected (ms)",
                "latency (min)",
                "matched"
            ],
            &rows
        )
    );

    Artifact {
        id: "regime",
        title: "Regime-shift detection latency vs planted ground truth (beyond the paper)",
        rendered,
        csv: vec![("regime_detection".to_string(), csv)],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regime_artifact_passes_its_own_gate() {
        let art = generate_regime();
        assert!(art.all_pass(), "{}", art.render_checks());
        let (stem, body) = &art.csv[0];
        assert_eq!(stem, "regime_detection");
        assert!(body.starts_with("boundary_ms,direction,detected_ms,latency_min,matched\n"));
        // One row per planted boundary, all matched.
        let rows: Vec<&str> = body.lines().skip(1).collect();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.ends_with(",true")), "{body}");
    }
}
