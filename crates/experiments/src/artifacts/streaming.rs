//! Beyond the paper: streaming-vs-batch fidelity under a lateness budget.
//!
//! The streaming engine admits out-of-order arrivals up to an allowed
//! lateness behind the event-time frontier; anything older is
//! counted-and-dropped at the watermark. This artifact sweeps that budget
//! against a fixed reorder fault (timestamp jitter up to ±30 min injected
//! at the ingest boundary) and reports, per budget: how many events fell
//! past the watermark, the curve's mean absolute deviation from the batch
//! analysis of the same corrupted log, and whether the streamed snapshot
//! is *bit-identical* to batch. The headline claim: once the budget
//! covers the worst-case lag — **twice** the maximum shift, since jitter
//! both advances the frontier (a +30 min outlier) and delays records (a
//! −30 min outlier arriving after it) — drops hit zero and equality is
//! exact, not approximate.

use autosens_core::report::text_table;
use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_faults::{FaultOp, FaultPlan};
use autosens_sim::config::{Scenario, SimConfig};
use autosens_sim::generate;
use autosens_stream::{StreamConfig, StreamEngine};
use autosens_telemetry::log::TelemetryLog;
use autosens_telemetry::query::Slice;

use super::{Artifact, ShapeCheck};

/// Seed for the reorder plan.
const PLAN_SEED: u64 = 0x57E4;

/// Maximum injected timestamp shift, ms (±30 min).
const MAX_SHIFT_MS: i64 = 30 * 60_000;

/// Fraction of records jittered.
const REORDER_RATE: f64 = 0.3;

/// Allowed-lateness budgets swept, in minutes.
const BUDGETS_MIN: [i64; 6] = [1, 5, 10, 20, 30, 60];

/// Probe grid for the curve comparison, ms.
fn probes() -> Vec<f64> {
    (200..=1400).step_by(100).map(|l| l as f64).collect()
}

fn curve_at_probes(report: &autosens_core::pipeline::AnalysisReport) -> Vec<(f64, f64)> {
    probes()
        .into_iter()
        .filter_map(|l| report.preference.at(l).map(|v| (l, v)))
        .collect()
}

fn mae(a: &[(f64, f64)], b: &[(f64, f64)]) -> Option<f64> {
    let mut err = 0.0;
    let mut n = 0;
    for (x, v) in a {
        if let Some((_, w)) = b.iter().find(|(bx, _)| bx == x) {
            err += (v - w).abs();
            n += 1;
        }
    }
    (n >= 6).then(|| err / n as f64)
}

fn bit_identical(
    a: &autosens_core::pipeline::AnalysisReport,
    b: &autosens_core::pipeline::AnalysisReport,
) -> bool {
    a.n_actions == b.n_actions
        && a.degradations == b.degradations
        && a.preference
            .series()
            .iter()
            .map(|(x, y)| (x.to_bits(), y.to_bits()))
            .eq(b
                .preference
                .series()
                .iter()
                .map(|(x, y)| (x.to_bits(), y.to_bits())))
}

fn fail(reason: String) -> Artifact {
    Artifact {
        id: "streaming",
        title: "Streaming fidelity vs lateness budget (beyond the paper)",
        rendered: format!("{reason}\n"),
        csv: vec![],
        checks: vec![ShapeCheck::new("sweep completed", false, reason)],
    }
}

/// Run the lateness sweep (regenerates a smoke-scale dataset).
pub fn generate_streaming() -> Artifact {
    let cfg = SimConfig::scenario(Scenario::Smoke);
    let log: TelemetryLog = match generate(&cfg) {
        Ok((log, _)) => log,
        Err(e) => return fail(format!("dataset generation failed: {e}")),
    };
    let plan = FaultPlan {
        seed: PLAN_SEED,
        ops: vec![FaultOp::Reorder {
            rate: REORDER_RATE,
            max_shift_ms: MAX_SHIFT_MS,
        }],
    };
    let corrupted = match plan.apply(&log) {
        Ok(l) => l,
        Err(e) => return fail(format!("fault injection failed: {e}")),
    };
    let batch = match AnalysisPlan::new(AutoSensConfig::default())
        .run(PlanInput::log(&corrupted), RunOptions::default())
    {
        Ok(out) => out.report,
        Err(e) => return fail(format!("batch analysis failed: {e}")),
    };
    let batch_curve = curve_at_probes(&batch);

    let mut rows = Vec::new();
    let mut points: Vec<(i64, u64, Option<f64>, bool)> = Vec::new();
    for &minutes in &BUDGETS_MIN {
        let stream_cfg = StreamConfig {
            analysis: AutoSensConfig::default(),
            shard_ms: 6 * 3_600_000,
            allowed_lateness_ms: minutes * 60_000,
            retain_ms: None,
            detector: None,
            decay_half_life_ms: None,
        };
        let mut engine = match StreamEngine::new(stream_cfg, Slice::all()) {
            Ok(e) => e,
            Err(e) => return fail(format!("engine construction failed: {e}")),
        };
        for r in corrupted.iter() {
            engine.push(r);
        }
        let status = engine.status();
        let (m, exact) = match engine.snapshot() {
            Ok(snap) => (
                mae(&batch_curve, &curve_at_probes(&snap)),
                bit_identical(&snap, &batch),
            ),
            Err(_) => (None, false),
        };
        points.push((minutes, status.late, m, exact));
        rows.push(vec![
            format!("{minutes} min"),
            status.late.to_string(),
            m.map(|m| format!("{m:.6}")).unwrap_or_else(|| "-".into()),
            if exact {
                "yes".into()
            } else {
                "no".to_string()
            },
        ]);
    }

    let mut rendered = String::from(
        "Streaming fidelity — lateness budget vs ±30 min reorder injection\n\
         (streamed snapshot compared against batch analysis of the same\n\
         corrupted log; \"exact\" = bit-identical curves and degradations)\n\n",
    );
    rendered.push_str(&text_table(
        &[
            "lateness budget",
            "late-dropped",
            "curve MAE vs batch",
            "exact",
        ],
        &rows,
    ));

    let csv = vec![("streaming_lateness".to_string(), {
        let mut s = String::from("lateness_min,late_dropped,curve_mae,bit_identical\n");
        for (minutes, late, m, exact) in &points {
            s.push_str(&format!(
                "{minutes},{late},{},{exact}\n",
                m.map(|m| m.to_string()).unwrap_or_default()
            ));
        }
        s
    })];

    // Worst-case lag behind the frontier is 2x the shift: a +shift outlier
    // advances the frontier, then a -shift outlier arrives behind it.
    let covered: Vec<&(i64, u64, Option<f64>, bool)> = points
        .iter()
        .filter(|(minutes, _, _, _)| minutes * 60_000 >= 2 * MAX_SHIFT_MS)
        .collect();
    let exact_when_covered = !covered.is_empty()
        && covered
            .iter()
            .all(|(_, late, _, exact)| *late == 0 && *exact);
    let drops_monotone = points.windows(2).all(|w| w[1].1 <= w[0].1);
    let tight_budget_drops = points
        .first()
        .map(|(_, late, _, _)| *late > 0)
        .unwrap_or(false);
    let checks = vec![
        ShapeCheck::new(
            "budget >= 2x max jitter gives zero drops and bit-exact equality",
            exact_when_covered,
            format!(
                "covered budgets: {:?}",
                covered
                    .iter()
                    .map(|(m, late, _, exact)| (*m, *late, *exact))
                    .collect::<Vec<_>>()
            ),
        ),
        ShapeCheck::new(
            "late drops decrease monotonically with the budget",
            drops_monotone,
            format!(
                "drops: {:?}",
                points
                    .iter()
                    .map(|(_, late, _, _)| *late)
                    .collect::<Vec<_>>()
            ),
        ),
        ShapeCheck::new(
            "an under-provisioned budget visibly drops events",
            tight_budget_drops,
            format!(
                "drops at 1 min: {:?}",
                points.first().map(|(_, l, _, _)| *l)
            ),
        ),
    ];

    Artifact {
        id: "streaming",
        title: "Streaming fidelity vs lateness budget (beyond the paper)",
        rendered,
        csv,
        checks,
    }
}
