//! One module per paper artifact, each producing an [`Artifact`].

pub mod abandonment_ext;
pub mod bottleneck;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod load;
pub mod profile;
pub mod regime;
pub mod robustness;
pub mod streaming;
pub mod sweep;
pub mod table1;

use crate::dataset::Dataset;

/// A qualitative claim the paper makes about an artifact, evaluated here.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// What is being checked (e.g. "SelectMail steeper than Search").
    pub name: String,
    /// Whether this run's measurement satisfies the claim.
    pub pass: bool,
    /// The measured values behind the verdict.
    pub detail: String,
}

impl ShapeCheck {
    /// Build a check from a named condition.
    pub fn new(name: impl Into<String>, pass: bool, detail: impl Into<String>) -> ShapeCheck {
        ShapeCheck {
            name: name.into(),
            pass,
            detail: detail.into(),
        }
    }
}

/// A regenerated table or figure.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Identifier matching the paper ("fig4", "table1", ...).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// The rendered text block (what the binary prints).
    pub rendered: String,
    /// Named CSV payloads for plotting, `(file stem, contents)`.
    pub csv: Vec<(String, String)>,
    /// The paper's qualitative claims, evaluated on this run.
    pub checks: Vec<ShapeCheck>,
}

impl Artifact {
    /// Whether every shape check passed.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Render the check list as text.
    pub fn render_checks(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(&format!(
                "  [{}] {} ({})\n",
                if c.pass { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            ));
        }
        out
    }
}

/// Every artifact generator, in paper order.
pub fn all(data: &Dataset) -> Vec<Artifact> {
    vec![
        fig1::generate(data),
        fig2::generate(data),
        fig3::generate(data),
        table1::generate(),
        fig4::generate(data),
        fig5::generate(data),
        fig6::generate(data),
        fig7::generate(data),
        fig8::generate(data),
        fig9::generate(data),
        bottleneck::generate(data),
    ]
}

/// Generate one artifact by id, if known.
pub fn by_id(data: &Dataset, id: &str) -> Option<Artifact> {
    match id {
        "fig1" => Some(fig1::generate(data)),
        "fig2" => Some(fig2::generate(data)),
        "fig3" => Some(fig3::generate(data)),
        "table1" => Some(table1::generate()),
        "fig4" => Some(fig4::generate(data)),
        "fig5" => Some(fig5::generate(data)),
        "fig6" => Some(fig6::generate(data)),
        "fig7" => Some(fig7::generate(data)),
        "fig8" => Some(fig8::generate(data)),
        "fig9" => Some(fig9::generate(data)),
        "bottleneck" => Some(bottleneck::generate(data)),
        // Extension artifacts, not in `ids()`/`all`: they regenerate
        // datasets of their own (ignoring `data`). Run explicitly via
        // `autosens-experiments sweep` / `abandonment-ext`.
        "sweep" => Some(sweep::generate_sweep()),
        "abandonment-ext" => Some(abandonment_ext::generate_abandonment()),
        "robustness" => Some(robustness::generate_robustness()),
        "streaming" => Some(streaming::generate_streaming()),
        "regime" => Some(regime::generate_regime()),
        "load" => Some(load::generate_load()),
        // Profiles the *loaded* dataset, so `--bench` profiles smoke scale.
        "profile" => Some(profile::generate(data)),
        _ => None,
    }
}

/// All known artifact ids, in paper order.
pub fn ids() -> &'static [&'static str] {
    &[
        "fig1",
        "fig2",
        "fig3",
        "table1",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "bottleneck",
    ]
}
