//! Beyond the paper: multi-tenant serve-plane load.
//!
//! Drives a real [`autosens_serve::Gateway`] over TCP loopback with a
//! fleet of simulated tenants — every record crosses the wire through
//! the framed agent protocol, lands in a per-tenant bounded queue, and
//! is ingested by that tenant's own streaming engine. The artifact
//! reports what the gateway sustained: tenants registered, records
//! ingested per second, per-tenant snapshot latency (the cost one
//! `/tenant/<svc>/<region>/curve` query pays), and the wall clock of a
//! fleet-wide snapshot fan-out through the exec scheduler.
//!
//! Every tenant receives the same record slice, which turns the fleet
//! into a determinism probe: one thousand independently-created engines
//! fed identical input must serve identical curves. The shape checks
//! fail if any tenant drifts, if any record is lost between agent and
//! engine, or if any `autosens_serve_*` metric goes non-finite under
//! load.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

use autosens_obs::Recorder;
use autosens_serve::frame::{read_frame, write_frame};
use autosens_serve::{Frame, Gateway, GatewayConfig, TenantKey, PROTOCOL_VERSION};
use autosens_sim::config::{Scenario, SimConfig};
use autosens_sim::generate;
use autosens_telemetry::record::ActionRecord;

use super::{Artifact, ShapeCheck};

/// Tenants the headline run drives (the acceptance floor is 1000).
const TENANTS: usize = 1000;

/// Floor on records each tenant ingests; the driver grows this to the
/// smallest pool prefix whose analysis has enough support to snapshot
/// (see `clean_prefix`).
const RECORDS_PER_TENANT: usize = 1200;

/// Concurrent agent connections pushing the fleet.
const CONNECTIONS: usize = 4;

/// Simulator seed for the shared record pool.
const SEED: u64 = 0x10AD;

/// Load-run parameters (small in unit tests, [`TENANTS`]-scale in the
/// artifact).
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Tenants to create (`svc-XX/reg-YY` grid).
    pub tenants: usize,
    /// Floor on records pushed to every tenant (grown until the slice
    /// analyzes cleanly).
    pub records_per_tenant: usize,
    /// Concurrent pusher connections.
    pub connections: usize,
    /// Worker threads for the fleet snapshot fan-out.
    pub snapshot_threads: usize,
    /// Simulator seed for the shared record slice.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            tenants: TENANTS,
            records_per_tenant: RECORDS_PER_TENANT,
            connections: CONNECTIONS,
            snapshot_threads: 4,
            seed: SEED,
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadStats {
    /// Tenants registered in the gateway after the push.
    pub tenants: usize,
    /// Records each tenant actually received (the configured floor,
    /// grown to the smallest cleanly-analyzing pool prefix).
    pub records_per_tenant: usize,
    /// Records acknowledged across the fleet.
    pub records_total: u64,
    /// Wall clock of the whole push (connect through last ACK), ms.
    pub ingest_wall_ms: f64,
    /// `records_total / ingest_wall`.
    pub records_per_sec: f64,
    /// `tenants / ingest_wall`.
    pub tenants_per_sec: f64,
    /// Per-tenant snapshot latencies, sorted ascending, ms. Measured
    /// after the cold fleet pass, so these are warm (cache-served)
    /// queries — the cost one `/curve` poll pays on a quiet tenant.
    pub snapshot_ms: Vec<f64>,
    /// Wall clock of the cold `snapshot_all` fan-out (every tenant's
    /// report computed from scratch), ms.
    pub fleet_snapshot_wall_ms: f64,
    /// Wall clock of a second `snapshot_all` with no new events (every
    /// report served from the engine snapshot cache), ms.
    pub fleet_resnapshot_wall_ms: f64,
    /// Tenants the warm pass served from cache (must equal `tenants`).
    pub resnapshot_reused: usize,
    /// Whether every tenant served an identical preference curve.
    pub curves_identical: bool,
    /// Error from the metrics finiteness sweep, if any.
    pub metrics_error: Option<String>,
    /// `autosens_serve_records_total` as the gateway counted it.
    pub counted_records: u64,
}

impl LoadStats {
    /// Percentile (nearest-rank) over the sorted snapshot latencies.
    pub fn snapshot_percentile_ms(&self, p: f64) -> f64 {
        percentile(&self.snapshot_ms, p)
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The tenant grid: `svc-XX/reg-YY`, row-major, truncated to `n`.
fn tenant_keys(n: usize) -> Vec<TenantKey> {
    let regions = 25usize;
    (0..n)
        .map(|i| {
            TenantKey::new(
                format!("svc-{:02}", i / regions),
                format!("reg-{:02}", i % regions),
            )
            .expect("generated labels are valid")
        })
        .collect()
}

/// One pusher connection: HELLO, then one BATCH per assigned tenant,
/// stop-and-wait on the cumulative ACK. Returns the records acked.
fn push_tenants(
    addr: std::net::SocketAddr,
    keys: &[TenantKey],
    batch: &[ActionRecord],
) -> Result<u64, String> {
    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(stream);
    let await_ack = |reader: &mut BufReader<TcpStream>| -> Result<u64, String> {
        match read_frame(reader).map_err(|e| e.to_string())? {
            Some(Frame::Ack { records }) => Ok(records),
            Some(Frame::Error { message }) => Err(format!("gateway error: {message}")),
            other => Err(format!("unexpected reply: {other:?}")),
        }
    };
    write_frame(
        &mut writer,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
        },
    )
    .map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    await_ack(&mut reader)?;
    let mut acked = 0;
    for key in keys {
        write_frame(
            &mut writer,
            &Frame::Batch {
                tenant: key.clone(),
                records: batch.to_vec(),
            },
        )
        .map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        acked = await_ack(&mut reader)?;
    }
    Ok(acked)
}

/// The smallest pool prefix (doubling from `floor`) whose analysis has
/// enough busy/underload support to snapshot cleanly. Support depends
/// on how many distinct hours a time-sorted prefix spans, which varies
/// with the simulator seed — probing keeps every tenant snapshotable
/// without hardcoding a seed-specific count.
fn clean_prefix(pool: &[ActionRecord], floor: usize) -> Result<&[ActionRecord], String> {
    let mut n = floor.max(1);
    loop {
        if n > pool.len() {
            return Err(format!(
                "no prefix of the {}-record pool analyzes cleanly",
                pool.len()
            ));
        }
        let mut probe = autosens_stream::StreamEngine::new(
            autosens_stream::StreamConfig::default(),
            autosens_telemetry::query::Slice::all(),
        )
        .map_err(|e| e.to_string())?;
        for r in &pool[..n] {
            probe.push(r.clone());
        }
        if probe.snapshot().is_ok() {
            return Ok(&pool[..n]);
        }
        n *= 2;
    }
}

/// Run one gateway load experiment: spin up a gateway on loopback, push
/// the tenant fleet over `connections` framed sockets, then snapshot
/// every tenant (individually, timing each, and once more through the
/// fleet-wide exec fan-out).
pub fn drive(config: &LoadConfig) -> Result<LoadStats, String> {
    let mut sim = SimConfig::scenario(Scenario::Smoke);
    sim.seed = config.seed;
    let (log, _) = generate(&sim)?;
    let pool = log.to_records();
    if pool.len() < config.records_per_tenant {
        return Err(format!(
            "record pool too small: {} < {}",
            pool.len(),
            config.records_per_tenant
        ));
    }
    let batch = clean_prefix(&pool, config.records_per_tenant)?;
    let keys = tenant_keys(config.tenants);

    let recorder = Recorder::new();
    let gateway = Gateway::new(
        GatewayConfig {
            ingest_capacity: batch.len().max(1024),
            ..GatewayConfig::default()
        },
        recorder.clone(),
    )
    .map_err(|e| e.to_string())?;
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let accept_gw = gateway.clone();
    let accept = std::thread::spawn(move || {
        let _ = accept_gw.serve_tcp(listener);
    });

    let t0 = Instant::now();
    let chunk = keys.len().div_ceil(config.connections.max(1));
    let acked: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = keys
            .chunks(chunk)
            .map(|part| s.spawn(move || push_tenants(addr, part, batch)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pusher thread completes"))
            .sum::<Result<u64, String>>()
    })?;
    let ingest_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Cold fleet fan-out through the exec scheduler: every tenant's
    // report is computed from scratch.
    let registry = gateway.registry();
    let t = Instant::now();
    let fleet = registry
        .snapshot_all(config.snapshot_threads)
        .map_err(|e| e.to_string())?;
    let fleet_snapshot_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    if fleet.len() != keys.len() {
        return Err(format!(
            "fleet snapshot covered {} of {} tenants",
            fleet.len(),
            keys.len()
        ));
    }

    // Warm fleet fan-out: no events arrived since the cold pass, so
    // every report is served verbatim from the engine snapshot cache.
    let t = Instant::now();
    registry
        .snapshot_all(config.snapshot_threads)
        .map_err(|e| e.to_string())?;
    let fleet_resnapshot_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let resnapshot_reused = registry
        .last_fleet_snapshot()
        .map(|s| s.reused)
        .unwrap_or(0);

    // Per-tenant snapshot latency: the cost one `/curve` query pays on a
    // quiet tenant (warm — the fleet passes above populated the caches).
    let mut snapshot_ms = Vec::with_capacity(keys.len());
    let mut curve = None;
    let mut curves_identical = true;
    for key in &keys {
        let t = Instant::now();
        let (report, _) = registry.snapshot(key).map_err(|e| e.to_string())?;
        snapshot_ms.push(t.elapsed().as_secs_f64() * 1e3);
        let series = serde_json::to_string(&report.preference.series().to_vec())
            .map_err(|e| e.to_string())?;
        match &curve {
            None => curve = Some(series),
            Some(first) => curves_identical &= *first == series,
        }
    }
    snapshot_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    gateway.request_stop();
    let _ = TcpStream::connect(addr);
    let _ = accept.join();

    let metrics = recorder.metrics().snapshot();
    let metrics_error = metrics.validate_finite().err();
    let counted_records = metrics
        .counters
        .iter()
        .find(|c| c.name == "autosens_serve_records_total")
        .map(|c| c.value)
        .unwrap_or(0);

    Ok(LoadStats {
        tenants: registry.len(),
        records_per_tenant: batch.len(),
        records_total: acked,
        ingest_wall_ms,
        records_per_sec: acked as f64 / (ingest_wall_ms / 1e3),
        tenants_per_sec: keys.len() as f64 / (ingest_wall_ms / 1e3),
        snapshot_ms,
        fleet_snapshot_wall_ms,
        fleet_resnapshot_wall_ms,
        resnapshot_reused,
        curves_identical,
        metrics_error,
        counted_records,
    })
}

/// Generate the serve-plane load artifact at acceptance scale.
pub fn generate_load() -> Artifact {
    let config = LoadConfig::default();
    let stats = drive(&config).expect("load run completes");
    render(&config, &stats)
}

/// Render stats into the artifact (split out so tests can check the
/// shape logic at small scale).
fn render(config: &LoadConfig, stats: &LoadStats) -> Artifact {
    let expected = (config.tenants * stats.records_per_tenant) as u64;
    let p50 = stats.snapshot_percentile_ms(50.0);
    let p99 = stats.snapshot_percentile_ms(99.0);
    let rendered = format!(
        "serve-plane load: {} tenants x {} records over {} connections\n\
         \n\
         ingest wall        {:>10.1} ms\n\
         records/sec        {:>10.0}\n\
         tenants/sec        {:>10.1}\n\
         snapshot p50       {:>10.2} ms (warm)\n\
         snapshot p99       {:>10.2} ms (warm)\n\
         fleet snapshot     {:>10.1} ms ({} tenants, {} threads, cold)\n\
         fleet re-snapshot  {:>10.1} ms ({} reused from cache)\n",
        stats.tenants,
        stats.records_per_tenant,
        config.connections,
        stats.ingest_wall_ms,
        stats.records_per_sec,
        stats.tenants_per_sec,
        p50,
        p99,
        stats.fleet_snapshot_wall_ms,
        stats.tenants,
        config.snapshot_threads,
        stats.fleet_resnapshot_wall_ms,
        stats.resnapshot_reused,
    );
    let csv = vec![(
        "load_summary".to_string(),
        format!(
            "tenants,records_total,ingest_wall_ms,records_per_sec,tenants_per_sec,\
             snapshot_p50_ms,snapshot_p99_ms,fleet_snapshot_wall_ms,fleet_resnapshot_wall_ms\n\
             {},{},{:.3},{:.1},{:.2},{:.3},{:.3},{:.3},{:.3}\n",
            stats.tenants,
            stats.records_total,
            stats.ingest_wall_ms,
            stats.records_per_sec,
            stats.tenants_per_sec,
            p50,
            p99,
            stats.fleet_snapshot_wall_ms,
            stats.fleet_resnapshot_wall_ms,
        ),
    )];
    let checks = vec![
        ShapeCheck::new(
            format!("gateway sustains {} concurrent tenants", config.tenants),
            stats.tenants == config.tenants,
            format!("{} registered", stats.tenants),
        ),
        ShapeCheck::new(
            "every pushed record acknowledged and counted",
            stats.records_total == expected && stats.counted_records == expected,
            format!(
                "acked {} / counted {} / expected {}",
                stats.records_total, stats.counted_records, expected
            ),
        ),
        ShapeCheck::new(
            "snapshot latency finite and ordered (p50 <= p99)",
            p50.is_finite() && p99.is_finite() && p50 > 0.0 && p50 <= p99,
            format!("p50 {p50:.2} ms, p99 {p99:.2} ms"),
        ),
        ShapeCheck::new(
            "identical input yields identical curves on every tenant",
            stats.curves_identical,
            format!("{} engines compared", stats.tenants),
        ),
        ShapeCheck::new(
            "warm fleet re-snapshot serves every tenant from cache",
            stats.resnapshot_reused == stats.tenants,
            format!("{} of {} reused", stats.resnapshot_reused, stats.tenants),
        ),
        ShapeCheck::new(
            "all serve metrics finite under load",
            stats.metrics_error.is_none(),
            stats
                .metrics_error
                .clone()
                .unwrap_or_else(|| "clean".into()),
        ),
    ];
    Artifact {
        id: "load",
        title: "Serve-plane load: multi-tenant gateway throughput and snapshot latency",
        rendered,
        csv,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_passes_every_shape_check() {
        let config = LoadConfig {
            tenants: 12,
            records_per_tenant: 1200,
            connections: 3,
            snapshot_threads: 2,
            seed: 42,
        };
        let stats = drive(&config).expect("small load run completes");
        let artifact = render(&config, &stats);
        assert!(
            artifact.all_pass(),
            "shape checks failed:\n{}",
            artifact.render_checks()
        );
        assert_eq!(stats.tenants, 12);
        assert_eq!(stats.records_total, 12 * stats.records_per_tenant as u64);
        assert!(stats.records_per_tenant >= 1200);
        assert_eq!(stats.snapshot_ms.len(), 12);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 99.0), 4.0);
        assert!(percentile(&[], 50.0).is_nan());
    }
}
