//! Figure 1: MSD/MAD ratio of the latency time series — actual vs.
//! randomly shuffled vs. sorted.

use autosens_core::locality::locality_report;
use autosens_core::report::{f3, text_table};
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::{Artifact, ShapeCheck};
use crate::dataset::Dataset;

/// Regenerate Figure 1.
pub fn generate(data: &Dataset) -> Artifact {
    let mut rng = StdRng::seed_from_u64(0xF1);
    let report = locality_report(&data.log.view(), &mut rng).expect("non-trivial log");

    let rows = vec![
        vec!["actual".into(), f3(report.msd_mad_actual)],
        vec!["shuffled".into(), f3(report.msd_mad_shuffled)],
        vec!["sorted".into(), format!("{:.5}", report.msd_mad_sorted)],
    ];
    let mut rendered = String::from(
        "Figure 1 — MSD/MAD ratio of the latency time series\n\
         (locality precondition: actual must sit well below shuffled)\n\n",
    );
    rendered.push_str(&text_table(&["series", "MSD/MAD"], &rows));
    rendered.push_str(&format!(
        "\nvon Neumann ratio: {:.3} (iid expectation 2.0)\nsamples: {}\n",
        report.von_neumann, report.n_samples
    ));

    let csv = vec![(
        "fig1_msd_mad".to_string(),
        format!(
            "series,msd_mad\nactual,{}\nshuffled,{}\nsorted,{}\n",
            report.msd_mad_actual, report.msd_mad_shuffled, report.msd_mad_sorted
        ),
    )];

    let checks = vec![
        ShapeCheck::new(
            "actual ratio well below shuffled (latency has temporal locality)",
            report.msd_mad_actual < 0.8 * report.msd_mad_shuffled,
            format!(
                "actual {:.3} vs shuffled {:.3}",
                report.msd_mad_actual, report.msd_mad_shuffled
            ),
        ),
        ShapeCheck::new(
            "shuffled ratio near 1",
            (report.msd_mad_shuffled - 1.0).abs() < 0.1,
            f3(report.msd_mad_shuffled),
        ),
        ShapeCheck::new(
            "sorted ratio near 0",
            report.msd_mad_sorted < 0.05,
            format!("{:.5}", report.msd_mad_sorted),
        ),
    ];

    Artifact {
        id: "fig1",
        title: "MSD/MAD locality ratios",
        rendered,
        csv,
        checks,
    }
}
