//! Beyond the paper: per-stage wall-clock profile of the pipeline.
//!
//! Runs the full analysis (with a bootstrap confidence band) against the
//! loaded dataset under a collecting [`autosens_obs::Recorder`] and reports
//! where the time goes, stage by stage. The CSV backs the performance
//! discussion in DESIGN.md and gives future optimisation PRs a baseline to
//! diff against.

use autosens_core::plan::op;
use autosens_core::report::text_table;
use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_obs::Recorder;
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};

use super::{Artifact, ShapeCheck};

/// Bootstrap replicates for the profiled CI pass: enough for the stage to
/// register in the profile without dominating the run.
const CI_REPLICATES: usize = 50;

/// Profile one end-to-end analysis of the given dataset.
pub fn generate(data: &crate::dataset::Dataset) -> Artifact {
    let recorder = Recorder::new();
    let plan = AnalysisPlan::with_recorder(AutoSensConfig::default(), recorder.clone());
    let slice = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);

    let outcome = plan.run(
        PlanInput::slice(&data.log, &slice),
        RunOptions::with_ci(CI_REPLICATES, 0.95),
    );
    let tree = recorder.finish();

    let mut checks = vec![ShapeCheck::new(
        "analysis succeeds",
        outcome.is_ok(),
        match &outcome {
            Ok(out) => format!("{} actions analyzed", out.report.n_actions),
            Err(e) => e.to_string(),
        },
    )];

    // Wall-clock totals per span name, attributed against the analyze root.
    let totals = tree.totals_by_name();
    let root_ms = tree.total_ms_named("analyze").max(f64::MIN_POSITIVE);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv = String::from("stage,calls,wall_ms,share\n");
    for (name, ms, calls) in &totals {
        let share = ms / root_ms;
        rows.push(vec![
            name.clone(),
            calls.to_string(),
            format!("{ms:.3}"),
            format!("{:.1}%", 100.0 * share),
        ]);
        csv.push_str(&format!("{name},{calls},{ms:.4},{share:.4}\n"));
    }

    // The expected stage column derives from the plan's operator table:
    // every always-run operator plus the CI bootstrap requested above.
    for spec in AnalysisPlan::operators().iter().chain([&op::CI_BOOTSTRAP]) {
        let stage = spec.name;
        let n = tree.count_named(stage);
        checks.push(ShapeCheck::new(
            format!("stage {stage} profiled"),
            n >= 1,
            format!("{n} span(s), {:.3} ms", tree.total_ms_named(stage)),
        ));
    }
    checks.push(ShapeCheck::new(
        "all stage times finite",
        totals.iter().all(|(_, ms, _)| ms.is_finite() && *ms >= 0.0),
        format!("{} span names", totals.len()),
    ));

    let rendered = format!(
        "per-stage wall-clock profile ({} records, {} bootstrap replicates)\n\n{}",
        data.log.len(),
        CI_REPLICATES,
        text_table(&["stage", "calls", "wall (ms)", "share"], &rows)
    );

    Artifact {
        id: "profile",
        title: "Per-stage pipeline wall-clock profile (beyond the paper)",
        rendered,
        csv: vec![("stage_profile".to_string(), csv)],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Scale};

    #[test]
    fn profile_covers_every_stage_at_bench_scale() {
        let art = generate(&Dataset::load(Scale::Bench));
        assert!(art.all_pass(), "{}", art.render_checks());
        let (stem, body) = &art.csv[0];
        assert_eq!(stem, "stage_profile");
        assert!(body.starts_with("stage,calls,wall_ms,share\n"));
        // Parse the stage column: every documented pipeline stage (and the
        // CI stage) must appear as an exact row, each with a positive call
        // count and a finite wall-clock time — substring matching would
        // also accept a stage that only appears inside another's name.
        let mut rows = std::collections::BTreeMap::new();
        for line in body.lines().skip(1) {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 4, "malformed profile row {line:?}");
            let calls: u64 = fields[1].parse().expect("calls column");
            let wall_ms: f64 = fields[2].parse().expect("wall_ms column");
            assert!(wall_ms.is_finite() && wall_ms >= 0.0, "row {line:?}");
            rows.insert(fields[0].to_string(), calls);
        }
        for spec in AnalysisPlan::operators().iter().chain([&op::CI_BOOTSTRAP]) {
            let stage = spec.name;
            let calls = rows.get(stage);
            assert!(
                calls.is_some_and(|&c| c >= 1),
                "stage {stage} missing from the CSV stage column: {body}"
            );
        }
        // The batch profile must not grow streaming-only stages.
        assert!(
            !rows.contains_key("windowed_curve"),
            "windowed_curve must not run in a batch profile: {body}"
        );
    }
}
