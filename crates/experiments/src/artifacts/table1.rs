//! Table 1: the worked day/night normalization example, reproduced exactly
//! from the paper's eight input numbers.

use autosens_core::alpha::alpha_vs_reference;
use autosens_core::report::text_table;

use super::{Artifact, ShapeCheck};

/// Regenerate Table 1. This artifact is fully deterministic (it runs on the
/// paper's own example numbers, not on simulated data).
pub fn generate() -> Artifact {
    // Inputs exactly as printed in the paper.
    let c_day = [90.0, 140.0];
    let f_day = [0.3, 0.7]; // 30% / 70% of day-slot time
    let c_night = [26.0, 4.0];
    let f_night = [0.8, 0.2];

    let (per_bin, mean) = alpha_vs_reference(&c_night, &f_night, &c_day, &f_day, 0.0, 0.0);
    let a_low = per_bin[0].expect("defined");
    let a_high = per_bin[1].expect("defined");
    let alpha = mean.expect("defined");
    let norm_low = (c_night[0] / alpha).round();
    let norm_high = (c_night[1] / alpha).round();

    let rows = vec![
        vec![
            "Day".into(),
            "Low".into(),
            "90".into(),
            "30%".into(),
            "90".into(),
        ],
        vec![
            "Day".into(),
            "High".into(),
            "140".into(),
            "70%".into(),
            "140".into(),
        ],
        vec![
            "Night".into(),
            "Low".into(),
            "26".into(),
            "80%".into(),
            format!("{norm_low:.0}"),
        ],
        vec![
            "Night".into(),
            "High".into(),
            "4".into(),
            "20%".into(),
            format!("{norm_high:.0}"),
        ],
    ];
    let mut rendered = String::from(
        "Table 1 — time-confounder normalization on the paper's example\n\
         (day slot as reference)\n\n",
    );
    rendered.push_str(&text_table(
        &[
            "time slot",
            "latency",
            "# actions",
            "% time",
            "normalized #",
        ],
        &rows,
    ));
    let low_rate = (c_day[0] + norm_low) / 110.0;
    let high_rate = (c_day[1] + norm_high) / 90.0;
    let naive_low = (c_day[0] + c_night[0]) / 110.0;
    let naive_high = (c_day[1] + c_night[1]) / 90.0;
    rendered.push_str(&format!(
        "\nalpha(night, low) = {a_low:.3}   alpha(night, high) = {a_high:.3}   alpha(night) = {alpha:.3}\n\
         corrected activity: low {low_rate:.2} vs high {high_rate:.2} per unit time (low > high)\n\
         naive (uncorrected): low {naive_low:.2} vs high {naive_high:.2} (inverted!)\n"
    ));

    let csv = vec![(
        "table1".to_string(),
        format!(
            "slot,latency,actions,pct_time,normalized\n\
             Day,Low,90,30,90\nDay,High,140,70,140\n\
             Night,Low,26,80,{norm_low}\nNight,High,4,20,{norm_high}\n"
        ),
    )];

    let checks = vec![
        ShapeCheck::new(
            "alpha(night, low) = 0.108",
            (a_low - 0.108).abs() < 5e-4,
            format!("{a_low:.4}"),
        ),
        ShapeCheck::new(
            "alpha(night, high) = 0.100",
            (a_high - 0.100).abs() < 5e-4,
            format!("{a_high:.4}"),
        ),
        ShapeCheck::new(
            "alpha(night) = 0.104",
            (alpha - 0.104).abs() < 5e-4,
            format!("{alpha:.4}"),
        ),
        ShapeCheck::new(
            "normalized counts 250 and 38",
            norm_low == 250.0 && norm_high == 38.0,
            format!("{norm_low:.0} / {norm_high:.0}"),
        ),
        ShapeCheck::new(
            "corrected rates 3.09 (low) vs 1.97 (high)",
            (low_rate - 3.09).abs() < 0.01 && (high_rate - 1.97).abs() < 0.01,
            format!("{low_rate:.2} / {high_rate:.2}"),
        ),
        ShapeCheck::new(
            "naive pooling inverts the conclusion (1.04 low vs 1.60 high)",
            (naive_low - 1.04).abs() < 0.02 && (naive_high - 1.60).abs() < 0.01,
            format!("{naive_low:.2} / {naive_high:.2}"),
        ),
    ];

    Artifact {
        id: "table1",
        title: "Day/night normalization worked example",
        rendered,
        csv,
        checks,
    }
}
