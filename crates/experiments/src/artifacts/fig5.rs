//! Figure 5: business vs. consumer latency preference for SelectMail.
//! The paper finds the drop-off is sharper for (paying) business users.

use autosens_core::report::{f3, series_csv, text_table};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};

use super::{Artifact, ShapeCheck};
use crate::dataset::Dataset;

/// Regenerate Figure 5.
pub fn generate(data: &Dataset) -> Artifact {
    let base = Slice::all().action(ActionType::SelectMail);
    let results = data.engine.by_user_class(&data.log, &base);

    let grid = [500.0, 1000.0, 1500.0, 2000.0];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut vals = std::collections::HashMap::new();
    for (class, result) in &results {
        match result {
            Ok(report) => {
                let mut row = vec![class.name().to_string(), report.n_actions.to_string()];
                for l in grid {
                    row.push(
                        report
                            .preference
                            .at(l)
                            .map(f3)
                            .unwrap_or_else(|| "-".into()),
                    );
                }
                rows.push(row);
                csv.push((
                    format!("fig5_{}", class.name().to_lowercase()),
                    series_csv(("latency_ms", "preference"), &report.preference.series()),
                ));
                vals.insert(*class, report.preference.clone());
            }
            Err(e) => rows.push(vec![
                class.name().to_string(),
                "-".into(),
                format!("error: {e}"),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }

    let mut rendered = String::from(
        "Figure 5 — business vs consumer preference for SelectMail\n\
         (reference 300 ms)\n\n",
    );
    rendered.push_str(&text_table(
        &["class", "n", "@500ms", "@1000ms", "@1500ms", "@2000ms"],
        &rows,
    ));

    let mut checks = Vec::new();
    let probes = [800.0, 1200.0, 1600.0];
    for l in probes {
        let b = vals.get(&UserClass::Business).and_then(|p| p.at(l));
        let c = vals.get(&UserClass::Consumer).and_then(|p| p.at(l));
        let (pass, detail) = match (b, c) {
            (Some(b), Some(c)) => (b < c, format!("business {b:.3} < consumer {c:.3}")),
            _ => (false, "missing".into()),
        };
        checks.push(ShapeCheck::new(
            format!("business steeper than consumer @{l:.0}ms"),
            pass,
            detail,
        ));
    }

    Artifact {
        id: "fig5",
        title: "Business vs consumer preference (SelectMail)",
        rendered,
        csv,
        checks,
    }
}
