//! Figure 8: the time-based activity factor α per 6-hour period, with the
//! 8am–2pm period as reference. The paper's claims: α is lower at night
//! (less activity regardless of latency) and stays flat across the latency
//! bins — which is what justifies averaging α over bins in §2.4.1.

use autosens_core::report::{f3, series_csv, text_table};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};

use super::{Artifact, ShapeCheck};
use crate::dataset::Dataset;

/// Regenerate Figure 8.
pub fn generate(data: &Dataset) -> Artifact {
    let base = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);
    let est = data
        .engine
        .alpha_by_period(&data.log, &base)
        .expect("business SelectMail slice fits");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for g in &est.groups {
        rows.push(vec![
            g.label.clone(),
            g.n_actions.to_string(),
            g.alpha.map(f3).unwrap_or_else(|| "-".into()),
            g.per_bin.len().to_string(),
        ]);
        csv.push((
            format!("fig8_{}", g.label.replace('-', "_")),
            series_csv(("latency_ms", "alpha"), &g.per_bin),
        ));
    }
    let mut rendered = String::from(
        "Figure 8 — time-based activity factor by period\n\
         (business SelectMail; 8am-2pm as reference)\n\n",
    );
    rendered.push_str(&text_table(
        &["period", "n actions", "alpha", "supported bins"],
        &rows,
    ));
    // Ground truth for comparison.
    rendered.push_str("\nplanted activity-profile alpha (weekday truth): ");
    for p in autosens_telemetry::time::DayPeriod::all() {
        rendered.push_str(&format!(
            "{}={:.3} ",
            p.label(),
            data.truth.true_alpha(UserClass::Business, p)
        ));
    }
    rendered.push('\n');

    // Checks.
    let alpha = |i: usize| est.groups[i].alpha;
    let morning = alpha(0);
    let night_evening: Vec<f64> = [alpha(2), alpha(3)].into_iter().flatten().collect();
    // Flatness across bins: coefficient of variation of per-bin alpha over
    // the well-supported range for the afternoon period (the one with most
    // overlap with the reference).
    let flat_detail;
    let flat_pass;
    {
        let per_bin = &est.groups[1].per_bin;
        if per_bin.len() >= 10 {
            let vals: Vec<f64> = per_bin.iter().map(|(_, a)| *a).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let sd = (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                / vals.len() as f64)
                .sqrt();
            let cv = sd / mean;
            flat_pass = cv < 0.35;
            flat_detail = format!("CV of per-bin alpha (2pm-8pm) = {cv:.3}");
        } else {
            flat_pass = false;
            flat_detail = "too few supported bins".into();
        }
    }
    let truth_night = data.truth.true_alpha(
        UserClass::Business,
        autosens_telemetry::time::DayPeriod::Night2to8,
    );
    let checks = vec![
        ShapeCheck::new(
            "reference period alpha = 1",
            morning.map(|a| (a - 1.0).abs() < 1e-9).unwrap_or(false),
            format!("{morning:?}"),
        ),
        ShapeCheck::new(
            "nighttime alpha well below daytime",
            !night_evening.is_empty() && night_evening.iter().all(|&a| a < 0.5),
            format!("{night_evening:?}"),
        ),
        ShapeCheck::new(
            "alpha roughly flat across latency bins",
            flat_pass,
            flat_detail,
        ),
        ShapeCheck::new(
            "estimated night alpha within 2x of the planted truth",
            alpha(3)
                .map(|a| a / truth_night < 2.0 && truth_night / a < 2.0)
                .unwrap_or(false),
            format!("measured {:?} vs planted {truth_night:.3}", alpha(3)),
        ),
    ];

    Artifact {
        id: "fig8",
        title: "Activity factor by period",
        rendered,
        csv,
        checks,
    }
}
