//! Figure 6: conditioning to speed — consumer users grouped into quartiles
//! by per-user median latency. The paper finds sensitivity decreases
//! monotonically from Q1 (fastest users) to Q4 (slowest users).

use autosens_core::report::{f3, series_csv, text_table};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};
use autosens_telemetry::users::LatencyQuartiles;

use super::{Artifact, ShapeCheck};
use crate::dataset::Dataset;

/// Regenerate Figure 6.
pub fn generate(data: &Dataset) -> Artifact {
    let base = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Consumer);
    let (quartiles, results) = data
        .engine
        .by_latency_quartile(&data.log, &base, 20)
        .expect("enough consumer users");

    let grid = [600.0, 900.0, 1200.0];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut prefs: Vec<Option<autosens_core::NormalizedPreference>> = vec![None; 4];
    for (q, result) in &results {
        match result {
            Ok(report) => {
                let mut row = vec![
                    LatencyQuartiles::label(*q).to_string(),
                    quartiles.groups[*q].len().to_string(),
                    report.n_actions.to_string(),
                ];
                for l in grid {
                    row.push(
                        report
                            .preference
                            .at(l)
                            .map(f3)
                            .unwrap_or_else(|| "-".into()),
                    );
                }
                rows.push(row);
                csv.push((
                    format!("fig6_q{}", q + 1),
                    series_csv(("latency_ms", "preference"), &report.preference.series()),
                ));
                prefs[*q] = Some(report.preference.clone());
            }
            Err(e) => rows.push(vec![
                LatencyQuartiles::label(*q).to_string(),
                "-".into(),
                "-".into(),
                format!("error: {e}"),
                "-".into(),
                "-".into(),
            ]),
        }
    }

    let mut rendered = String::from(
        "Figure 6 — preference by per-user median-latency quartile\n\
         (consumer SelectMail; Q1 = fastest users; reference 300 ms)\n\n",
    );
    rendered.push_str(&format!(
        "quartile cuts: {:.0} / {:.0} / {:.0} ms\n\n",
        quartiles.cuts[0], quartiles.cuts[1], quartiles.cuts[2]
    ));
    rendered.push_str(&text_table(
        &[
            "quartile", "users", "actions", "@600ms", "@900ms", "@1200ms",
        ],
        &rows,
    ));

    // Checks: Q1 most sensitive, Q4 least; the full ordering should hold at
    // a mid-range probe, and the extremes must separate clearly.
    let probe = 900.0;
    let at = |q: usize| prefs[q].as_ref().and_then(|p| p.at(probe));
    let all: Vec<Option<f64>> = (0..4).map(at).collect();
    let monotone = all.windows(2).all(|w| match (w[0], w[1]) {
        (Some(a), Some(b)) => a <= b + 0.03, // small tolerance for noise
        _ => false,
    });
    let extremes = match (all[0], all[3]) {
        (Some(q1), Some(q4)) => q1 < q4,
        _ => false,
    };
    let checks = vec![
        ShapeCheck::new(
            "sensitivity decreases Q1 -> Q4 (within noise) @900ms",
            monotone,
            format!("{all:?}"),
        ),
        ShapeCheck::new(
            "Q1 clearly more sensitive than Q4 @900ms",
            extremes,
            format!("Q1 {:?} vs Q4 {:?}", all[0], all[3]),
        ),
        ShapeCheck::new(
            "quartile cuts are increasing",
            quartiles.cuts[0] < quartiles.cuts[1] && quartiles.cuts[1] < quartiles.cuts[2],
            format!("{:?}", quartiles.cuts),
        ),
    ];

    Artifact {
        id: "fig6",
        title: "Conditioning to speed (latency quartiles)",
        rendered,
        csv,
        checks,
    }
}
