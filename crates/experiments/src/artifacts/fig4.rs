//! Figure 4: normalized latency preference per action type, for business
//! users, reference 300 ms. The paper's headline shape claims: SelectMail
//! drops most sharply, then SwitchFolder; Search is much shallower (users
//! tolerate search latency); ComposeSend (asynchronous UI) is nearly flat.

use autosens_core::pipeline::AnalysisReport;
use autosens_core::report::{f3, series_csv, text_table};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};

use super::{Artifact, ShapeCheck};
use crate::dataset::Dataset;

/// Regenerate Figure 4.
pub fn generate(data: &Dataset) -> Artifact {
    let base = Slice::all().class(UserClass::Business);
    let results = data.engine.by_action_type(&data.log, &base);

    let grid = [500.0, 1000.0, 1500.0, 2000.0];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut reports: Vec<(ActionType, Option<AnalysisReport>)> = Vec::new();
    for (action, result) in results {
        match result {
            Ok(report) => {
                let mut row = vec![format!("{action:?}"), report.n_actions.to_string()];
                for l in grid {
                    row.push(
                        report
                            .preference
                            .at(l)
                            .map(f3)
                            .unwrap_or_else(|| "-".into()),
                    );
                }
                rows.push(row);
                csv.push((
                    format!("fig4_{}", action.name().to_lowercase()),
                    series_csv(("latency_ms", "preference"), &report.preference.series()),
                ));
                reports.push((action, Some(report)));
            }
            Err(e) => {
                rows.push(vec![
                    format!("{action:?}"),
                    "-".into(),
                    format!("error: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                reports.push((action, None));
            }
        }
    }

    let mut rendered = String::from(
        "Figure 4 — normalized latency preference by action type\n\
         (business users, reference 300 ms)\n\n",
    );
    rendered.push_str(&text_table(
        &["action", "n", "@500ms", "@1000ms", "@1500ms", "@2000ms"],
        &rows,
    ));

    let at = |a: ActionType, l: f64| -> Option<f64> {
        reports
            .iter()
            .find(|(x, _)| *x == a)
            .and_then(|(_, r)| r.as_ref())
            .and_then(|r| r.preference.at(l))
    };

    let probe = 1200.0;
    let sm = at(ActionType::SelectMail, probe);
    let sf = at(ActionType::SwitchFolder, probe);
    let se = at(ActionType::Search, probe);
    let cs = at(ActionType::ComposeSend, probe);
    let pair = |a: Option<f64>, b: Option<f64>| -> (bool, String) {
        match (a, b) {
            (Some(a), Some(b)) => (a < b, format!("{a:.3} < {b:.3}")),
            _ => (false, "missing".into()),
        }
    };
    let (p1, d1) = pair(sm, se);
    let (p2, d2) = pair(sf, se);
    let (p3, d3) = pair(se, cs);
    let sm500 = at(ActionType::SelectMail, 500.0);
    let sm1000 = at(ActionType::SelectMail, 1000.0);
    let sm1500 = at(ActionType::SelectMail, 1500.0);
    let checks = vec![
        ShapeCheck::new("SelectMail steeper than Search @1200ms", p1, d1),
        ShapeCheck::new("SwitchFolder steeper than Search @1200ms", p2, d2),
        ShapeCheck::new("Search steeper than ComposeSend @1200ms", p3, d3),
        ShapeCheck::new(
            "ComposeSend nearly flat (>= 0.85 @1200ms)",
            cs.map(|v| v >= 0.85).unwrap_or(false),
            format!("{cs:?}"),
        ),
        ShapeCheck::new(
            "SelectMail near paper's 0.88 / 0.68 / 0.61 @ 500/1000/1500 ms",
            match (sm500, sm1000, sm1500) {
                (Some(a), Some(b), Some(c)) => {
                    (a - 0.88).abs() < 0.08 && (b - 0.68).abs() < 0.08 && (c - 0.61).abs() < 0.10
                }
                _ => false,
            },
            format!("{sm500:?} / {sm1000:?} / {sm1500:?}"),
        ),
        ShapeCheck::new(
            "SelectMail recovery tracks planted truth (MAE < 0.08 on 400-1500 ms)",
            {
                let mut err = 0.0;
                let mut n = 0;
                for l in (400..=1500).step_by(100) {
                    if let Some(m) = at(ActionType::SelectMail, l as f64) {
                        let t = data.truth.normalized_preference(
                            ActionType::SelectMail,
                            UserClass::Business,
                            l as f64,
                            300.0,
                        );
                        err += (m - t).abs();
                        n += 1;
                    }
                }
                n >= 8 && (err / n as f64) < 0.08
            },
            "mean |measured - planted|",
        ),
    ];

    Artifact {
        id: "fig4",
        title: "Preference by action type",
        rendered,
        csv,
        checks,
    }
}
