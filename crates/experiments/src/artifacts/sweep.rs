//! Beyond the paper: a sensitivity sweep of recovery quality.
//!
//! DESIGN.md §8 derives two conditions for faithful recovery: the shared
//! congestion component must dominate the idiosyncratic latency variance
//! (else the curve's latency axis shrinks toward flat), and the analysis
//! span must contain many independent congestion excursions (else tail
//! estimates are noise). This artifact measures both effects directly:
//! recovery MAE versus (a) the idiosyncratic/shared variance ratio and
//! (b) the number of simulated days.

use autosens_core::report::text_table;
use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_sim::config::{Scenario, SimConfig};
use autosens_sim::generate;
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};

use super::{Artifact, ShapeCheck};

fn recovery_mae(cfg: &SimConfig) -> Option<f64> {
    let (log, truth) = generate(cfg).ok()?;
    let slice = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);
    let report = AnalysisPlan::new(AutoSensConfig::default())
        .run(PlanInput::slice(&log, &slice), RunOptions::default())
        .ok()?
        .report;
    let mut err = 0.0;
    let mut n = 0;
    for l in (400..=1200).step_by(100) {
        if let Some(m) = report.preference.at(l as f64) {
            let t = truth.normalized_preference(
                ActionType::SelectMail,
                UserClass::Business,
                l as f64,
                300.0,
            );
            err += (m - t).abs();
            n += 1;
        }
    }
    if n >= 6 {
        Some(err / n as f64)
    } else {
        None
    }
}

/// Run the sweep (expensive: regenerates several datasets).
pub fn generate_sweep() -> Artifact {
    let base = {
        let mut c = SimConfig::scenario(Scenario::Default);
        c.n_business = 300;
        c.n_consumer = 300;
        c
    };

    // (a) idiosyncratic spread sweep at fixed shared spread (0.5).
    let mut noise_rows = Vec::new();
    let mut maes = Vec::new();
    for idio in [0.1f64, 0.3, 0.5, 0.8] {
        let mut cfg = base.clone();
        // Split the idiosyncratic budget between user and per-action noise.
        cfg.network_sigma = idio / f64::sqrt(2.0);
        cfg.latency_noise_sigma = idio / f64::sqrt(2.0);
        let mae = recovery_mae(&cfg);
        maes.push((idio, mae));
        let shrink = 0.25 / (0.25 + idio * idio);
        noise_rows.push(vec![
            format!("{idio:.1}"),
            format!("{shrink:.2}"),
            mae.map(|m| format!("{m:.4}")).unwrap_or_else(|| "-".into()),
        ]);
    }

    // (b) span sweep at the default spreads.
    let mut span_rows = Vec::new();
    let mut span_maes = Vec::new();
    for days in [7u32, 14, 28, 59] {
        let mut cfg = base.clone();
        cfg.days = days;
        let mae = recovery_mae(&cfg);
        span_maes.push((days, mae));
        span_rows.push(vec![
            days.to_string(),
            mae.map(|m| format!("{m:.4}")).unwrap_or_else(|| "-".into()),
        ]);
    }

    let mut rendered = String::from(
        "Sweep — recovery MAE vs idiosyncratic variance and data span\n\
         (business SelectMail vs planted truth, probes 400-1200 ms)\n\n\
         (a) idiosyncratic log-spread at shared spread 0.5:\n\n",
    );
    rendered.push_str(&text_table(
        &["idio sigma", "predicted axis shrink", "recovery MAE"],
        &noise_rows,
    ));
    rendered.push_str("\n(b) simulated days at default spreads:\n\n");
    rendered.push_str(&text_table(&["days", "recovery MAE"], &span_rows));

    let csv = vec![
        ("sweep_idiosyncratic".to_string(), {
            let mut s = String::from("idio_sigma,mae\n");
            for (x, m) in &maes {
                s.push_str(&format!(
                    "{x},{}\n",
                    m.map(|m| m.to_string()).unwrap_or_default()
                ));
            }
            s
        }),
        ("sweep_days".to_string(), {
            let mut s = String::from("days,mae\n");
            for (d, m) in &span_maes {
                s.push_str(&format!(
                    "{d},{}\n",
                    m.map(|m| m.to_string()).unwrap_or_default()
                ));
            }
            s
        }),
    ];

    // Checks: low idio beats high idio; long span beats short span.
    let idio_ok = match (
        maes.first().and_then(|x| x.1),
        maes.last().and_then(|x| x.1),
    ) {
        (Some(lo), Some(hi)) => lo < hi,
        _ => false,
    };
    let span_ok = match (
        span_maes.first().and_then(|x| x.1),
        span_maes.last().and_then(|x| x.1),
    ) {
        (Some(short), Some(long)) => long < short,
        _ => false,
    };
    let checks = vec![
        ShapeCheck::new(
            "recovery degrades as idiosyncratic variance grows",
            idio_ok,
            format!("{maes:?}"),
        ),
        ShapeCheck::new(
            "recovery improves with longer spans",
            span_ok,
            format!("{span_maes:?}"),
        ),
    ];

    Artifact {
        id: "sweep",
        title: "Recovery sensitivity sweep (beyond the paper)",
        rendered,
        csv,
        checks,
    }
}
