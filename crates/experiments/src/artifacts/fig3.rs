//! Figure 3: the methodology overview — (b) the biased `B` and unbiased `U`
//! PDFs, and (c) the raw `B/U` ratio alongside the smoothed preference.
//! (Panel (a) is a scatter illustration of the nearest-sample draws; its
//! CSV equivalent here is the first 200 unbiased draws' timestamps.)

use autosens_core::report::{f3, series_csv, text_table};
use autosens_core::{PlanInput, RunOptions};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};

use super::{Artifact, ShapeCheck};
use crate::dataset::Dataset;

/// Regenerate Figure 3 on the business SelectMail slice.
pub fn generate(data: &Dataset) -> Artifact {
    let slice = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);
    let report = data
        .engine
        .plan()
        .run(PlanInput::slice(&data.log, &slice), RunOptions::default())
        .expect("business SelectMail slice fits")
        .report;

    let b_pdf = report.biased.to_pdf().expect("non-empty");
    let u_pdf = report.unbiased.to_pdf().expect("non-empty");

    // Text: densities at a few latencies plus the ratio and smoothed curve.
    let grid = [200.0, 300.0, 500.0, 800.0, 1200.0, 1600.0];
    let mut rows = Vec::new();
    for &l in &grid {
        rows.push(vec![
            format!("{l:.0}"),
            b_pdf
                .density_at(l)
                .map(|d| format!("{d:.6}"))
                .unwrap_or_else(|| "-".into()),
            u_pdf
                .density_at(l)
                .map(|d| format!("{d:.6}"))
                .unwrap_or_else(|| "-".into()),
            report
                .preference
                .raw_at(l)
                .map(f3)
                .unwrap_or_else(|| "-".into()),
            report
                .preference
                .at(l)
                .map(f3)
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    let mut rendered = String::from(
        "Figure 3 — biased (B) and unbiased (U) PDFs and the B/U preference\n\
         (business SelectMail; preference normalized at 300 ms)\n\n",
    );
    rendered.push_str(&text_table(
        &["latency", "B density", "U density", "raw B/U", "smoothed"],
        &rows,
    ));

    // CSVs: full PDFs and both ratio series.
    let binner = b_pdf.binner().clone();
    let pdf_series = |pdf: &autosens_stats::Pdf| -> Vec<(f64, f64)> {
        (0..binner.n_bins())
            .map(|i| (binner.center(i), pdf.density(i)))
            .collect()
    };
    let csv = vec![
        (
            "fig3b_biased_pdf".to_string(),
            series_csv(("latency_ms", "density"), &pdf_series(&b_pdf)),
        ),
        (
            "fig3b_unbiased_pdf".to_string(),
            series_csv(("latency_ms", "density"), &pdf_series(&u_pdf)),
        ),
        (
            "fig3c_raw_ratio".to_string(),
            series_csv(("latency_ms", "ratio"), &report.preference.raw_series()),
        ),
        (
            "fig3c_smoothed".to_string(),
            series_csv(("latency_ms", "preference"), &report.preference.series()),
        ),
    ];

    // Checks: B shifted left of U (users favor fast periods) and the
    // smoothed curve is far less jagged than the raw ratio.
    let b_mean = b_pdf.mean();
    let u_mean = u_pdf.mean();
    let raw = report.preference.raw_series();
    let smooth = report.preference.series();
    let jag = |s: &[(f64, f64)]| -> f64 {
        if s.len() < 2 {
            return 0.0;
        }
        s.windows(2).map(|w| (w[1].1 - w[0].1).abs()).sum::<f64>() / (s.len() - 1) as f64
    };
    let checks = vec![
        ShapeCheck::new(
            "biased PDF sits left of unbiased PDF (mean latency lower)",
            b_mean < u_mean,
            format!("B mean {b_mean:.0} ms vs U mean {u_mean:.0} ms"),
        ),
        ShapeCheck::new(
            "smoothing strongly reduces bin-to-bin jitter",
            jag(&smooth) < 0.5 * jag(&raw),
            format!("jitter {:.4} -> {:.4}", jag(&raw), jag(&smooth)),
        ),
        ShapeCheck::new(
            "preference is 1 at the reference latency",
            report
                .preference
                .at(300.0)
                .map(|v| (v - 1.0).abs() < 1e-9)
                .unwrap_or(false),
            format!("{:?}", report.preference.at(300.0)),
        ),
    ];

    Artifact {
        id: "fig3",
        title: "B and U PDFs; raw and smoothed B/U",
        rendered,
        csv,
        checks,
    }
}
