//! §3.5: latency preference vs. latency bottleneck. If high latency merely
//! throttled users mechanically, activity would halve with each doubling of
//! latency; the observed drop factors are far gentler, and differ across
//! action types and user classes — evidence of genuine preference.

use autosens_core::bottleneck::bottleneck_report;
use autosens_core::report::{f3, text_table};
use autosens_core::{PlanInput, RunOptions};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};

use super::{Artifact, ShapeCheck};
use crate::dataset::Dataset;

/// Regenerate the §3.5 analysis from the Figure 4 SelectMail curve.
pub fn generate(data: &Dataset) -> Artifact {
    let slice = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);
    let report = data
        .engine
        .plan()
        .run(PlanInput::slice(&data.log, &slice), RunOptions::default())
        .expect("business SelectMail slice fits")
        .report;
    let bn = bottleneck_report(&report.preference, 500.0);

    let mut rows = Vec::new();
    for (lo, hi, f) in &bn.doublings {
        rows.push(vec![
            format!("{lo:.0} -> {hi:.0} ms"),
            f3(*f),
            f3(bn.bottleneck_factor),
        ]);
    }
    let mut rendered = String::from(
        "Section 3.5 — preference vs bottleneck (business SelectMail)\n\
         (a pure bottleneck halves activity per latency doubling)\n\n",
    );
    rendered.push_str(&text_table(
        &["doubling", "observed drop factor", "bottleneck prediction"],
        &rows,
    ));
    rendered.push_str(&format!(
        "\npreference dominates: {}\n",
        bn.preference_dominates()
    ));

    let csv = vec![("bottleneck".to_string(), {
        let mut s = String::from("from_ms,to_ms,drop_factor\n");
        for (lo, hi, f) in &bn.doublings {
            s.push_str(&format!("{lo},{hi},{f}\n"));
        }
        s
    })];

    let first = bn.doublings.first().map(|&(_, _, f)| f);
    let checks = vec![
        ShapeCheck::new(
            "at least one full doubling fits within the curve span",
            !bn.doublings.is_empty(),
            format!(
                "{} doubling(s); span up to {:.0} ms",
                bn.doublings.len(),
                report.preference.span_ms().1
            ),
        ),
        ShapeCheck::new(
            "500 -> 1000 ms drop factor near the paper's ~1.3",
            first.map(|f| (f - 1.3).abs() < 0.15).unwrap_or(false),
            format!("{first:?}"),
        ),
        ShapeCheck::new(
            "all drop factors well below the bottleneck factor 2",
            bn.preference_dominates(),
            format!("{:?}", bn.doublings),
        ),
    ];

    Artifact {
        id: "bottleneck",
        title: "Preference vs bottleneck (Section 3.5)",
        rendered,
        csv,
        checks,
    }
}
