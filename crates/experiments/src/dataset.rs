//! Shared dataset setup for the experiment regenerators.

use autosens_core::{AutoSens, AutoSensConfig};
use autosens_sim::{generate, generate_with_threads, GroundTruth, Scenario, SimConfig};
use autosens_telemetry::TelemetryLog;

/// How much data to generate for the artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The full two-month scenario used for the reported reproduction.
    Full,
    /// The two-week smoke scenario, for benches and quick runs.
    Bench,
}

/// A generated dataset plus the analysis engine, shared by all artifacts.
pub struct Dataset {
    /// The telemetry log.
    pub log: TelemetryLog,
    /// The simulator's ground truth for this log.
    pub truth: GroundTruth,
    /// The AutoSens engine with the paper's configuration.
    pub engine: AutoSens,
}

impl Dataset {
    /// Generate a dataset at the given scale.
    pub fn load(scale: Scale) -> Dataset {
        Dataset::load_with_threads(scale, 0)
    }

    /// Generate a dataset at the given scale with an explicit worker count
    /// (0 = auto). Generation and every pipeline stage use the same count.
    pub fn load_with_threads(scale: Scale, threads: usize) -> Dataset {
        let scenario = match scale {
            Scale::Full => Scenario::Default,
            Scale::Bench => Scenario::Smoke,
        };
        let cfg = SimConfig::scenario(scenario);
        let (log, truth) =
            generate_with_threads(&cfg, threads).expect("preset scenarios are valid");
        Dataset {
            log,
            truth,
            engine: AutoSens::new(AutoSensConfig {
                threads,
                ..AutoSensConfig::default()
            }),
        }
    }

    /// Generate from an explicit simulator configuration.
    pub fn from_config(cfg: &SimConfig, analysis: AutoSensConfig) -> Result<Dataset, String> {
        let (log, truth) = generate(cfg)?;
        Ok(Dataset {
            log,
            truth,
            engine: AutoSens::new(analysis),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scale_loads() {
        let d = Dataset::load(Scale::Bench);
        assert!(d.log.len() > 10_000);
        assert!(!d.truth.population().is_empty());
    }
}
