//! Regenerators for every table and figure in the AutoSens paper's
//! evaluation, runnable via the `autosens-experiments` binary and reused by
//! the criterion benches and workspace integration tests.
//!
//! Each artifact module produces an [`artifacts::Artifact`]: the printed
//! rows/series the paper reports, CSV payloads for plotting, and a list of
//! *shape checks* — the qualitative claims the paper makes about that
//! artifact (orderings, monotonicity, flatness), evaluated against this
//! run's measurements and, where applicable, against the simulator's
//! planted ground truth.

pub mod artifacts;
pub mod dataset;

pub use artifacts::{Artifact, ShapeCheck};
pub use dataset::Dataset;
