//! `autosens-experiments` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! autosens-experiments all               # every artifact, full scale
//! autosens-experiments fig4              # one artifact
//! autosens-experiments fig4 --bench      # smaller (smoke) dataset
//! autosens-experiments all --threads 4   # explicit worker count (0 = auto)
//! autosens-experiments list              # artifact ids
//! ```
//!
//! Each run prints the artifact's rows/series plus its shape checks, and
//! writes CSV payloads under `results/`.

use std::io::Write;
use std::path::Path;

use autosens_experiments::artifacts;
use autosens_experiments::dataset::{Dataset, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.iter().any(|a| a == "--bench");
    let threads = match args.iter().position(|a| a == "--threads") {
        Some(i) => match args.get(i + 1).map(|s| s.parse::<usize>()) {
            Some(Ok(n)) => n,
            _ => {
                eprintln!("--threads requires a non-negative integer");
                std::process::exit(2);
            }
        },
        None => 0,
    };
    let mut skip = false;
    let targets: Vec<&String> = args
        .iter()
        .filter(|a| {
            if skip {
                skip = false;
                return false;
            }
            if a.as_str() == "--threads" {
                skip = true;
            }
            !a.starts_with("--")
        })
        .collect();

    let target = match targets.first() {
        Some(t) => t.as_str(),
        None => {
            eprintln!(
                "usage: autosens-experiments <all|list|{}> [--bench] [--threads N]",
                artifacts::ids().join("|")
            );
            std::process::exit(2);
        }
    };

    if target == "list" {
        for id in artifacts::ids() {
            println!("{id}");
        }
        return;
    }

    let scale = if bench { Scale::Bench } else { Scale::Full };
    eprintln!("loading dataset ({scale:?})...");
    let t0 = std::time::Instant::now();
    let data = Dataset::load_with_threads(scale, threads);
    eprintln!(
        "generated {} records in {:.1?}\n",
        data.log.len(),
        t0.elapsed()
    );

    let selected: Vec<artifacts::Artifact> = if target == "all" {
        artifacts::all(&data)
    } else {
        match artifacts::by_id(&data, target) {
            Some(a) => vec![a],
            None => {
                eprintln!("unknown artifact {target:?}; try `list`");
                std::process::exit(2);
            }
        }
    };

    let results_dir = Path::new("results");
    std::fs::create_dir_all(results_dir).expect("create results/");

    let mut failures = 0;
    for artifact in &selected {
        println!("================================================================");
        println!("{} — {}\n", artifact.id, artifact.title);
        println!("{}", artifact.rendered);
        println!("shape checks:");
        print!("{}", artifact.render_checks());
        if !artifact.all_pass() {
            failures += 1;
        }
        for (stem, body) in &artifact.csv {
            let path = results_dir.join(format!("{stem}.csv"));
            let mut f = std::fs::File::create(&path).expect("create CSV");
            f.write_all(body.as_bytes()).expect("write CSV");
            println!("  wrote {}", path.display());
        }
        println!();
    }

    println!("================================================================");
    println!(
        "{} artifact(s), {} with failing checks",
        selected.len(),
        failures
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
