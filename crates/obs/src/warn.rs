//! Verbosity-gated operator messages.
//!
//! The CLI used to scatter bare `eprintln!` calls; this module centralizes
//! them so (1) machine-readable stdout is never polluted — everything here
//! goes to stderr, (2) `--quiet` can silence them, and (3) every warning is
//! counted in the global metrics registry
//! (`autosens_obs_warnings_total`), making warning volume observable.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::metrics::MetricsRegistry;

/// How chatty stderr should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Warnings and progress are suppressed (errors still print).
    Quiet = 0,
    /// Warnings and progress print (the default).
    Normal = 1,
    /// Additionally print diagnostic detail.
    Verbose = 2,
}

static VERBOSITY: AtomicU8 = AtomicU8::new(Verbosity::Normal as u8);

/// Set the process-wide verbosity.
pub fn set_verbosity(v: Verbosity) {
    VERBOSITY.store(v as u8, Ordering::Relaxed);
}

/// The process-wide verbosity.
pub fn verbosity() -> Verbosity {
    match VERBOSITY.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        1 => Verbosity::Normal,
        _ => Verbosity::Verbose,
    }
}

/// Emit a warning to stderr (unless quiet) and count it. Prefer the
/// [`crate::warn!`] macro.
pub fn emit_warning(args: std::fmt::Arguments<'_>) {
    MetricsRegistry::global()
        .counter("autosens_obs_warnings_total")
        .inc();
    if verbosity() >= Verbosity::Normal {
        eprintln!("warning: {args}");
    }
}

/// Emit a progress/info line to stderr (unless quiet). Prefer the
/// [`crate::info!`] macro.
pub fn emit_info(args: std::fmt::Arguments<'_>) {
    if verbosity() >= Verbosity::Normal {
        eprintln!("{args}");
    }
}

/// Emit a diagnostic line to stderr (verbose runs only). Prefer the
/// [`crate::debug!`] macro.
pub fn emit_debug(args: std::fmt::Arguments<'_>) {
    if verbosity() >= Verbosity::Verbose {
        eprintln!("debug: {args}");
    }
}

/// Print `warning: <formatted message>` to stderr (respecting verbosity)
/// and bump `autosens_obs_warnings_total`.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::warn::emit_warning(format_args!($($arg)*))
    };
}

/// Print a progress line to stderr, suppressed by `--quiet`.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::warn::emit_info(format_args!($($arg)*))
    };
}

/// Print a diagnostic line to stderr, shown only with `-v`.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::warn::emit_debug(format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warnings_are_counted_even_when_quiet() {
        let counter = MetricsRegistry::global().counter("autosens_obs_warnings_total");
        let before = counter.get();
        let saved = verbosity();
        set_verbosity(Verbosity::Quiet);
        crate::warn!("something {} happened", "odd");
        set_verbosity(saved);
        assert_eq!(counter.get(), before + 1);
    }

    #[test]
    fn verbosity_orders() {
        assert!(Verbosity::Quiet < Verbosity::Normal);
        assert!(Verbosity::Normal < Verbosity::Verbose);
    }
}
