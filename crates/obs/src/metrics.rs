//! The metrics registry: named monotonic counters, gauges, and fixed-bucket
//! histograms, updated lock-free from any thread and exported as a
//! [`MetricsSnapshot`] (JSON via serde, or Prometheus text exposition
//! format).
//!
//! Naming convention: `autosens_<crate>_<name>`, lower snake case, with a
//! `_total` suffix on monotonic counters — e.g.
//! `autosens_core_records_read_total`. Histogram buckets reuse
//! [`autosens_stats::binning::Binner`], so pipeline code and its metrics
//! agree about bin edges.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use autosens_stats::binning::Binner;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A monotonic counter handle (cheap to clone, lock-free to update).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a settable `f64` (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistInner {
    binner: Binner,
    buckets: Vec<AtomicU64>,
    /// Samples above the last bin edge (the `+Inf` bucket's exclusive part).
    overflow: AtomicU64,
    count: AtomicU64,
    /// Sum of observed values, as f64 bits updated by CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram handle. Buckets come from a
/// [`Binner`]; samples below the range land in the first bucket, samples
/// above it in the implicit `+Inf` bucket.
#[derive(Debug, Clone)]
pub struct HistogramMetric(Arc<HistInner>);

impl HistogramMetric {
    /// Record one observation. NaN observations are ignored (a NaN would
    /// poison the sum and match no bucket).
    pub fn observe(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        let inner = &self.0;
        match inner.binner.index_of(value.max(inner.binner.lo())) {
            Some(i) => inner.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => inner.overflow.fetch_add(1, Ordering::Relaxed),
        };
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut old = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + value).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                old,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => old = actual,
            }
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, HistogramMetric>>,
}

/// A named-metric registry. Cloning is cheap (an `Arc` handle); handles
/// returned by the getters stay valid for the registry's lifetime.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

fn assert_metric_name(name: &str) {
    debug_assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
        "metric names are lower snake case (autosens_<crate>_<name>), got {name:?}"
    );
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry used by instrumentation in crates that
    /// have no handle to thread (telemetry codecs, the simulator).
    pub fn global() -> &'static MetricsRegistry {
        use std::sync::OnceLock;
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Get or create a monotonic counter.
    pub fn counter(&self, name: &str) -> Counter {
        assert_metric_name(name);
        self.inner
            .counters
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Get or create a gauge (initial value 0.0).
    pub fn gauge(&self, name: &str) -> Gauge {
        assert_metric_name(name);
        self.inner
            .gauges
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
            .clone()
    }

    /// Get or create a fixed-bucket histogram. The binner is only used on
    /// first creation; later calls return the existing histogram unchanged.
    pub fn histogram(&self, name: &str, binner: &Binner) -> HistogramMetric {
        assert_metric_name(name);
        self.inner
            .histograms
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| {
                let n = binner.n_bins();
                HistogramMetric(Arc::new(HistInner {
                    binner: binner.clone(),
                    buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
                    overflow: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                }))
            })
            .clone()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .iter()
            .map(|(name, c)| CounterSample {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .iter()
            .map(|(name, g)| GaugeSample {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .iter()
            .map(|(name, h)| {
                let inner = &h.0;
                let mut cumulative = 0u64;
                let buckets = inner
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, b)| {
                        cumulative += b.load(Ordering::Relaxed);
                        HistogramBucket {
                            le: inner.binner.lo() + inner.binner.width() * (i as f64 + 1.0),
                            count: cumulative,
                        }
                    })
                    .collect();
                HistogramSample {
                    name: name.clone(),
                    buckets,
                    sum: h.sum(),
                    count: h.count(),
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Gauge value at snapshot time.
    pub value: f64,
}

/// One histogram bucket: cumulative count of observations `<= le`
/// (Prometheus semantics). The implicit `+Inf` bucket is the sample's
/// total `count`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Upper bucket edge (inclusive).
    pub le: f64,
    /// Cumulative observation count up to this edge.
    pub count: u64,
}

/// One histogram in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Cumulative buckets, ascending by edge.
    pub buckets: Vec<HistogramBucket>,
    /// Sum of all observations.
    pub sum: f64,
    /// Total observation count (the `+Inf` bucket).
    pub count: u64,
}

/// A point-in-time export of a [`MetricsRegistry`], serializable as JSON
/// and renderable as Prometheus text exposition format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Error when any exported value is non-finite (a NaN or ±∞ in a
    /// metrics artifact means the instrumentation itself is broken).
    pub fn validate_finite(&self) -> Result<(), String> {
        for g in &self.gauges {
            if !g.value.is_finite() {
                return Err(format!("gauge {} is non-finite ({})", g.name, g.value));
            }
        }
        for h in &self.histograms {
            if !h.sum.is_finite() {
                return Err(format!(
                    "histogram {} sum is non-finite ({})",
                    h.name, h.sum
                ));
            }
            for b in &h.buckets {
                if !b.le.is_finite() {
                    return Err(format!("histogram {} has non-finite bucket edge", h.name));
                }
            }
        }
        Ok(())
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Parse the JSON produced by [`MetricsSnapshot::to_json`].
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Render as Prometheus text exposition format (version 0.0.4).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            out.push_str(&format!(
                "# TYPE {} counter\n{} {}\n",
                c.name, c.name, c.value
            ));
        }
        for g in &self.gauges {
            out.push_str(&format!(
                "# TYPE {} gauge\n{} {}\n",
                g.name, g.name, g.value
            ));
        }
        for h in &self.histograms {
            out.push_str(&format!("# TYPE {} histogram\n", h.name));
            for b in &h.buckets {
                out.push_str(&format!(
                    "{}_bucket{{le=\"{}\"}} {}\n",
                    h.name, b.le, b.count
                ));
            }
            out.push_str(&format!(
                "{}_bucket{{le=\"+Inf\"}} {}\n{}_sum {}\n{}_count {}\n",
                h.name, h.count, h.name, h.sum, h.name, h.count
            ));
        }
        out
    }

    /// Parse the text produced by [`MetricsSnapshot::to_prometheus`] back
    /// into a snapshot (used by tests to prove the export is lossless; not
    /// a general Prometheus parser).
    pub fn from_prometheus(text: &str) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot::default();
        let mut kind_of: BTreeMap<String, String> = BTreeMap::new();
        let mut hists: BTreeMap<String, HistogramSample> = BTreeMap::new();
        let mut hist_order: Vec<String> = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            let at = |msg: &str| format!("prometheus line {}: {msg}", i + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest
                    .split_once(' ')
                    .ok_or_else(|| at("malformed TYPE comment"))?;
                kind_of.insert(name.to_string(), kind.to_string());
                if kind == "histogram" {
                    hist_order.push(name.to_string());
                    hists.insert(
                        name.to_string(),
                        HistogramSample {
                            name: name.to_string(),
                            buckets: Vec::new(),
                            sum: 0.0,
                            count: 0,
                        },
                    );
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| at("expected `name value`"))?;
            if let Some((name, label)) = key.split_once("_bucket{le=\"") {
                let hist = hists
                    .get_mut(name)
                    .ok_or_else(|| at("bucket before TYPE"))?;
                let edge = label
                    .strip_suffix("\"}")
                    .ok_or_else(|| at("malformed le label"))?;
                let count: u64 = value.parse().map_err(|_| at("bad bucket count"))?;
                if edge != "+Inf" {
                    let le: f64 = edge.parse().map_err(|_| at("bad bucket edge"))?;
                    hist.buckets.push(HistogramBucket { le, count });
                }
                continue;
            }
            if let Some(name) = key.strip_suffix("_sum") {
                if let Some(hist) = hists.get_mut(name) {
                    hist.sum = value.parse().map_err(|_| at("bad histogram sum"))?;
                    continue;
                }
            }
            if let Some(name) = key.strip_suffix("_count") {
                if let Some(hist) = hists.get_mut(name) {
                    hist.count = value.parse().map_err(|_| at("bad histogram count"))?;
                    continue;
                }
            }
            match kind_of.get(key).map(String::as_str) {
                Some("counter") => snap.counters.push(CounterSample {
                    name: key.to_string(),
                    value: value.parse().map_err(|_| at("bad counter value"))?,
                }),
                Some("gauge") => snap.gauges.push(GaugeSample {
                    name: key.to_string(),
                    value: value.parse().map_err(|_| at("bad gauge value"))?,
                }),
                _ => return Err(at(&format!("sample {key:?} before its TYPE"))),
            }
        }
        for name in hist_order {
            // Invariant: every name in hist_order was inserted above.
            snap.histograms.push(hists.remove(&name).expect("inserted"));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_stats::binning::OutOfRange;

    #[test]
    fn counters_and_gauges_register_once() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("autosens_test_hits_total");
        let b = reg.counter("autosens_test_hits_total");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        let g = reg.gauge("autosens_test_level");
        g.set(2.5);
        assert_eq!(reg.gauge("autosens_test_level").get(), 2.5);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_snapshots() {
        let reg = MetricsRegistry::new();
        let binner = Binner::new(0.0, 30.0, 10.0, OutOfRange::Discard).unwrap();
        let h = reg.histogram("autosens_test_latency_ms", &binner);
        for v in [5.0, 15.0, 15.0, 25.0, 99.0, -3.0] {
            h.observe(v);
        }
        h.observe(f64::NAN); // ignored
        let snap = reg.snapshot();
        let hist = &snap.histograms[0];
        assert_eq!(hist.count, 6);
        // Cumulative: <=10 holds 5.0 and the clamped-below -3.0; <=20 adds
        // the two 15.0s; <=30 adds 25.0; 99.0 only reaches +Inf (count).
        let counts: Vec<u64> = hist.buckets.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![2, 4, 5]);
        assert!((hist.sum - (5.0 + 15.0 + 15.0 + 25.0 + 99.0 - 3.0)).abs() < 1e-9);
    }

    #[test]
    fn json_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("autosens_test_a_total").add(7);
        reg.gauge("autosens_test_b").set(1.25);
        let binner = Binner::new(0.0, 20.0, 10.0, OutOfRange::Discard).unwrap();
        reg.histogram("autosens_test_c", &binner).observe(5.0);
        let snap = reg.snapshot();
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn validate_finite_catches_poisoned_gauges() {
        let reg = MetricsRegistry::new();
        reg.gauge("autosens_test_bad").set(f64::INFINITY);
        let err = reg.snapshot().validate_finite().unwrap_err();
        assert!(err.contains("autosens_test_bad"), "{err}");
    }
}
