//! The metrics registry: named monotonic counters, gauges, and fixed-bucket
//! histograms, updated lock-free from any thread and exported as a
//! [`MetricsSnapshot`] (JSON via serde, or Prometheus text exposition
//! format).
//!
//! Naming convention: `autosens_<crate>_<name>`, lower snake case, with a
//! `_total` suffix on monotonic counters — e.g.
//! `autosens_core_records_read_total`. Histogram buckets reuse
//! [`autosens_stats::binning::Binner`], so pipeline code and its metrics
//! agree about bin edges.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use autosens_stats::binning::Binner;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A monotonic counter handle (cheap to clone, lock-free to update).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a settable `f64` (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistInner {
    binner: Binner,
    buckets: Vec<AtomicU64>,
    /// Samples above the last bin edge (the `+Inf` bucket's exclusive part).
    overflow: AtomicU64,
    count: AtomicU64,
    /// Sum of observed values, as f64 bits updated by CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram handle. Buckets come from a
/// [`Binner`]; samples below the range land in the first bucket, samples
/// above it in the implicit `+Inf` bucket.
#[derive(Debug, Clone)]
pub struct HistogramMetric(Arc<HistInner>);

impl HistogramMetric {
    /// Record one observation. NaN observations are ignored (a NaN would
    /// poison the sum and match no bucket).
    pub fn observe(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        let inner = &self.0;
        match inner.binner.index_of(value.max(inner.binner.lo())) {
            Some(i) => inner.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => inner.overflow.fetch_add(1, Ordering::Relaxed),
        };
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut old = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + value).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                old,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => old = actual,
            }
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

/// One time series: a metric name plus its key-sorted label pairs.
/// Unlabeled metrics have an empty label list. Ordering is (name, labels),
/// so every series of one family is adjacent in the registry's sorted maps.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<SeriesKey, Counter>>,
    gauges: Mutex<BTreeMap<SeriesKey, Gauge>>,
    histograms: Mutex<BTreeMap<String, HistogramMetric>>,
}

/// A named-metric registry. Cloning is cheap (an `Arc` handle); handles
/// returned by the getters stay valid for the registry's lifetime.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

fn assert_metric_name(name: &str) {
    debug_assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
        "metric names are lower snake case (autosens_<crate>_<name>), got {name:?}"
    );
}

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    assert_metric_name(name);
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| {
            assert_metric_name(k);
            (k.to_string(), v.to_string())
        })
        .collect();
    labels.sort();
    labels.dedup_by(|a, b| a.0 == b.0);
    SeriesKey {
        name: name.to_string(),
        labels,
    }
}

/// Escape a label value for the Prometheus text exposition format:
/// backslash, double-quote, and newline must be backslash-escaped inside
/// the quoted value.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape_label_value`]. Errors on a dangling or unknown escape.
pub fn unescape_label_value(value: &str) -> Result<String, String> {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(c) => return Err(format!("unknown escape \\{c} in label value")),
            None => return Err("dangling backslash in label value".to_string()),
        }
    }
    Ok(out)
}

/// Render a label set as `{k="v",...}` with escaped values (empty string
/// for an empty set).
fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Parse the `k="v",...` body of a label set (no surrounding braces),
/// honoring escaped quotes/backslashes/newlines inside values. Returns the
/// pairs sorted by key (the canonical in-memory form).
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let (key, after_key) = rest
            .split_once("=\"")
            .ok_or_else(|| format!("malformed label in {body:?}"))?;
        // Find the closing unescaped quote.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in after_key.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in {body:?}"))?;
        labels.push((key.to_string(), unescape_label_value(&after_key[..end])?));
        rest = &after_key[end + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    labels.sort();
    Ok(labels)
}

/// A generated one-line description for `# HELP`: the humanized metric
/// name plus its kind. Deterministic, so exports are reproducible.
fn help_text(name: &str, kind: &str) -> String {
    format!("AutoSens {kind} `{}`.", name.replace('_', " "))
}

fn sorted_labels<'a>(labels: &[(&'a str, &'a str)]) -> Vec<(&'a str, &'a str)> {
    let mut want = labels.to_vec();
    want.sort();
    want
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((k, v), (wk, wv))| k == wk && v == wv)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry used by instrumentation in crates that
    /// have no handle to thread (telemetry codecs, the simulator).
    pub fn global() -> &'static MetricsRegistry {
        use std::sync::OnceLock;
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Get or create a monotonic counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_labeled(name, &[])
    }

    /// Get or create a monotonic counter carrying a label set. Label keys
    /// are snake case; label values are arbitrary strings (escaped on
    /// Prometheus export).
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.inner
            .counters
            .lock()
            .entry(series_key(name, labels))
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Get or create a gauge (initial value 0.0).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_labeled(name, &[])
    }

    /// Get or create a gauge carrying a label set (initial value 0.0).
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.inner
            .gauges
            .lock()
            .entry(series_key(name, labels))
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
            .clone()
    }

    /// Get or create a fixed-bucket histogram. The binner is only used on
    /// first creation; later calls return the existing histogram unchanged.
    pub fn histogram(&self, name: &str, binner: &Binner) -> HistogramMetric {
        assert_metric_name(name);
        self.inner
            .histograms
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| {
                let n = binner.n_bins();
                HistogramMetric(Arc::new(HistInner {
                    binner: binner.clone(),
                    buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
                    overflow: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                }))
            })
            .clone()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .iter()
            .map(|(key, c)| CounterSample {
                name: key.name.clone(),
                value: c.get(),
                labels: key.labels.clone(),
            })
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .iter()
            .map(|(key, g)| GaugeSample {
                name: key.name.clone(),
                value: g.get(),
                labels: key.labels.clone(),
            })
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .iter()
            .map(|(name, h)| {
                let inner = &h.0;
                let mut cumulative = 0u64;
                let buckets = inner
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, b)| {
                        cumulative += b.load(Ordering::Relaxed);
                        HistogramBucket {
                            le: inner.binner.lo() + inner.binner.width() * (i as f64 + 1.0),
                            count: cumulative,
                        }
                    })
                    .collect();
                HistogramSample {
                    name: name.clone(),
                    buckets,
                    sum: h.sum(),
                    count: h.count(),
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter in a snapshot.
///
/// Serde impls are hand-written so an empty label set is omitted from the
/// JSON export entirely — unlabeled metrics keep their pre-label wire
/// format (the vendored serde stub has no `skip_serializing_if`).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
    /// Key-sorted label pairs (empty for unlabeled metrics).
    pub labels: Vec<(String, String)>,
}

/// One gauge in a snapshot. See [`CounterSample`] for the serde contract.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Gauge value at snapshot time.
    pub value: f64,
    /// Key-sorted label pairs (empty for unlabeled metrics).
    pub labels: Vec<(String, String)>,
}

fn labels_to_value(labels: &[(String, String)]) -> serde::Value {
    serde::Value::Object(
        labels
            .iter()
            .map(|(k, v)| (k.clone(), serde::Value::String(v.clone())))
            .collect(),
    )
}

fn labels_from_obj(
    obj: &[(String, serde::Value)],
) -> Result<Vec<(String, String)>, serde::DeError> {
    let mut labels = match serde::__field(obj, "labels") {
        Some(serde::Value::Object(entries)) => entries
            .iter()
            .map(|(k, v)| match v {
                serde::Value::String(s) => Ok((k.clone(), s.clone())),
                other => Err(serde::DeError::type_mismatch("string label value", other)),
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(other) => return Err(serde::DeError::type_mismatch("label object", other)),
        None => Vec::new(),
    };
    labels.sort();
    Ok(labels)
}

impl Serialize for CounterSample {
    fn to_value(&self) -> serde::Value {
        let mut obj = vec![
            ("name".to_string(), self.name.to_value()),
            ("value".to_string(), self.value.to_value()),
        ];
        if !self.labels.is_empty() {
            obj.push(("labels".to_string(), labels_to_value(&self.labels)));
        }
        serde::Value::Object(obj)
    }
}

impl Deserialize for CounterSample {
    fn from_value(v: &serde::Value) -> Result<CounterSample, serde::DeError> {
        let obj = match v {
            serde::Value::Object(entries) => entries,
            other => return Err(serde::DeError::type_mismatch("object", other)),
        };
        Ok(CounterSample {
            name: match serde::__field(obj, "name") {
                Some(fv) => String::from_value(fv)?,
                None => return Err(serde::DeError::missing_field("name")),
            },
            value: match serde::__field(obj, "value") {
                Some(fv) => u64::from_value(fv)?,
                None => return Err(serde::DeError::missing_field("value")),
            },
            labels: labels_from_obj(obj)?,
        })
    }
}

impl Serialize for GaugeSample {
    fn to_value(&self) -> serde::Value {
        let mut obj = vec![
            ("name".to_string(), self.name.to_value()),
            ("value".to_string(), self.value.to_value()),
        ];
        if !self.labels.is_empty() {
            obj.push(("labels".to_string(), labels_to_value(&self.labels)));
        }
        serde::Value::Object(obj)
    }
}

impl Deserialize for GaugeSample {
    fn from_value(v: &serde::Value) -> Result<GaugeSample, serde::DeError> {
        let obj = match v {
            serde::Value::Object(entries) => entries,
            other => return Err(serde::DeError::type_mismatch("object", other)),
        };
        Ok(GaugeSample {
            name: match serde::__field(obj, "name") {
                Some(fv) => String::from_value(fv)?,
                None => return Err(serde::DeError::missing_field("name")),
            },
            value: match serde::__field(obj, "value") {
                Some(fv) => f64::from_value(fv)?,
                None => return Err(serde::DeError::missing_field("value")),
            },
            labels: labels_from_obj(obj)?,
        })
    }
}

/// One histogram bucket: cumulative count of observations `<= le`
/// (Prometheus semantics). The implicit `+Inf` bucket is the sample's
/// total `count`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Upper bucket edge (inclusive).
    pub le: f64,
    /// Cumulative observation count up to this edge.
    pub count: u64,
}

/// One histogram in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Cumulative buckets, ascending by edge.
    pub buckets: Vec<HistogramBucket>,
    /// Sum of all observations.
    pub sum: f64,
    /// Total observation count (the `+Inf` bucket).
    pub count: u64,
}

/// A point-in-time export of a [`MetricsRegistry`], serializable as JSON
/// and renderable as Prometheus text exposition format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Look up an unlabeled counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && c.labels.is_empty())
            .map(|c| c.value)
    }

    /// Look up a labeled counter value by name and exact label set.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let want = sorted_labels(labels);
        self.counters
            .iter()
            .find(|c| c.name == name && labels_match(&c.labels, &want))
            .map(|c| c.value)
    }

    /// Look up an unlabeled gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.labels.is_empty())
            .map(|g| g.value)
    }

    /// Look up a labeled gauge value by name and exact label set.
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let want = sorted_labels(labels);
        self.gauges
            .iter()
            .find(|g| g.name == name && labels_match(&g.labels, &want))
            .map(|g| g.value)
    }

    /// Error when any exported value is non-finite (a NaN or ±∞ in a
    /// metrics artifact means the instrumentation itself is broken).
    pub fn validate_finite(&self) -> Result<(), String> {
        for g in &self.gauges {
            if !g.value.is_finite() {
                return Err(format!("gauge {} is non-finite ({})", g.name, g.value));
            }
        }
        for h in &self.histograms {
            if !h.sum.is_finite() {
                return Err(format!(
                    "histogram {} sum is non-finite ({})",
                    h.name, h.sum
                ));
            }
            for b in &h.buckets {
                if !b.le.is_finite() {
                    return Err(format!("histogram {} has non-finite bucket edge", h.name));
                }
            }
        }
        Ok(())
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Parse the JSON produced by [`MetricsSnapshot::to_json`].
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Render as Prometheus text exposition format (version 0.0.4):
    /// `# HELP` + `# TYPE` once per metric family, then one sample line per
    /// series, label values escaped per the format's rules.
    pub fn to_prometheus(&self) -> String {
        fn header(out: &mut String, name: &str, kind: &str, described: &mut Option<String>) {
            if described.as_deref() != Some(name) {
                out.push_str(&format!(
                    "# HELP {name} {}\n# TYPE {name} {kind}\n",
                    help_text(name, kind)
                ));
                *described = Some(name.to_string());
            }
        }
        let mut out = String::new();
        let mut described: Option<String> = None;
        for c in &self.counters {
            header(&mut out, &c.name, "counter", &mut described);
            out.push_str(&format!(
                "{}{} {}\n",
                c.name,
                render_labels(&c.labels),
                c.value
            ));
        }
        for g in &self.gauges {
            header(&mut out, &g.name, "gauge", &mut described);
            out.push_str(&format!(
                "{}{} {}\n",
                g.name,
                render_labels(&g.labels),
                g.value
            ));
        }
        for h in &self.histograms {
            header(&mut out, &h.name, "histogram", &mut described);
            for b in &h.buckets {
                out.push_str(&format!(
                    "{}_bucket{{le=\"{}\"}} {}\n",
                    h.name, b.le, b.count
                ));
            }
            out.push_str(&format!(
                "{}_bucket{{le=\"+Inf\"}} {}\n{}_sum {}\n{}_count {}\n",
                h.name, h.count, h.name, h.sum, h.name, h.count
            ));
        }
        out
    }

    /// Parse the text produced by [`MetricsSnapshot::to_prometheus`] back
    /// into a snapshot (used by tests to prove the export is lossless; not
    /// a general Prometheus parser).
    pub fn from_prometheus(text: &str) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot::default();
        let mut kind_of: BTreeMap<String, String> = BTreeMap::new();
        let mut hists: BTreeMap<String, HistogramSample> = BTreeMap::new();
        let mut hist_order: Vec<String> = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            let at = |msg: &str| format!("prometheus line {}: {msg}", i + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest
                    .split_once(' ')
                    .ok_or_else(|| at("malformed TYPE comment"))?;
                kind_of.insert(name.to_string(), kind.to_string());
                if kind == "histogram" {
                    hist_order.push(name.to_string());
                    hists.insert(
                        name.to_string(),
                        HistogramSample {
                            name: name.to_string(),
                            buckets: Vec::new(),
                            sum: 0.0,
                            count: 0,
                        },
                    );
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| at("expected `name value`"))?;
            if let Some((name, label)) = key.split_once("_bucket{le=\"") {
                let hist = hists
                    .get_mut(name)
                    .ok_or_else(|| at("bucket before TYPE"))?;
                let edge = label
                    .strip_suffix("\"}")
                    .ok_or_else(|| at("malformed le label"))?;
                let count: u64 = value.parse().map_err(|_| at("bad bucket count"))?;
                if edge != "+Inf" {
                    let le: f64 = edge.parse().map_err(|_| at("bad bucket edge"))?;
                    hist.buckets.push(HistogramBucket { le, count });
                }
                continue;
            }
            if let Some(name) = key.strip_suffix("_sum") {
                if let Some(hist) = hists.get_mut(name) {
                    hist.sum = value.parse().map_err(|_| at("bad histogram sum"))?;
                    continue;
                }
            }
            if let Some(name) = key.strip_suffix("_count") {
                if let Some(hist) = hists.get_mut(name) {
                    hist.count = value.parse().map_err(|_| at("bad histogram count"))?;
                    continue;
                }
            }
            let (name, labels) = match key.split_once('{') {
                Some((name, rest)) => {
                    let body = rest
                        .strip_suffix('}')
                        .ok_or_else(|| at("malformed label set"))?;
                    (name, parse_labels(body).map_err(|e| at(&e))?)
                }
                None => (key, Vec::new()),
            };
            match kind_of.get(name).map(String::as_str) {
                Some("counter") => snap.counters.push(CounterSample {
                    name: name.to_string(),
                    value: value.parse().map_err(|_| at("bad counter value"))?,
                    labels,
                }),
                Some("gauge") => snap.gauges.push(GaugeSample {
                    name: name.to_string(),
                    value: value.parse().map_err(|_| at("bad gauge value"))?,
                    labels,
                }),
                _ => return Err(at(&format!("sample {key:?} before its TYPE"))),
            }
        }
        for name in hist_order {
            // Invariant: every name in hist_order was inserted above.
            snap.histograms.push(hists.remove(&name).expect("inserted"));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_stats::binning::OutOfRange;

    #[test]
    fn counters_and_gauges_register_once() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("autosens_test_hits_total");
        let b = reg.counter("autosens_test_hits_total");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        let g = reg.gauge("autosens_test_level");
        g.set(2.5);
        assert_eq!(reg.gauge("autosens_test_level").get(), 2.5);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_snapshots() {
        let reg = MetricsRegistry::new();
        let binner = Binner::new(0.0, 30.0, 10.0, OutOfRange::Discard).unwrap();
        let h = reg.histogram("autosens_test_latency_ms", &binner);
        for v in [5.0, 15.0, 15.0, 25.0, 99.0, -3.0] {
            h.observe(v);
        }
        h.observe(f64::NAN); // ignored
        let snap = reg.snapshot();
        let hist = &snap.histograms[0];
        assert_eq!(hist.count, 6);
        // Cumulative: <=10 holds 5.0 and the clamped-below -3.0; <=20 adds
        // the two 15.0s; <=30 adds 25.0; 99.0 only reaches +Inf (count).
        let counts: Vec<u64> = hist.buckets.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![2, 4, 5]);
        assert!((hist.sum - (5.0 + 15.0 + 15.0 + 25.0 + 99.0 - 3.0)).abs() < 1e-9);
    }

    #[test]
    fn json_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("autosens_test_a_total").add(7);
        reg.gauge("autosens_test_b").set(1.25);
        let binner = Binner::new(0.0, 20.0, 10.0, OutOfRange::Discard).unwrap();
        reg.histogram("autosens_test_c", &binner).observe(5.0);
        let snap = reg.snapshot();
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn validate_finite_catches_poisoned_gauges() {
        let reg = MetricsRegistry::new();
        reg.gauge("autosens_test_bad").set(f64::INFINITY);
        let err = reg.snapshot().validate_finite().unwrap_err();
        assert!(err.contains("autosens_test_bad"), "{err}");
    }

    #[test]
    fn prometheus_emits_help_and_type_once_per_family() {
        let reg = MetricsRegistry::new();
        reg.counter_labeled("autosens_regime_shift_total", &[("stream", "pooled")])
            .add(3);
        reg.counter_labeled("autosens_regime_shift_total", &[("stream", "select_mail")])
            .inc();
        reg.gauge("autosens_stream_flight_dropped").set(2.0);
        let text = reg.snapshot().to_prometheus();
        assert_eq!(
            text.matches("# HELP autosens_regime_shift_total").count(),
            1,
            "{text}"
        );
        assert_eq!(
            text.matches("# TYPE autosens_regime_shift_total counter")
                .count(),
            1,
            "{text}"
        );
        assert!(
            text.contains("autosens_regime_shift_total{stream=\"pooled\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("autosens_regime_shift_total{stream=\"select_mail\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("# HELP autosens_stream_flight_dropped"),
            "{text}"
        );
    }

    #[test]
    fn labeled_regime_and_flight_metrics_round_trip_via_prometheus() {
        let reg = MetricsRegistry::new();
        reg.counter_labeled("autosens_regime_shift_total", &[("stream", "pooled")])
            .add(5);
        reg.counter_labeled(
            "autosens_regime_shift_total",
            &[("stream", "open_folder"), ("dir", "up")],
        )
        .add(2);
        reg.counter("autosens_regime_shared_total").inc();
        reg.gauge_labeled("autosens_regime_state", &[("stream", "pooled")])
            .set(4.0);
        reg.counter("autosens_stream_flight_events_total").add(9);
        let binner = Binner::new(0.0, 20.0, 10.0, OutOfRange::Discard).unwrap();
        reg.histogram("autosens_test_lat", &binner).observe(5.0);
        let snap = reg.snapshot();
        let parsed = MetricsSnapshot::from_prometheus(&snap.to_prometheus()).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(
            parsed.counter_labeled("autosens_regime_shift_total", &[("stream", "pooled")]),
            Some(5)
        );
        assert_eq!(
            parsed.gauge_labeled("autosens_regime_state", &[("stream", "pooled")]),
            Some(4.0)
        );
    }

    #[test]
    fn hostile_label_values_escape_and_round_trip() {
        let reg = MetricsRegistry::new();
        let hostile = "a\"b\\c\nd,e} f{g";
        reg.counter_labeled("autosens_test_edges_total", &[("site", hostile)])
            .add(7);
        let snap = reg.snapshot();
        let text = snap.to_prometheus();
        // The raw newline must not appear inside the sample line.
        assert!(text.contains("\\n"), "{text}");
        assert!(text.contains("\\\""), "{text}");
        let parsed = MetricsSnapshot::from_prometheus(&text).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(
            parsed.counter_labeled("autosens_test_edges_total", &[("site", hostile)]),
            Some(7)
        );
    }

    #[test]
    fn escape_unescape_invert() {
        for s in ["", "plain", "q\"q", "b\\b", "n\nn", "mix\\\"\n\\n"] {
            assert_eq!(unescape_label_value(&escape_label_value(s)).unwrap(), s);
        }
        assert!(unescape_label_value("dangling\\").is_err());
        assert!(unescape_label_value("bad\\q").is_err());
    }

    #[test]
    fn labels_omitted_from_json_when_empty() {
        let reg = MetricsRegistry::new();
        reg.counter("autosens_test_plain_total").inc();
        let json = reg.snapshot().to_json();
        assert!(!json.contains("labels"), "{json}");
        reg.counter_labeled("autosens_test_tagged_total", &[("k", "v")])
            .inc();
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.contains("labels"), "{json}");
        assert_eq!(MetricsSnapshot::from_json(&json).unwrap(), snap);
    }
}
