//! Flight recorder: a bounded ring buffer of structured runtime events.
//!
//! Long-running streaming processes need an answer to "what happened in the
//! last hour?" that is cheaper than a full trace and richer than counters.
//! The [`FlightRecorder`] keeps the most recent N structured events —
//! regime shifts, shed/late-drop bursts, loss-rate gate trips, checkpoint
//! operations — each stamped with a monotonic sequence number and the
//! event-time instant it describes. When the ring is full the oldest event
//! is dropped (and counted), so memory stays bounded no matter how long the
//! process runs.
//!
//! Timestamps are *event time* (the stream's watermark/frontier), not wall
//! clock: the recorder's contents are then a pure function of the data that
//! flowed through the engine, which keeps tests deterministic and replays
//! honest.
//!
//! The recorder is deliberately **not** carried through checkpoint/restore:
//! a checkpoint captures the durable analytical state (records, offsets),
//! while the flight recorder is operational memory of *this process*. A
//! restored process starts with an empty ring — see DESIGN.md §6g.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// What kind of incident an event records.
///
/// Serde impls are hand-written: the vendored serde stub has no
/// `rename_all`, and the health document wants snake_case tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// The changepoint detector confirmed a regime boundary.
    RegimeShift,
    /// The bounded ingest queue overflowed and shed events.
    ShedBurst,
    /// Arrivals fell behind the watermark and were counted-and-dropped.
    LateDropBurst,
    /// The telemetry loss estimator flagged a calendar day as lossy.
    LossGateTrip,
    /// A checkpoint was written.
    CheckpointSaved,
    /// State was restored from a checkpoint.
    CheckpointRestored,
}

impl FlightKind {
    /// The snake_case wire tag.
    pub fn as_str(&self) -> &'static str {
        match self {
            FlightKind::RegimeShift => "regime_shift",
            FlightKind::ShedBurst => "shed_burst",
            FlightKind::LateDropBurst => "late_drop_burst",
            FlightKind::LossGateTrip => "loss_gate_trip",
            FlightKind::CheckpointSaved => "checkpoint_saved",
            FlightKind::CheckpointRestored => "checkpoint_restored",
        }
    }
}

impl Serialize for FlightKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

impl Deserialize for FlightKind {
    fn from_value(v: &serde::Value) -> Result<FlightKind, serde::DeError> {
        let tag = match v {
            serde::Value::String(s) => s.as_str(),
            other => return Err(serde::DeError::type_mismatch("string", other)),
        };
        match tag {
            "regime_shift" => Ok(FlightKind::RegimeShift),
            "shed_burst" => Ok(FlightKind::ShedBurst),
            "late_drop_burst" => Ok(FlightKind::LateDropBurst),
            "loss_gate_trip" => Ok(FlightKind::LossGateTrip),
            "checkpoint_saved" => Ok(FlightKind::CheckpointSaved),
            "checkpoint_restored" => Ok(FlightKind::CheckpointRestored),
            other => Err(serde::DeError::custom(format!(
                "unknown flight event kind {other:?}"
            ))),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Monotonic sequence number, assigned at record time. Strictly
    /// increasing across the recorder's lifetime, including dropped events.
    pub seq: u64,
    /// Event-time instant the event describes (epoch ms).
    pub at_ms: i64,
    /// Event category.
    pub kind: FlightKind,
    /// Human-readable detail, e.g. `"stream=pooled bucket=412 dir=up"`.
    pub detail: String,
}

#[derive(Debug)]
struct Ring {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<FlightEvent>,
}

/// A bounded, thread-safe ring buffer of [`FlightEvent`]s.
///
/// Cloning is cheap (an `Arc` handle); all clones share one ring. Sequence
/// numbers are assigned under the ring lock, so the order of `seq` values
/// is the order events entered the ring even under concurrent recording.
///
/// ```
/// use autosens_obs::{FlightKind, FlightRecorder};
///
/// let rec = FlightRecorder::new(2);
/// rec.record(FlightKind::ShedBurst, 1_000, "queue full");
/// rec.record(FlightKind::RegimeShift, 2_000, "stream=pooled dir=up");
/// rec.record(FlightKind::CheckpointSaved, 3_000, "bucket=4");
/// let events = rec.events();
/// assert_eq!(events.len(), 2); // oldest dropped
/// assert_eq!(events[0].seq, 1);
/// assert_eq!(rec.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<Ring>>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(Mutex::new(Ring {
                capacity,
                next_seq: 0,
                dropped: 0,
                buf: VecDeque::with_capacity(capacity),
            })),
        }
    }

    /// Record one event, returning its sequence number. Drops (and counts)
    /// the oldest event if the ring is full.
    pub fn record(&self, kind: FlightKind, at_ms: i64, detail: impl Into<String>) -> u64 {
        let mut ring = self.inner.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(FlightEvent {
            seq,
            at_ms,
            kind,
            detail: detail.into(),
        });
        seq
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Number of events currently in the ring.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().buf.is_empty()
    }

    /// Total events ever recorded (including since-dropped ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Events evicted by wraparound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// A copy of every retained event, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<FlightEvent> {
        let ring = self.inner.lock();
        let skip = ring.buf.len().saturating_sub(n);
        ring.buf.iter().skip(skip).cloned().collect()
    }

    /// Empty the ring (sequence numbers keep counting from where they were).
    pub fn clear(&self) {
        self.inner.lock().buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_monotonic_seq() {
        let rec = FlightRecorder::new(8);
        for i in 0..5 {
            let seq = rec.record(FlightKind::RegimeShift, i * 100, format!("e{i}"));
            assert_eq!(seq, i as u64);
        }
        let events = rec.events();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.recorded(), 5);
    }

    #[test]
    fn wraparound_drops_oldest_and_counts() {
        let rec = FlightRecorder::new(3);
        for i in 0..10i64 {
            rec.record(FlightKind::ShedBurst, i, i.to_string());
        }
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(rec.dropped(), 7);
        assert_eq!(rec.recorded(), 10);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let rec = FlightRecorder::new(0);
        assert_eq!(rec.capacity(), 1);
        rec.record(FlightKind::LossGateTrip, 1, "a");
        rec.record(FlightKind::LossGateTrip, 2, "b");
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.events()[0].detail, "b");
    }

    #[test]
    fn recent_returns_tail_oldest_first() {
        let rec = FlightRecorder::new(10);
        for i in 0..6i64 {
            rec.record(FlightKind::CheckpointSaved, i, i.to_string());
        }
        let tail = rec.recent(2);
        assert_eq!(tail.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(rec.recent(100).len(), 6);
    }

    #[test]
    fn clear_keeps_sequence_numbers_advancing() {
        let rec = FlightRecorder::new(4);
        rec.record(FlightKind::LateDropBurst, 1, "a");
        rec.clear();
        assert!(rec.is_empty());
        let seq = rec.record(FlightKind::LateDropBurst, 2, "b");
        assert_eq!(seq, 1);
    }

    #[test]
    fn concurrent_records_get_distinct_ordered_seqs() {
        let rec = FlightRecorder::new(1024);
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..64 {
                        rec.record(FlightKind::RegimeShift, t * 1000 + i, "x");
                    }
                });
            }
        });
        let events = rec.events();
        assert_eq!(events.len(), 256);
        // Ring order and sequence order agree even under contention.
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }

    #[test]
    fn events_serialize_round_trip() {
        let e = FlightEvent {
            seq: 7,
            at_ms: 123,
            kind: FlightKind::LossGateTrip,
            detail: "day=3 rate=0.4".into(),
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("loss_gate_trip"), "{json}");
        let back: FlightEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
