//! # `autosens-obs` — observability for the AutoSens pipeline
//!
//! Three pieces, all vendored-deps-only:
//!
//! * [`span`] — structured tracing: [`Span`] RAII guards with explicit
//!   parent/child nesting, `Instant` wall-clock timing, and typed
//!   key=value fields, collected thread-safely by a [`Recorder`] into a
//!   [`SpanTree`] that renders as an indented text profile or serializes
//!   to JSONL trace events.
//! * [`metrics`] — a [`MetricsRegistry`] of named monotonic counters,
//!   gauges, and fixed-bucket histograms (bucket edges reuse
//!   `autosens-stats` binning), exportable as a JSON
//!   [`MetricsSnapshot`] or Prometheus text exposition format.
//! * [`warn`] — verbosity-gated stderr messages ([`warn!`], [`info!`],
//!   [`debug!`]) that keep machine-readable stdout clean and count every
//!   warning in the global registry.
//! * [`flight`] — a bounded [`FlightRecorder`] ring buffer of structured
//!   runtime events (regime shifts, shed bursts, checkpoint ops) for the
//!   streaming health document.
//!
//! Naming convention for metrics: `autosens_<crate>_<name>`, lower snake
//! case, `_total` suffix on counters.
//!
//! ## Example
//!
//! ```
//! use autosens_obs::{Recorder, MetricsRegistry};
//!
//! let recorder = Recorder::new();
//! let reads = recorder.metrics().counter("autosens_demo_reads_total");
//! {
//!     let mut root = recorder.root("analyze");
//!     let child = root.child("sanitize");
//!     reads.add(42);
//!     drop(child);
//!     root.field("records", 42u64);
//! }
//! let tree = recorder.finish();
//! assert_eq!(tree.count_named("sanitize"), 1);
//! assert!(tree.render().contains("analyze"));
//! assert_eq!(recorder.metrics().snapshot().counter("autosens_demo_reads_total"), Some(42));
//! ```

pub mod flight;
pub mod metrics;
pub mod span;
pub mod warn;

/// Canonical names of cross-crate metrics, so emitters and dashboards agree
/// on spelling. Per-crate metrics keep their names local to the emitting
/// module; only names shared across crate boundaries (or surfaced in docs
/// and CI gates) belong here.
pub mod names {
    /// Rows ingested through the binary container reader.
    pub const INGEST_ROWS_TOTAL: &str = "autosens_ingest_rows_total";
    /// Bytes mapped or copied by the binary container reader.
    pub const INGEST_BYTES_TOTAL: &str = "autosens_ingest_bytes_total";
    /// Container files successfully opened and validated.
    pub const INGEST_CONTAINERS_TOTAL: &str = "autosens_ingest_containers_total";
    /// Container files written by the encoder.
    pub const INGEST_CONTAINERS_WRITTEN_TOTAL: &str = "autosens_ingest_containers_written_total";
    /// Polls of a growing container source by the tail reader.
    pub const INGEST_TAIL_POLLS_TOTAL: &str = "autosens_ingest_tail_polls_total";
}

pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use metrics::{Counter, Gauge, HistogramMetric, MetricsRegistry, MetricsSnapshot};
pub use span::{FieldValue, Recorder, Span, SpanRecord, SpanTree, StageTiming};
pub use warn::{set_verbosity, verbosity, Verbosity};
