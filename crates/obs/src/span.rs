//! Structured tracing spans.
//!
//! A [`Span`] is an RAII guard around one unit of work: it records a name,
//! wall-clock start/duration ([`std::time::Instant`]-based, so monotonic),
//! typed key=value fields, and its parent span. Finished spans accumulate in
//! the [`Recorder`] that created them; [`Recorder::finish`] drains them into
//! a [`SpanTree`] that renders as an indented text profile or serializes as
//! one JSON trace event per line (JSONL).
//!
//! Spans close on drop, so a panic unwinding through an instrumented stage
//! still records the span — the profile of a crashed run shows where it
//! crashed. Parenthood is explicit ([`Span::child`]), not thread-local, so
//! spans can be handed across worker threads without ambient state.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::metrics::MetricsRegistry;

/// A typed span field value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Unsigned integer (counts, sizes).
    U64(u64),
    /// Signed integer (offsets, deltas).
    I64(i64),
    /// Floating point (rates, ratios).
    F64(f64),
    /// Free text (labels, kinds).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// A finished span: the serializable trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span id, unique within its recorder.
    pub id: u64,
    /// Parent span id (`None` for roots).
    pub parent: Option<u64>,
    /// Span name (e.g. `"analyze"`, `"unbiased_pdf"`).
    pub name: String,
    /// Start offset from the recorder's epoch, microseconds.
    pub start_us: u64,
    /// Wall-clock duration, microseconds.
    pub duration_us: u64,
    /// Typed key=value fields attached while the span was open.
    pub fields: Vec<(String, FieldValue)>,
}

impl SpanRecord {
    /// Wall-clock duration in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.duration_us as f64 / 1000.0
    }
}

/// Wall-clock time attributed to one pipeline stage (the
/// `stage_timings` entry on an analysis report).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (see the pipeline's documented stage list).
    pub stage: String,
    /// Wall-clock milliseconds spent in the stage.
    pub wall_ms: f64,
}

struct RecorderInner {
    /// When false, finished spans are discarded (timing still works, so
    /// `stage_timings` stays cheap to produce without unbounded buffering).
    collect: AtomicBool,
    epoch: Instant,
    next_id: AtomicU64,
    finished: Mutex<Vec<SpanRecord>>,
    metrics: MetricsRegistry,
}

/// A thread-safe span collector plus the metrics registry spans and
/// counters share. Cloning is cheap (an `Arc` handle).
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("collecting", &self.is_collecting())
            .field("finished_spans", &self.inner.finished.lock().len())
            .finish()
    }
}

impl Recorder {
    fn with_options(collect: bool, metrics: MetricsRegistry) -> Recorder {
        Recorder {
            inner: Arc::new(RecorderInner {
                collect: AtomicBool::new(collect),
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                finished: Mutex::new(Vec::new()),
                metrics,
            }),
        }
    }

    /// A collecting recorder with its own private metrics registry
    /// (what tests want: full isolation).
    pub fn new() -> Recorder {
        Recorder::with_options(true, MetricsRegistry::new())
    }

    /// A collecting recorder that shares the given registry (what the CLI
    /// wants: codec/sim counters and pipeline counters in one snapshot).
    pub fn with_registry(metrics: MetricsRegistry) -> Recorder {
        Recorder::with_options(true, metrics)
    }

    /// A non-collecting recorder: spans still time their work (so stage
    /// timings are available from [`Span::finish`]) but nothing is buffered.
    /// The default for library callers that never drain the trace.
    pub fn disabled() -> Recorder {
        Recorder::with_options(false, MetricsRegistry::new())
    }

    /// The process-wide recorder used by instrumentation in crates that
    /// have no handle to thread (telemetry codecs, the simulator). Starts
    /// non-collecting; the CLI enables collection for `--profile` runs.
    pub fn global() -> &'static Recorder {
        use std::sync::OnceLock;
        static GLOBAL: OnceLock<Recorder> = OnceLock::new();
        GLOBAL.get_or_init(|| Recorder::with_options(false, MetricsRegistry::global().clone()))
    }

    /// Whether finished spans are being buffered.
    pub fn is_collecting(&self) -> bool {
        self.inner.collect.load(Ordering::Relaxed)
    }

    /// Turn span buffering on or off (counters are unaffected).
    pub fn set_collecting(&self, on: bool) {
        self.inner.collect.store(on, Ordering::Relaxed);
    }

    /// The metrics registry shared by this recorder's instrumentation.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Open a root span.
    pub fn root(&self, name: impl Into<String>) -> Span {
        self.open(name.into(), None)
    }

    fn open(&self, name: String, parent: Option<u64>) -> Span {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        Span {
            recorder: self.clone(),
            id,
            parent,
            name,
            start: Instant::now(),
            fields: Vec::new(),
            closed: false,
        }
    }

    fn record(&self, rec: SpanRecord) {
        if self.is_collecting() {
            self.inner.finished.lock().push(rec);
        }
    }

    /// Drain every finished span into a [`SpanTree`] (oldest first).
    pub fn finish(&self) -> SpanTree {
        let mut spans = std::mem::take(&mut *self.inner.finished.lock());
        spans.sort_by_key(|s| s.start_us);
        SpanTree { spans }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

/// An open span; closes (and records itself) on drop. See the module docs.
#[derive(Debug)]
pub struct Span {
    recorder: Recorder,
    id: u64,
    parent: Option<u64>,
    name: String,
    start: Instant,
    fields: Vec<(String, FieldValue)>,
    closed: bool,
}

impl Span {
    /// A span whose recorder discards everything: for default code paths
    /// that only need [`Span::finish`]'s timing.
    pub fn noop(name: impl Into<String>) -> Span {
        Recorder::disabled().root(name)
    }

    /// Open a child span (same recorder, this span as parent).
    pub fn child(&self, name: impl Into<String>) -> Span {
        self.recorder.open(name.into(), Some(self.id))
    }

    /// Attach a typed key=value field.
    pub fn field(&mut self, key: impl Into<String>, value: impl Into<FieldValue>) {
        self.fields.push((key.into(), value.into()));
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Wall-clock milliseconds since the span opened.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1000.0
    }

    /// Close the span now, returning its wall-clock duration in
    /// milliseconds (drop closes too; `finish` is for callers that want
    /// the timing back, e.g. to build `stage_timings`).
    pub fn finish(mut self) -> f64 {
        // `close` sets `closed`, so the Drop impl will not double-record.
        self.close()
    }

    fn close(&mut self) -> f64 {
        if self.closed {
            return 0.0;
        }
        self.closed = true;
        let start_us = self
            .start
            .duration_since(self.recorder.inner.epoch)
            .as_micros() as u64;
        let duration_us = self.start.elapsed().as_micros() as u64;
        self.recorder.record(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_us,
            duration_us,
            fields: std::mem::take(&mut self.fields),
        });
        duration_us as f64 / 1000.0
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// The finished spans of one trace, ordered by start time.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTree {
    spans: Vec<SpanRecord>,
}

impl SpanTree {
    /// All spans, oldest first.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Whether no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// How many spans carry this name.
    pub fn count_named(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Total wall-clock milliseconds across spans with this name.
    pub fn total_ms_named(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(SpanRecord::wall_ms)
            .sum()
    }

    /// Render the indented text profile: one line per span, children
    /// indented under parents, with duration and share of the enclosing
    /// root, fields appended as `key=value`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let roots: Vec<&SpanRecord> = self.spans.iter().filter(|s| s.parent.is_none()).collect();
        for root in roots {
            self.render_into(&mut out, root, 0, root.duration_us.max(1));
        }
        out
    }

    fn render_into(&self, out: &mut String, span: &SpanRecord, depth: usize, root_us: u64) {
        let share = 100.0 * span.duration_us as f64 / root_us as f64;
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{:<width$} {:>10.3} ms  {share:>5.1}%",
            span.name,
            span.wall_ms(),
            width = 24usize.saturating_sub(2 * depth).max(1),
        ));
        for (k, v) in &span.fields {
            out.push_str(&format!("  {k}={v}"));
        }
        out.push('\n');
        for child in self.spans.iter().filter(|s| s.parent == Some(span.id)) {
            self.render_into(out, child, depth + 1, root_us);
        }
    }

    /// Serialize as JSONL trace events: one JSON object per span, in start
    /// order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            // Spans are plain data; the vendored serializer cannot fail.
            out.push_str(&serde_json::to_string(span).expect("span serializes"));
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL trace produced by [`SpanTree::to_jsonl`].
    pub fn from_jsonl(text: &str) -> Result<SpanTree, String> {
        let mut spans = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let span: SpanRecord =
                serde_json::from_str(line).map_err(|e| format!("trace line {}: {e}", i + 1))?;
            spans.push(span);
        }
        Ok(SpanTree { spans })
    }

    /// Aggregate per-name wall-clock totals, in first-seen order:
    /// `(name, total ms, call count)`.
    pub fn totals_by_name(&self) -> Vec<(String, f64, usize)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: Vec<(f64, usize)> = Vec::new();
        for s in &self.spans {
            match order.iter().position(|n| *n == s.name) {
                Some(i) => {
                    totals[i].0 += s.wall_ms();
                    totals[i].1 += 1;
                }
                None => {
                    order.push(s.name.clone());
                    totals.push((s.wall_ms(), 1));
                }
            }
        }
        order
            .into_iter()
            .zip(totals)
            .map(|(n, (ms, c))| (n, ms, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_render() {
        let rec = Recorder::new();
        {
            let mut root = rec.root("analyze");
            root.field("records", 123usize);
            {
                let child = root.child("sanitize");
                let grandchild = child.child("dedup");
                drop(grandchild);
            }
        }
        let tree = rec.finish();
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.count_named("analyze"), 1);
        let rendered = tree.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].starts_with("analyze"), "{rendered}");
        assert!(lines[1].starts_with("  sanitize"), "{rendered}");
        assert!(lines[2].starts_with("    dedup"), "{rendered}");
        assert!(lines[0].contains("records=123"), "{rendered}");
    }

    #[test]
    fn jsonl_round_trips() {
        let rec = Recorder::new();
        {
            let mut root = rec.root("root");
            root.field("kind", "test");
            root.field("ratio", 0.5f64);
            root.field("ok", true);
            let _child = root.child("leaf");
        }
        let tree = rec.finish();
        let text = tree.to_jsonl();
        let parsed = SpanTree::from_jsonl(&text).unwrap();
        assert_eq!(parsed, tree);
    }

    #[test]
    fn finish_returns_duration_and_records_once() {
        let rec = Recorder::new();
        let span = rec.root("timed");
        let ms = span.finish();
        assert!(ms >= 0.0);
        assert_eq!(rec.finish().len(), 1);
        // Nothing left after the drain.
        assert!(rec.finish().is_empty());
    }

    #[test]
    fn disabled_recorder_discards_spans() {
        let rec = Recorder::disabled();
        let span = rec.root("ghost");
        assert!(span.finish() >= 0.0);
        assert!(rec.finish().is_empty());
        let noop = Span::noop("ghost2");
        assert!(noop.finish() >= 0.0);
    }
}
