//! Integration tests for `autosens-obs`: concurrent metric updates agree
//! with a serial reference, span guards survive panics, and the Prometheus
//! text export is lossless.

use autosens_obs::{MetricsRegistry, MetricsSnapshot, Recorder};
use autosens_stats::binning::{Binner, OutOfRange};

#[test]
fn concurrent_counter_updates_match_serial_reference() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let reg = MetricsRegistry::new();
    let counter = reg.counter("autosens_test_concurrent_total");
    crossbeam::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            scope.spawn(move |_| {
                for i in 0..PER_THREAD {
                    if (t + i) % 2 == 0 {
                        counter.inc();
                    } else {
                        counter.add(2);
                    }
                }
            });
        }
    })
    .unwrap();
    // Serial reference: each thread contributes PER_THREAD/2 times 1 and
    // PER_THREAD/2 times 2.
    let expected = THREADS * (PER_THREAD / 2) * 3;
    assert_eq!(counter.get(), expected);
}

#[test]
fn concurrent_histogram_updates_match_serial_reference() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 5_000;
    let binner = Binner::new(0.0, 100.0, 10.0, OutOfRange::Discard).unwrap();

    let concurrent = MetricsRegistry::new();
    let hist = concurrent.histogram("autosens_test_latency_ms", &binner);
    crossbeam::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = hist.clone();
            scope.spawn(move |_| {
                for i in 0..PER_THREAD {
                    hist.observe(((t * PER_THREAD + i) % 120) as f64);
                }
            });
        }
    })
    .unwrap();

    let serial = MetricsRegistry::new();
    let reference = serial.histogram("autosens_test_latency_ms", &binner);
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            reference.observe(((t * PER_THREAD + i) % 120) as f64);
        }
    }

    let got = concurrent.snapshot();
    let want = serial.snapshot();
    assert_eq!(got.histograms[0].buckets, want.histograms[0].buckets);
    assert_eq!(got.histograms[0].count, want.histograms[0].count);
    assert!((got.histograms[0].sum - want.histograms[0].sum).abs() < 1e-6);
}

#[test]
fn span_nesting_survives_panics() {
    let recorder = Recorder::new();
    let root = recorder.root("analyze");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _stage = root.child("exploding_stage");
        panic!("stage blew up");
    }));
    assert!(result.is_err());
    drop(root);
    let tree = recorder.finish();
    // The guard's Drop ran during unwinding, so the stage span closed and
    // was recorded under its parent.
    assert_eq!(tree.count_named("exploding_stage"), 1);
    assert_eq!(tree.count_named("analyze"), 1);
    let stage = tree
        .spans()
        .iter()
        .find(|s| s.name == "exploding_stage")
        .unwrap();
    let root_span = tree.spans().iter().find(|s| s.name == "analyze").unwrap();
    assert_eq!(stage.parent, Some(root_span.id));
}

#[test]
fn prometheus_text_round_trips_a_snapshot() {
    let reg = MetricsRegistry::new();
    reg.counter("autosens_core_records_read_total").add(12345);
    reg.counter("autosens_core_records_dropped_total").add(7);
    reg.gauge("autosens_core_records_per_sec").set(98765.4321);
    let binner = Binner::new(0.0, 50.0, 10.0, OutOfRange::Discard).unwrap();
    let hist = reg.histogram("autosens_core_stage_ms", &binner);
    for v in [3.0, 14.0, 14.5, 47.0, 1e6] {
        hist.observe(v);
    }
    let snap = reg.snapshot();
    let text = snap.to_prometheus();
    assert!(text.contains("# TYPE autosens_core_records_read_total counter"));
    assert!(text.contains("le=\"+Inf\"} 5"));
    let parsed = MetricsSnapshot::from_prometheus(&text).unwrap();
    assert_eq!(parsed, snap);
}

#[test]
fn prometheus_parser_rejects_malformed_input() {
    assert!(MetricsSnapshot::from_prometheus("no_type_line 5").is_err());
    assert!(MetricsSnapshot::from_prometheus("# TYPE x counter\nx notanumber").is_err());
}

#[test]
fn spans_record_from_multiple_threads() {
    let recorder = Recorder::new();
    let root = recorder.root("parallel_analyses");
    crossbeam::thread::scope(|scope| {
        for i in 0..4 {
            let parent = &root;
            scope.spawn(move |_| {
                let mut child = parent.child("worker");
                child.field("index", i as u64);
            });
        }
    })
    .unwrap();
    drop(root);
    let tree = recorder.finish();
    assert_eq!(tree.count_named("worker"), 4);
    assert_eq!(tree.count_named("parallel_analyses"), 1);
}
