//! Property-based tests for the AutoSens core: invariants of the
//! preference fit, the α arithmetic, and the unbiased estimator that must
//! hold for *any* data, not just the simulated scenarios.

use autosens_core::alpha::alpha_vs_reference;
use autosens_core::config::AutoSensConfig;
use autosens_core::plan::{AnalysisPlan, PlanInput, RunOptions};
use autosens_core::preference::NormalizedPreference;
use autosens_core::unbiased::unbiased_histogram;
use autosens_faults::{FaultOp, FaultPlan};
use autosens_stats::binning::{Binner, OutOfRange};
use autosens_stats::histogram::Histogram;
use autosens_telemetry::log::TelemetryLog;
use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use autosens_telemetry::time::SimTime;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn binner() -> Binner {
    Binner::new(0.0, 1000.0, 10.0, OutOfRange::Discard).unwrap()
}

fn fit_config() -> AutoSensConfig {
    AutoSensConfig {
        latency_hi_ms: 1000.0,
        savgol_window: 11,
        savgol_degree: 3,
        min_biased_count: 1.0,
        min_unbiased_count: 1.0,
        min_supported_bins: 10,
        ..AutoSensConfig::default()
    }
}

/// Histograms whose per-bin masses are the given positive weights.
fn histogram_from_weights(weights: &[f64]) -> Histogram {
    let b = binner();
    let mut h = Histogram::new(b.clone());
    for (i, &w) in weights.iter().enumerate() {
        h.record_weighted(b.center(i), w);
    }
    h
}

proptest! {
    // ---------- preference fit ----------

    #[test]
    fn preference_is_one_at_reference_for_any_data(
        weights in prop::collection::vec(1.0f64..1000.0, 100)
    ) {
        let biased = histogram_from_weights(&weights);
        let unbiased = histogram_from_weights(&vec![500.0; 100]);
        let p = NormalizedPreference::fit(&biased, &unbiased, &fit_config()).unwrap();
        let v = p.at(300.0).unwrap();
        prop_assert!((v - 1.0).abs() < 1e-9, "pref(ref) = {}", v);
    }

    #[test]
    fn preference_is_invariant_to_histogram_scaling(
        weights in prop::collection::vec(1.0f64..1000.0, 100),
        scale_b in 0.1f64..10.0,
        scale_u in 0.1f64..10.0,
    ) {
        // The curve depends only on the *shapes* of B and U, not their
        // totals: scaling either histogram must not change the result.
        // (This invariant holds modulo the min-count support gates, which
        // are count-denominated by design — so disable them here.)
        let cfg = AutoSensConfig {
            min_biased_count: 0.0,
            min_unbiased_count: 0.0,
            ..fit_config()
        };
        let biased = histogram_from_weights(&weights);
        let unbiased = histogram_from_weights(&vec![500.0; 100]);
        let p1 = NormalizedPreference::fit(&biased, &unbiased, &cfg).unwrap();

        let mut b2 = biased.clone();
        b2.scale(scale_b).unwrap();
        let mut u2 = unbiased.clone();
        u2.scale(scale_u).unwrap();
        let p2 = NormalizedPreference::fit(&b2, &u2, &cfg).unwrap();

        for (a, b) in p1.series().iter().zip(p2.series().iter()) {
            prop_assert!((a.1 - b.1).abs() < 1e-6, "{:?} vs {:?}", a, b);
        }
    }

    #[test]
    fn preference_output_is_finite_and_nonnegative(
        weights_b in prop::collection::vec(0.0f64..1000.0, 100),
        weights_u in prop::collection::vec(0.5f64..1000.0, 100),
    ) {
        let biased = histogram_from_weights(&weights_b);
        let unbiased = histogram_from_weights(&weights_u);
        // Fit may legitimately fail (insufficient support); if it succeeds,
        // every emitted value must be finite and >= 0.
        if let Ok(p) = NormalizedPreference::fit(&biased, &unbiased, &fit_config()) {
            for (x, v) in p.series() {
                prop_assert!(v.is_finite() && v >= 0.0, "pref({x}) = {v}");
            }
            let (lo, hi) = p.span_ms();
            prop_assert!(lo <= hi);
        }
    }

    #[test]
    fn drop_factor_is_multiplicative(
        weights in prop::collection::vec(10.0f64..1000.0, 100),
    ) {
        let biased = histogram_from_weights(&weights);
        let unbiased = histogram_from_weights(&vec![500.0; 100]);
        let p = NormalizedPreference::fit(&biased, &unbiased, &fit_config()).unwrap();
        // drop(a,c) == drop(a,b) * drop(b,c) wherever defined and nonzero.
        if let (Some(ab), Some(bc), Some(ac)) = (
            p.drop_factor(200.0, 500.0),
            p.drop_factor(500.0, 800.0),
            p.drop_factor(200.0, 800.0),
        ) {
            prop_assert!((ab * bc - ac).abs() < 1e-9 * ac.abs().max(1.0));
        }
    }

    // ---------- alpha arithmetic ----------

    #[test]
    fn alpha_of_group_against_itself_is_one(
        c in prop::collection::vec(1.0f64..1000.0, 2..50),
        u in prop::collection::vec(0.1f64..1000.0, 2..50),
    ) {
        let n = c.len().min(u.len());
        let (per_bin, mean) =
            alpha_vs_reference(&c[..n], &u[..n], &c[..n], &u[..n], 0.5, 0.0);
        for b in per_bin.iter().flatten() {
            prop_assert!((b - 1.0).abs() < 1e-9);
        }
        prop_assert!((mean.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_scales_linearly_with_group_counts(
        c in prop::collection::vec(1.0f64..1000.0, 2..50),
        u in prop::collection::vec(0.1f64..1000.0, 2..50),
        k in 0.1f64..10.0,
    ) {
        // Multiplying a group's counts by k multiplies its alpha by k:
        // alpha is a pure rate ratio.
        let n = c.len().min(u.len());
        let scaled: Vec<f64> = c[..n].iter().map(|x| x * k).collect();
        let (_, mean) = alpha_vs_reference(&scaled, &u[..n], &c[..n], &u[..n], 0.0, 0.0);
        prop_assert!((mean.unwrap() - k).abs() < 1e-6 * k.max(1.0));
    }

    #[test]
    fn alpha_is_invariant_to_unbiased_mass_scale(
        c in prop::collection::vec(1.0f64..1000.0, 2..50),
        u in prop::collection::vec(0.1f64..1000.0, 2..50),
        k in 0.1f64..10.0,
    ) {
        // Only the *shape* of U_T matters (f_T^L are fractions).
        let n = c.len().min(u.len());
        let scaled: Vec<f64> = u[..n].iter().map(|x| x * k).collect();
        let (_, a) = alpha_vs_reference(&c[..n], &u[..n], &c[..n], &u[..n], 0.0, 0.0);
        let (_, b) = alpha_vs_reference(&c[..n], &scaled, &c[..n], &u[..n], 0.0, 0.0);
        prop_assert!((a.unwrap() - b.unwrap()).abs() < 1e-9);
    }

    // ---------- unbiased estimator ----------

    #[test]
    fn unbiased_histogram_mass_equals_draws(
        latencies in prop::collection::vec(0.0f64..999.0, 1..100),
        draws in 100usize..2000,
        seed in any::<u64>(),
    ) {
        let records: Vec<ActionRecord> = latencies
            .iter()
            .enumerate()
            .map(|(i, &l)| ActionRecord {
                time: SimTime(i as i64 * 1000),
                action: ActionType::SelectMail,
                latency_ms: l,
                user: UserId(0),
                class: UserClass::Business,
                tz_offset_ms: 0,
                outcome: Outcome::Success,
            })
            .collect();
        let log = TelemetryLog::from_records(records).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let h = unbiased_histogram(&log.view(), &binner(), draws, &mut rng).unwrap();
        // Every draw resolves to exactly one in-range sample.
        prop_assert_eq!(h.n_recorded() as usize, draws);
        prop_assert!((h.total() - draws as f64).abs() < 1e-9);
    }

    // ---------- end-to-end robustness ----------

    #[test]
    fn analyze_never_panics_on_fault_injected_logs(
        latencies in prop::collection::vec(0.0f64..2000.0, 20..150),
        step_ms in 1_000i64..600_000,
        seed in any::<u64>(),
        drop_rate in 0.0f64..0.9,
        dup_rate in 0.0f64..0.5,
        reorder_rate in 0.0f64..0.5,
        grain in 1.0f64..200.0,
    ) {
        // Arbitrary logs pushed through the full corruption battery and the
        // full analysis: the pipeline must either produce a finite curve or
        // return a typed error — never panic, never emit NaN.
        let records: Vec<ActionRecord> = latencies
            .iter()
            .enumerate()
            .map(|(i, &l)| ActionRecord {
                time: SimTime(i as i64 * step_ms),
                action: ActionType::SelectMail,
                latency_ms: l,
                user: UserId(i as u64 % 7),
                class: UserClass::Business,
                tz_offset_ms: 0,
                outcome: Outcome::Success,
            })
            .collect();
        let log = TelemetryLog::from_records(records).unwrap();
        let plan = FaultPlan {
            seed,
            ops: vec![
                FaultOp::DropBursty { rate: drop_rate, mean_burst: 10 },
                FaultOp::Duplicate { rate: dup_rate },
                FaultOp::Reorder { rate: reorder_rate, max_shift_ms: 300_000 },
                FaultOp::ClockSkew { max_offset_ms: 3_600_000, drift_ms_per_day: 60_000 },
                FaultOp::QuantizeLatency { grain_ms: grain },
                FaultOp::NullMetadata { rate: 0.5 },
            ],
        };
        let corrupted = plan.apply(&log).unwrap();
        let cfg = AutoSensConfig {
            unbiased_draws: 4_000,
            savgol_window: 11,
            savgol_degree: 3,
            min_biased_count: 1.0,
            min_unbiased_count: 1.0,
            min_supported_bins: 5,
            ..AutoSensConfig::default()
        };
        let plan = AnalysisPlan::new(cfg);
        match plan.run(PlanInput::log(&corrupted), RunOptions::default()).map(|o| o.report) {
            Ok(report) => {
                for (x, v) in report.preference.series() {
                    prop_assert!(v.is_finite() && v >= 0.0, "pref({x}) = {v}");
                }
            }
            // Typed failure (empty slice, support collapse, …) is the
            // accepted graceful outcome for unanalyzable corruption.
            Err(_) => {}
        }
    }

    #[test]
    fn unbiased_histogram_only_contains_observed_latencies(
        latencies in prop::collection::vec(0.0f64..999.0, 1..30),
        seed in any::<u64>(),
    ) {
        let records: Vec<ActionRecord> = latencies
            .iter()
            .enumerate()
            .map(|(i, &l)| ActionRecord {
                time: SimTime(i as i64 * 777),
                action: ActionType::Search,
                latency_ms: l,
                user: UserId(1),
                class: UserClass::Consumer,
                tz_offset_ms: 0,
                outcome: Outcome::Success,
            })
            .collect();
        let log = TelemetryLog::from_records(records).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let h = unbiased_histogram(&log.view(), &binner(), 500, &mut rng).unwrap();
        let b = binner();
        // Bins with mass must contain at least one observed latency.
        for i in 0..b.n_bins() {
            if h.count(i) > 0.0 {
                let hit = latencies.iter().any(|&l| b.index_of(l) == Some(i));
                prop_assert!(hit, "bin {i} has mass but no observed latency");
            }
        }
    }
}
