//! Bootstrap confidence bands for preference curves.
//!
//! The paper reports point estimates only; for operational use a band is
//! needed to tell real drops from estimator noise. This module implements a
//! **parametric (Poisson) bootstrap at the histogram level**: each
//! replicate resamples every bin of `B` and `U` as `Poisson(observed
//! mass)`, refits the full ratio → smooth → normalize pipeline, and the
//! per-latency percentile envelope of the replicates forms the band.
//!
//! Resampling histograms rather than raw records keeps a replicate cheap
//! (a 300-bin refit instead of a million-record pass) and is faithful as
//! long as bin masses are approximately independent counts — which holds
//! for `B` (counts) and approximately for the α-normalized and
//! draw-allocated variants (scaled counts; the Poisson spread is then
//! slightly conservative for masses above the raw counts).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use autosens_exec::ExecReport;
use autosens_stats::dist::poisson;
use autosens_stats::histogram::Histogram;

use crate::config::AutoSensConfig;
use crate::error::AutoSensError;
use crate::preference::NormalizedPreference;

/// The scheduler job label of the bootstrap replicate job (also the name
/// of its pipeline stage span). Fault-injection tests arm chunk panics
/// against this label to prove the containment contract.
pub const CI_CHUNK_LABEL: &str = "ci_bootstrap";

/// A preference curve with a bootstrap confidence band.
#[derive(Debug, Clone)]
pub struct PreferenceCi {
    /// The point estimate fitted on the original histograms.
    pub point: NormalizedPreference,
    /// Two-sided confidence level (e.g. 0.95).
    pub level: f64,
    /// Number of successfully refitted replicates.
    pub replicates: usize,
    lo: Vec<Option<f64>>,
    hi: Vec<Option<f64>>,
}

impl PreferenceCi {
    /// The confidence band at a latency: `(lo, hi)`, when at least half the
    /// replicates covered that bin.
    pub fn band_at(&self, latency_ms: f64) -> Option<(f64, f64)> {
        let i = self.point.binner().index_of(latency_ms)?;
        match (self.lo[i], self.hi[i]) {
            (Some(lo), Some(hi)) => Some((lo, hi)),
            _ => None,
        }
    }

    /// Whether a hypothesized preference value is inside the band.
    pub fn contains(&self, latency_ms: f64, value: f64) -> Option<bool> {
        self.band_at(latency_ms)
            .map(|(lo, hi)| lo <= value && value <= hi)
    }

    /// The `(latency, lo, hi)` series over bins with a band.
    pub fn band_series(&self) -> Vec<(f64, f64, f64)> {
        let binner = self.point.binner();
        (0..binner.n_bins())
            .filter_map(|i| match (self.lo[i], self.hi[i]) {
                (Some(lo), Some(hi)) => Some((binner.center(i), lo, hi)),
                _ => None,
            })
            .collect()
    }
}

/// Fit a preference curve with a bootstrap confidence band.
///
/// `replicates` is the number of bootstrap refits (≥ 20); `level` the
/// two-sided confidence level in `(0, 1)`. Replicates whose refit fails
/// (support collapse under resampling) are skipped; an error is returned if
/// more than half fail.
pub fn preference_ci<R: Rng>(
    biased: &Histogram,
    unbiased: &Histogram,
    cfg: &AutoSensConfig,
    replicates: usize,
    level: f64,
    rng: &mut R,
) -> Result<PreferenceCi, AutoSensError> {
    preference_ci_traced(biased, unbiased, cfg, replicates, level, rng).map(|(ci, _)| ci)
}

/// [`preference_ci`] plus the scheduling report of the replicate job, for
/// callers that feed the observability layer.
///
/// Replicates run as a chunked data-parallel job (`cfg.threads` workers).
/// Each replicate resamples from its own RNG stream — seeded from one
/// `u64` taken off the caller's `rng`, mixed with the replicate index —
/// so the band is bit-identical for every thread count and every chunk
/// geometry.
pub fn preference_ci_traced<R: Rng>(
    biased: &Histogram,
    unbiased: &Histogram,
    cfg: &AutoSensConfig,
    replicates: usize,
    level: f64,
    rng: &mut R,
) -> Result<(PreferenceCi, ExecReport), AutoSensError> {
    if replicates < 20 {
        return Err(AutoSensError::BadConfig(
            "bootstrap requires at least 20 replicates".into(),
        ));
    }
    if !(0.0 < level && level < 1.0) {
        return Err(AutoSensError::BadConfig(format!(
            "confidence level must be in (0,1), got {level}"
        )));
    }
    let point = NormalizedPreference::fit(biased, unbiased, cfg)?;
    let n_bins = point.binner().n_bins();

    // Collect per-bin replicate values: each chunk refits a range of
    // replicates, partials concatenate in chunk order.
    let base_seed = rng.gen::<u64>();
    type ChunkValues = Result<(usize, Vec<Vec<f64>>), AutoSensError>;
    let (parts, report) = autosens_exec::run_chunks(
        CI_CHUNK_LABEL,
        replicates,
        8,
        cfg.threads,
        |_, range| -> ChunkValues {
            let mut ok = 0usize;
            let mut values: Vec<Vec<f64>> = vec![Vec::new(); n_bins];
            for rep in range {
                let mut rng =
                    StdRng::seed_from_u64(autosens_exec::chunk_seed(base_seed, rep as u64));
                let b = resample_poisson(biased, &mut rng)?;
                let u = resample_poisson(unbiased, &mut rng)?;
                let Ok(fit) = NormalizedPreference::fit(&b, &u, cfg) else {
                    continue;
                };
                ok += 1;
                for (x, v) in fit.series() {
                    if let Some(i) = point.binner().index_of(x) {
                        values[i].push(v);
                    }
                }
            }
            Ok((ok, values))
        },
    )?;
    let mut values: Vec<Vec<f64>> = vec![Vec::new(); n_bins];
    let mut ok = 0usize;
    for part in parts {
        let (part_ok, part_values) = part?;
        ok += part_ok;
        for (acc, mut vs) in values.iter_mut().zip(part_values) {
            acc.append(&mut vs);
        }
    }
    if ok < replicates / 2 {
        return Err(AutoSensError::InsufficientSupport {
            what: "bootstrap replicates".into(),
            supported: ok,
            required: replicates / 2,
        });
    }

    let alpha = (1.0 - level) / 2.0;
    let mut lo = vec![None; n_bins];
    let mut hi = vec![None; n_bins];
    for (i, vals) in values.iter_mut().enumerate() {
        // A degenerate refit could in principle emit a non-finite value;
        // drop those rather than letting them poison the quantiles (or
        // panic a comparator).
        vals.retain(|v| v.is_finite());
        if vals.len() * 2 < ok {
            continue; // bin covered by fewer than half the replicates
        }
        vals.sort_by(f64::total_cmp);
        lo[i] = Some(autosens_stats::descriptive::quantile_sorted(vals, alpha));
        hi[i] = Some(autosens_stats::descriptive::quantile_sorted(
            vals,
            1.0 - alpha,
        ));
    }

    Ok((
        PreferenceCi {
            point,
            level,
            replicates: ok,
            lo,
            hi,
        },
        report,
    ))
}

/// Resample every bin of a histogram as `Poisson(observed mass)`.
fn resample_poisson<R: Rng>(h: &Histogram, rng: &mut R) -> Result<Histogram, AutoSensError> {
    let binner = h.binner().clone();
    let mut out = Histogram::new(binner.clone());
    for i in 0..binner.n_bins() {
        let mass = h.count(i);
        if mass > 0.0 {
            let draw = poisson(rng, mass).map_err(AutoSensError::from)?;
            if draw > 0 {
                out.record_weighted(binner.center(i), draw as f64);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_stats::binning::{Binner, OutOfRange};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> AutoSensConfig {
        AutoSensConfig {
            latency_hi_ms: 1000.0,
            savgol_window: 11,
            savgol_degree: 3,
            min_biased_count: 1.0,
            min_unbiased_count: 1.0,
            min_supported_bins: 10,
            ..AutoSensConfig::default()
        }
    }

    /// Histograms with ratio f and per-bin mass `scale`.
    fn histograms(f: impl Fn(f64) -> f64, scale: f64) -> (Histogram, Histogram) {
        let b = Binner::new(0.0, 1000.0, 10.0, OutOfRange::Discard).unwrap();
        let mut biased = Histogram::new(b.clone());
        let mut unbiased = Histogram::new(b.clone());
        for i in 0..b.n_bins() {
            let c = b.center(i);
            unbiased.record_weighted(c, scale);
            biased.record_weighted(c, scale * f(c));
        }
        (biased, unbiased)
    }

    #[test]
    fn band_brackets_the_point_estimate() {
        let (b, u) = histograms(|l| 1.5 - l / 1000.0, 500.0);
        let mut rng = StdRng::seed_from_u64(1);
        let ci = preference_ci(&b, &u, &cfg(), 60, 0.95, &mut rng).unwrap();
        assert!(ci.replicates >= 30);
        for l in [200.0, 400.0, 600.0, 800.0] {
            let v = ci.point.at(l).unwrap();
            let (lo, hi) = ci.band_at(l).unwrap();
            assert!(lo <= hi);
            // The point estimate sits inside (or at worst grazes) the band.
            assert!(
                v >= lo - 0.02 && v <= hi + 0.02,
                "@{l}: {v} not in [{lo}, {hi}]"
            );
        }
        // Reference bin band is tight around 1 (normalization pins it).
        let (lo, hi) = ci.band_at(300.0).unwrap();
        assert!(lo > 0.9 && hi < 1.1, "[{lo}, {hi}]");
    }

    #[test]
    fn more_data_gives_narrower_bands() {
        let mut rng = StdRng::seed_from_u64(2);
        let width = |scale: f64, rng: &mut StdRng| {
            let (b, u) = histograms(|l| 1.5 - l / 1000.0, scale);
            let ci = preference_ci(&b, &u, &cfg(), 60, 0.95, rng).unwrap();
            let (lo, hi) = ci.band_at(700.0).unwrap();
            hi - lo
        };
        let wide = width(60.0, &mut rng);
        let narrow = width(6000.0, &mut rng);
        assert!(
            narrow < wide * 0.5,
            "band should shrink with data: {narrow:.4} vs {wide:.4}"
        );
    }

    #[test]
    fn band_covers_the_true_curve() {
        // With Poisson noise actually present in the data-generating
        // process, the 95% band should cover the truth at most probes.
        let b0 = Binner::new(0.0, 1000.0, 10.0, OutOfRange::Discard).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let truth = |l: f64| 1.5 - l / 1000.0;
        let mut biased = Histogram::new(b0.clone());
        let mut unbiased = Histogram::new(b0.clone());
        for i in 0..b0.n_bins() {
            let c = b0.center(i);
            let nb = poisson(&mut rng, 400.0 * truth(c)).unwrap();
            let nu = poisson(&mut rng, 400.0).unwrap();
            biased.record_weighted(c, nb as f64);
            unbiased.record_weighted(c, nu.max(1) as f64);
        }
        let ci = preference_ci(&biased, &unbiased, &cfg(), 80, 0.95, &mut rng).unwrap();
        let mut covered = 0;
        let mut total = 0;
        for l in (150..950).step_by(50) {
            let l = l as f64;
            let t = truth(l) / truth(305.0);
            if let Some(inside) = ci.contains(l, t) {
                total += 1;
                if inside {
                    covered += 1;
                }
            }
        }
        assert!(total >= 10);
        assert!(
            covered as f64 / total as f64 >= 0.8,
            "coverage {covered}/{total}"
        );
    }

    #[test]
    fn band_series_matches_band_at() {
        let (b, u) = histograms(|_| 1.0, 300.0);
        let mut rng = StdRng::seed_from_u64(4);
        let ci = preference_ci(&b, &u, &cfg(), 40, 0.9, &mut rng).unwrap();
        let series = ci.band_series();
        assert!(!series.is_empty());
        for (x, lo, hi) in series.iter().take(10) {
            assert_eq!(ci.band_at(*x), Some((*lo, *hi)));
        }
    }

    #[test]
    fn band_is_identical_across_thread_counts() {
        let (b, u) = histograms(|l| 1.5 - l / 1000.0, 500.0);
        let band_with = |threads: usize| {
            let cfg = AutoSensConfig { threads, ..cfg() };
            let mut rng = StdRng::seed_from_u64(9);
            let (ci, report) = preference_ci_traced(&b, &u, &cfg, 40, 0.95, &mut rng).unwrap();
            assert_eq!(report.label, CI_CHUNK_LABEL);
            (ci.replicates, ci.band_series())
        };
        let baseline = band_with(1);
        for threads in [2, 4, 8] {
            assert_eq!(band_with(threads), baseline, "threads={threads}");
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let (b, u) = histograms(|_| 1.0, 300.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(preference_ci(&b, &u, &cfg(), 10, 0.95, &mut rng).is_err());
        assert!(preference_ci(&b, &u, &cfg(), 40, 0.0, &mut rng).is_err());
        assert!(preference_ci(&b, &u, &cfg(), 40, 1.0, &mut rng).is_err());
    }

    #[test]
    fn fails_when_support_collapses() {
        // Masses so small that most replicates lose the required support.
        let (b, u) = histograms(|_| 1.0, 0.05);
        let mut rng = StdRng::seed_from_u64(6);
        assert!(preference_ci(&b, &u, &cfg(), 40, 0.95, &mut rng).is_err());
    }
}
