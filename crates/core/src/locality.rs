//! The §2.1 precondition diagnostics (Figures 1 and 2).
//!
//! AutoSens is only meaningful when latency is *predictable* on human
//! timescales: if latency changed randomly from one moment to the next,
//! users could not act on a preference. Two diagnostics verify this:
//!
//! 1. the MSD/MAD ratio of the latency time series against shuffled and
//!    sorted baselines (Figure 1) — locality pushes the observed ratio far
//!    below the shuffled series' ratio of ~1;
//! 2. per-minute action density vs. per-minute mean latency (Figure 2) —
//!    a negative correlation shows activity concentrating in fast periods.

use rand::Rng;
use serde::{Deserialize, Serialize};

use autosens_stats::correlation::pearson;
use autosens_stats::succdiff::{locality_ratios, von_neumann_ratio};
use autosens_stats::timeseries::{aggregate_windows, density_vs_mean, WindowStat};
use autosens_telemetry::log::LogView;

use crate::error::AutoSensError;

/// The Figure 1 diagnostic output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalityReport {
    /// MSD/MAD of the latency series in observed order.
    pub msd_mad_actual: f64,
    /// MSD/MAD of the same values randomly shuffled (expected ~1).
    pub msd_mad_shuffled: f64,
    /// MSD/MAD of the same values sorted ascending (the minimum).
    pub msd_mad_sorted: f64,
    /// The classical von Neumann ratio (expected ~2 for i.i.d.).
    pub von_neumann: f64,
    /// Number of latency samples in the series.
    pub n_samples: usize,
}

impl LocalityReport {
    /// Whether the series shows the locality AutoSens requires: the actual
    /// ratio is well below the shuffled baseline.
    pub fn has_locality(&self) -> bool {
        self.msd_mad_actual < 0.8 * self.msd_mad_shuffled
    }
}

/// Compute the Figure 1 diagnostics over a (sorted) view's latency series.
pub fn locality_report<R: Rng>(
    log: &LogView<'_>,
    rng: &mut R,
) -> Result<LocalityReport, AutoSensError> {
    let series: Vec<f64> = log
        .latency_series()
        .map_err(AutoSensError::from)?
        .into_iter()
        .map(|(_, l)| l)
        .collect();
    if series.len() < 3 {
        return Err(AutoSensError::EmptySlice(
            "locality diagnostics need >= 3 samples".into(),
        ));
    }
    let ratios = locality_ratios(&series, rng).map_err(AutoSensError::from)?;
    let vn = von_neumann_ratio(&series).map_err(AutoSensError::from)?;
    Ok(LocalityReport {
        msd_mad_actual: ratios.actual,
        msd_mad_shuffled: ratios.shuffled,
        msd_mad_sorted: ratios.sorted,
        von_neumann: vn,
        n_samples: series.len(),
    })
}

/// The Figure 2 diagnostic output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityLatencyReport {
    /// Pearson correlation between per-window action count and mean latency.
    pub correlation: f64,
    /// Number of non-empty windows correlated.
    pub n_windows: usize,
    /// Window length in ms.
    pub window_ms: i64,
}

/// Correlate per-window action density with per-window mean latency
/// (1-minute windows in the paper).
pub fn density_latency_correlation(
    log: &LogView<'_>,
    window_ms: i64,
) -> Result<DensityLatencyReport, AutoSensError> {
    let series = log.latency_series().map_err(AutoSensError::from)?;
    if series.is_empty() {
        return Err(AutoSensError::EmptySlice(
            "density/latency correlation".into(),
        ));
    }
    let windows = aggregate_windows(&series, window_ms).map_err(AutoSensError::from)?;
    let (density, means) = density_vs_mean(&windows);
    if density.len() < 3 {
        return Err(AutoSensError::EmptySlice(
            "too few non-empty windows for correlation".into(),
        ));
    }
    let r = pearson(&density, &means).map_err(AutoSensError::from)?;
    Ok(DensityLatencyReport {
        correlation: r,
        n_windows: density.len(),
        window_ms,
    })
}

/// Decorrelation diagnostics of the latency *level* process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecorrelationReport {
    /// First lag (in windows) where the ACF of per-window mean latency
    /// drops below 1/e; `None` if it stays correlated through `max_lag`.
    pub decorrelation_windows: Option<usize>,
    /// The same, in milliseconds.
    pub decorrelation_ms: Option<i64>,
    /// Window length used, ms.
    pub window_ms: i64,
    /// Approximate number of independent latency excursions in the span —
    /// the effective sample size of the unbiased estimate (DESIGN.md §8).
    pub effective_excursions: Option<f64>,
}

/// Estimate how long the latency level stays correlated, from the ACF of
/// the per-window mean-latency series (empty windows are bridged by the
/// previous window's mean, keeping the series regular).
pub fn decorrelation_report(
    log: &LogView<'_>,
    window_ms: i64,
    max_lag: usize,
) -> Result<DecorrelationReport, AutoSensError> {
    let series = log.latency_series().map_err(AutoSensError::from)?;
    if series.is_empty() {
        return Err(AutoSensError::EmptySlice(
            "decorrelation diagnostics".into(),
        ));
    }
    let windows = aggregate_windows(&series, window_ms).map_err(AutoSensError::from)?;
    let mut means = Vec::with_capacity(windows.len());
    let mut last = None;
    for w in &windows {
        let v = w.mean.or(last);
        if let Some(v) = v {
            means.push(v);
            last = Some(v);
        }
    }
    if means.len() < max_lag + 2 {
        return Err(AutoSensError::EmptySlice(
            "too few windows for the requested ACF lag".into(),
        ));
    }
    let lag = autosens_stats::autocorr::decorrelation_lag(&means, max_lag)
        .map_err(AutoSensError::from)?;
    let span_ms = (means.len() as i64) * window_ms;
    Ok(DecorrelationReport {
        decorrelation_windows: lag,
        decorrelation_ms: lag.map(|l| l as i64 * window_ms),
        window_ms,
        effective_excursions: lag
            .filter(|&l| l > 0)
            .map(|l| span_ms as f64 / (l as i64 * window_ms) as f64),
    })
}

/// One point of the Figure 2 time-series view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityLatencyPoint {
    /// Window start (ms since epoch).
    pub start_ms: i64,
    /// Action rate in the window, normalized to the series maximum (0..1).
    pub activity: f64,
    /// Mean latency in the window normalized to the series maximum (0..1);
    /// `None` for empty windows.
    pub latency: Option<f64>,
}

/// Build the normalized two-series view of Figure 2 over a time range,
/// using the given window size (the paper normalizes both axes because the
/// absolute values are commercially sensitive; here normalization just
/// makes the two series comparable on one axis).
pub fn activity_latency_series(
    log: &LogView<'_>,
    from_ms: i64,
    to_ms: i64,
    window_ms: i64,
) -> Result<Vec<ActivityLatencyPoint>, AutoSensError> {
    let range = log
        .range(
            autosens_telemetry::time::SimTime(from_ms),
            autosens_telemetry::time::SimTime(to_ms),
        )
        .map_err(AutoSensError::from)?;
    if range.is_empty() {
        return Err(AutoSensError::EmptySlice("activity/latency series".into()));
    }
    let series: Vec<(i64, f64)> = range
        .iter()
        .map(|r| (r.time.millis(), r.latency_ms))
        .collect();
    let windows: Vec<WindowStat> =
        aggregate_windows(&series, window_ms).map_err(AutoSensError::from)?;
    let max_count = windows.iter().map(|w| w.count).max().unwrap_or(1).max(1) as f64;
    let max_latency = windows
        .iter()
        .filter_map(|w| w.mean)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    Ok(windows
        .iter()
        .map(|w| ActivityLatencyPoint {
            start_ms: w.start_ms,
            activity: w.count as f64 / max_count,
            latency: w.mean.map(|m| m / max_latency),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_sim::{generate, Scenario, SimConfig};
    use autosens_telemetry::log::TelemetryLog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn smoke_log() -> TelemetryLog {
        generate(&SimConfig::scenario(Scenario::Smoke)).unwrap().0
    }

    #[test]
    fn simulated_log_shows_locality() {
        let log = smoke_log();
        let mut rng = StdRng::seed_from_u64(1);
        let r = locality_report(&log.view(), &mut rng).unwrap();
        assert!(r.has_locality(), "{r:?}");
        assert!(r.msd_mad_sorted < r.msd_mad_actual);
        assert!(r.msd_mad_actual < r.msd_mad_shuffled);
        assert!((r.msd_mad_shuffled - 1.0).abs() < 0.1);
        assert!(r.von_neumann < 2.0);
        assert_eq!(r.n_samples, log.len());
    }

    #[test]
    fn density_latency_correlation_is_negative() {
        // Within any fixed hour band, slow minutes should see fewer actions.
        // Pooled across the day the diurnal confounder *reverses* the sign
        // (busy hours are slow AND active) — which is exactly the paper's
        // point about confounding. Use a mid-day band to see the preference.
        let log = smoke_log();
        let day_slice = autosens_telemetry::query::Slice::all();
        let _ = day_slice;
        let r = density_latency_correlation(&log.view(), 60_000).unwrap();
        // Pooled correlation may be either sign depending on the balance of
        // confounder vs preference; it must at least be a valid correlation.
        assert!(r.correlation.abs() <= 1.0);
        assert!(r.n_windows > 100);
        assert_eq!(r.window_ms, 60_000);
    }

    #[test]
    fn errors_on_tiny_logs() {
        let log = TelemetryLog::new();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(locality_report(&log.view(), &mut rng).is_err());
        assert!(density_latency_correlation(&log.view(), 60_000).is_err());
        assert!(activity_latency_series(&log.view(), 0, 1000, 100).is_err());
        assert!(decorrelation_report(&log.view(), 60_000, 100).is_err());
    }

    #[test]
    fn decorrelation_report_on_simulated_log() {
        let log = smoke_log();
        let r = decorrelation_report(&log.view(), 60_000, 24 * 60).unwrap();
        // The congestion process has rho 0.985/min (half-life ~46 min);
        // the diurnal component lengthens apparent correlation, so expect
        // a decorrelation time between ~30 min and ~8 h.
        let lag = r.decorrelation_windows.expect("finite decorrelation");
        assert!((30..=480).contains(&lag), "lag = {lag} minutes");
        assert_eq!(r.decorrelation_ms, Some(lag as i64 * 60_000));
        let excursions = r.effective_excursions.expect("defined");
        assert!(excursions > 10.0, "excursions = {excursions}");
    }

    #[test]
    fn activity_latency_series_is_normalized() {
        let log = smoke_log();
        let two_days = 2 * 24 * 3_600_000i64;
        let pts = activity_latency_series(&log.view(), 0, two_days, 60_000).unwrap();
        assert!(pts.len() > 1000);
        let max_act = pts.iter().map(|p| p.activity).fold(0.0, f64::max);
        assert!((max_act - 1.0).abs() < 1e-12);
        for p in &pts {
            assert!(p.activity >= 0.0 && p.activity <= 1.0);
            if let Some(l) = p.latency {
                assert!(l > 0.0 && l <= 1.0);
            }
        }
    }
}
