//! # AutoSens — latency sensitivity from natural experiments
//!
//! A Rust implementation of the AutoSens methodology (Thakkar, Saxena,
//! Padmanabhan — *AutoSens: Inferring Latency Sensitivity of User Activity
//! through Natural Experiments*, ACM IMC 2021).
//!
//! AutoSens estimates how sensitive users are to service latency **without
//! any A/B test or latency injection**, purely from passive telemetry. The
//! key comparison is between two latency distributions:
//!
//! * the **biased** distribution `B` — latencies of the actions users
//!   actually performed, which reflects any avoidance of slow periods; and
//! * the **unbiased** distribution `U` — the latency the service would have
//!   delivered at times unrelated to user behaviour, approximated by
//!   sampling uniformly random instants and taking the temporally-nearest
//!   observed latency.
//!
//! Their ratio `B/U`, smoothed (Savitzky–Golay, window 101, degree 3) and
//! normalized at a reference latency (300 ms), is the **normalized latency
//! preference**: the relative likelihood that users act at each latency
//! level, all else equal.
//!
//! Because both user activity and latency follow the clock, time is a
//! confounder; the pipeline removes it with per-hour-slot **activity
//! factors** `α` (ratios of temporal action rates at matched latency,
//! averaged over latency bins and over multiple reference slots). Content
//! and user-conditioning confounders are handled by slicing (per action
//! type, user class, per-user median-latency quartile).
//!
//! ## Quick start
//!
//! ```no_run
//! use autosens_core::plan::{AnalysisPlan, PlanInput, RunOptions};
//! use autosens_core::AutoSensConfig;
//! use autosens_sim::{generate, Scenario, SimConfig};
//!
//! // Synthesize an OWA-like two-month log (any TelemetryLog works).
//! let (log, _truth) = generate(&SimConfig::scenario(Scenario::Default)).unwrap();
//!
//! let plan = AnalysisPlan::new(AutoSensConfig::default());
//! let out = plan.run(PlanInput::log(&log), RunOptions::default()).unwrap();
//! let pref = &out.report.preference;
//! // Preference is 1.0 at the 300 ms reference and drops as latency grows.
//! assert!((pref.at(300.0).unwrap() - 1.0).abs() < 1e-9);
//! assert!(pref.at(1500.0).unwrap() < 1.0);
//! ```
//!
//! Modules:
//!
//! * [`config`] — [`AutoSensConfig`] with the paper's defaults.
//! * [`biased`] — the `B` histogram.
//! * [`unbiased`] — the `U` estimator (random instants, nearest sample).
//! * [`alpha`] — time-confounder activity factors (§2.4.1, Table 1, Fig 8).
//! * [`preference`] — ratio, smoothing, normalization (§2.3).
//! * [`plan`] — the operator DAG and the single analysis entry point.
//! * [`pipeline`] — the [`AutoSens`] façade and per-slice analyses.
//! * [`lossmodel`] — loss-aware inverse-observation-probability weights.
//! * [`locality`] — the §2.1 diagnostics (Figures 1 and 2).
//! * [`bottleneck`] — the §3.5 preference-vs-bottleneck analysis.
//! * [`report`] — serializable reports and text rendering.

pub mod abandonment;
pub mod alpha;
pub mod biased;
pub mod bottleneck;
pub mod ci;
pub mod compare;
pub mod config;
pub mod error;
pub mod locality;
pub mod lossmodel;
pub mod pipeline;
pub mod plan;
pub mod preference;
pub mod report;
pub mod unbiased;

pub use alpha::{partition_by_group, GroupPartition, Grouping};
pub use config::AutoSensConfig;
pub use error::AutoSensError;
pub use lossmodel::LossModel;
pub use pipeline::{AutoSens, DecaySpec, LossReport, Prepared, WindowedCurve};
pub use plan::{AnalysisPlan, PlanInput, PlanPartials, PreparedMeta, RunOptions};
pub use preference::NormalizedPreference;
