//! The [`AutoSens`] façade: end-to-end analysis of a telemetry log, plus the
//! per-slice drivers behind each of the paper's evaluation sections.

use rand::rngs::StdRng;
use rand::SeedableRng;

use autosens_exec::ExecReport;
use autosens_obs::{Recorder, Span, StageTiming};
use autosens_stats::histogram::Histogram;
use autosens_telemetry::log::{LogView, TelemetryLog};
use autosens_telemetry::loss::{estimate_cell_loss_par, LossCounts};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};
use autosens_telemetry::time::{DayPeriod, Month};
use autosens_telemetry::users::{latency_quartiles, LatencyQuartiles};

use crate::alpha::{
    estimate_alpha, estimate_alpha_corrected, estimate_alpha_with_partition,
    partition_by_group_weighted, AlphaEstimate, GroupPartition, Grouping,
};
use crate::biased::biased_histogram;
use crate::config::AutoSensConfig;
use crate::error::AutoSensError;
use crate::lossmodel::{CellCorrection, LossModel};
use crate::plan::op;
use crate::plan::PreparedMeta;
use crate::preference::NormalizedPreference;
use crate::unbiased::{decay_weight, unbiased_histogram_decayed_par, unbiased_histogram_par};

/// The per-quartile analyses of [`AutoSens::by_latency_quartile`]:
/// quartile index (0 = Q1, fastest users) paired with that slice's result.
pub type QuartileAnalyses = Vec<(usize, Result<AnalysisReport, AutoSensError>)>;

/// The span names of the documented pipeline stages, in execution order —
/// an alias of [`crate::plan::op::STAGE_NAMES`], which derives from the
/// [operator table](crate::plan::op::OPERATORS). Every analysis run (with
/// the α correction enabled) produces exactly one span per stage under
/// its `"analyze"` root.
pub const STAGES: &[&str] = crate::plan::op::STAGE_NAMES;

/// The additional stage traced when a CI bootstrap is requested — an
/// alias of [`crate::plan::op::CI_BOOTSTRAP`]'s name.
pub const CI_STAGE: &str = crate::plan::op::CI_BOOTSTRAP.name;

/// A recoverable data-quality problem the pipeline worked around instead of
/// aborting. An [`AnalysisReport`] carrying degradations is still a valid
/// result; the warnings tell the operator how much the input was repaired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The pipeline stage that recovered (e.g. `"sanitize"`, `"alpha"`).
    pub stage: String,
    /// What was wrong and what was done about it.
    pub detail: String,
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.stage, self.detail)
    }
}

/// A sanitized log ready for the post-sanitize pipeline stages, produced by
/// a caller that has already done the filter / sort / dedup work itself.
///
/// The batch path ([`AutoSens::analyze_slice`]) sanitizes internally; an
/// incremental caller (the streaming engine) maintains sanitized state
/// continuously and enters the pipeline here via
/// [`AutoSens::analyze_prepared`]. For the resulting report to be
/// bit-identical to the batch path, `log` must equal what batch sanitize
/// would produce for the same input: filtered to the slice's successes,
/// stably sorted by time, exact duplicates removed keep-first.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The sanitized (sorted, deduplicated) log of successful actions.
    pub log: TelemetryLog,
    /// Degradations observed while preparing (out-of-order arrival,
    /// duplicates removed, …), in the order batch sanitize would report
    /// them: re-sort first, then duplicate removal.
    pub degradations: Vec<Degradation>,
    /// Records that entered sanitize after filtering (pre-dedup count).
    pub records_in: usize,
    /// Records dropped by deduplication.
    pub records_dropped: usize,
    /// Optional precomputed per-group partition matching `log` exactly; when
    /// present the α stage skips its rescan of the log.
    pub partition: Option<GroupPartition>,
    /// Optional precomputed per-day loss-cell observation counts matching
    /// `log` exactly; when present the lossmodel stage skips its rescan.
    pub loss_counts: Option<LossCounts>,
    /// Optional windowed-decay request: when present, the report also
    /// carries an exponentially-decayed windowed preference curve (see
    /// [`WindowedCurve`]). The lifetime curve is unaffected either way —
    /// the windowed stage runs on its own RNG stream after every lifetime
    /// stage has consumed exactly what it always consumed.
    pub decay: Option<DecaySpec>,
}

/// How to decay the windowed preference curve: each record (and each
/// unbiased draw instant) `t` is weighted `0.5^((frontier_ms - t) /
/// half_life_ms)`, so mass one half-life older than the frontier counts
/// half as much and old regimes fade geometrically instead of being
/// averaged in forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecaySpec {
    /// Decay half-life, in event-time milliseconds (> 0).
    pub half_life_ms: i64,
    /// The freshest instant of the window (normally the stream watermark
    /// or the end of the log); weights are 1 at the frontier and clamp to
    /// 1 beyond it.
    pub frontier_ms: i64,
}

/// The exponentially-decayed windowed preference curve, computed alongside
/// the lifetime curve when the caller supplies a [`DecaySpec`]. Where the
/// lifetime curve averages every regime the log ever saw, the windowed
/// curve tracks the *current* one: an incident that shifts latency shows up
/// here within a couple of half-lives and fades out as fast once it clears.
#[derive(Debug, Clone)]
pub struct WindowedCurve {
    /// The decay spec that produced this curve.
    pub spec: DecaySpec,
    /// The decayed-weight biased histogram `B_w`.
    pub biased: Histogram,
    /// The decayed-weight unbiased histogram `U_w`.
    pub unbiased: Histogram,
    /// Total decayed mass in `B_w` — an effective-sample-size proxy; a
    /// stream idle for many half-lives decays toward zero mass.
    pub effective_mass: f64,
    /// The fitted windowed preference. `None` when the decayed mass no
    /// longer supports a fit (too few supported bins) — the lifetime curve
    /// remains the authoritative answer in that case.
    pub preference: Option<NormalizedPreference>,
}

/// What the lossmodel stage estimated and what the uncorrected analysis
/// would have said, carried alongside a corrected [`AnalysisReport`] so
/// corrected and naive curves can be compared side by side.
#[derive(Debug, Clone)]
pub struct LossReport {
    /// Volume-weighted overall estimated telemetry-loss rate.
    pub overall_rate: f64,
    /// The per-cell corrections applied (inverse-observation-probability
    /// weights).
    pub cells: Vec<CellCorrection>,
    /// The naive preference curve (same config, unit weights); `None` when
    /// the uncorrected histograms no longer support a fit.
    pub naive_preference: Option<NormalizedPreference>,
    /// The naive pooled biased histogram.
    pub naive_biased: Histogram,
    /// The naive pooled unbiased histogram.
    pub naive_unbiased: Histogram,
}

/// A completed analysis of one slice.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The fitted normalized latency preference.
    pub preference: NormalizedPreference,
    /// The α estimate (present when the correction was enabled).
    pub alpha: Option<AlphaEstimate>,
    /// Number of (successful) actions analyzed.
    pub n_actions: u64,
    /// The pooled biased histogram that produced the curve (α-normalized
    /// when the correction is enabled).
    pub biased: Histogram,
    /// The pooled unbiased histogram.
    pub unbiased: Histogram,
    /// When the loss-aware correction actually changed the estimate
    /// (`loss_correct` on and at least one cell flagged): the applied
    /// corrections plus the naive curves for comparison. `None` when the
    /// correction is off or was a no-op — in which case the report is
    /// bit-identical to a `loss_correct: false` run.
    pub loss: Option<LossReport>,
    /// The windowed decayed curve (present only when the caller asked for
    /// one via [`Prepared::decay`]; never part of the batch output).
    pub windowed: Option<WindowedCurve>,
    /// Data-quality problems survived along the way (empty on clean input).
    pub degradations: Vec<Degradation>,
    /// Wall-clock time per pipeline stage (see [`STAGES`]), in execution
    /// order. `None` only for reports built before instrumentation ran
    /// (e.g. deserialized from older artifacts).
    pub stage_timings: Option<Vec<StageTiming>>,
}

/// The AutoSens analysis engine.
#[derive(Debug, Clone)]
pub struct AutoSens {
    config: AutoSensConfig,
    recorder: Recorder,
}

impl AutoSens {
    /// Create an engine with a configuration (validated at analysis time).
    ///
    /// The engine times its stages (so reports carry `stage_timings`) but
    /// does not buffer trace spans; use [`AutoSens::with_recorder`] to
    /// collect a full span tree and per-analysis metrics.
    pub fn new(config: AutoSensConfig) -> Self {
        AutoSens {
            config,
            recorder: Recorder::disabled(),
        }
    }

    /// Create an engine that records spans and metrics into `recorder`.
    pub fn with_recorder(config: AutoSensConfig, recorder: Recorder) -> Self {
        AutoSens { config, recorder }
    }

    /// The engine's recorder (drain it with [`Recorder::finish`] after a
    /// run to obtain the span tree; its metrics registry holds the
    /// pipeline counters).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AutoSensConfig {
        &self.config
    }

    /// Feed one data-parallel job's scheduling report into the obs layer:
    /// a chunk counter plus one child span per worker (timing carried in
    /// the `wall_ms` field — the work already happened).
    fn record_exec(&self, parent: &Span, exec: &ExecReport) {
        self.recorder
            .metrics()
            .counter("autosens_exec_chunks_total")
            .add(exec.n_chunks as u64);
        for w in &exec.workers {
            let mut span = parent.child("exec_worker");
            span.field("job", exec.label.clone());
            span.field("worker", w.worker);
            span.field("chunks", w.chunks);
            span.field("steals", w.steals);
            span.field("wall_ms", w.wall_ms);
            span.finish();
        }
    }

    /// Analyze a full log (successful actions only, as in the paper).
    #[deprecated(note = "use plan::AnalysisPlan::run with PlanInput::log — \
                         the single analysis entry point")]
    pub fn analyze(&self, log: &TelemetryLog) -> Result<AnalysisReport, AutoSensError> {
        self.analyze_view_impl(&log.view(), &Slice::all())
    }

    /// Analyze one slice of a log.
    #[deprecated(note = "use plan::AnalysisPlan::run with PlanInput::slice — \
                         the single analysis entry point")]
    pub fn analyze_slice(
        &self,
        log: &TelemetryLog,
        slice: &Slice,
    ) -> Result<AnalysisReport, AutoSensError> {
        self.analyze_view_impl(&log.view(), slice)
    }

    /// Analyze one slice of a borrowed [`LogView`].
    #[deprecated(note = "use plan::AnalysisPlan::run with PlanInput::view — \
                         the single analysis entry point")]
    pub fn analyze_view(
        &self,
        view: &LogView<'_>,
        slice: &Slice,
    ) -> Result<AnalysisReport, AutoSensError> {
        self.analyze_view_impl(view, slice)
    }

    /// The batch pipeline over a borrowed view — the zero-copy ingest
    /// path. A memory-mapped container's columns flow from disk to the
    /// analysis kernels through this without materializing a row; the
    /// log/slice input shapes are exactly this over `log.view()`, so all
    /// shapes produce bit-identical reports for the same rows.
    pub(crate) fn analyze_view_impl(
        &self,
        view: &LogView<'_>,
        slice: &Slice,
    ) -> Result<AnalysisReport, AutoSensError> {
        // Validate the configuration before doing any work.
        self.config.binner()?;
        let mut degradations = Vec::new();
        let mut timings: Vec<StageTiming> = Vec::new();
        let root = self.recorder.root("analyze");

        // Sanitize: real telemetry arrives out of order (shard merges, clock
        // skew) and duplicated (re-delivered upload batches). Repair what is
        // repairable and record the repair instead of failing. Slicing
        // re-sorts as a side effect, so the order check looks at the input.
        let mut span = root.child(op::SANITIZE.name);
        if !view.is_sorted() {
            degradations.push(Degradation {
                stage: op::SANITIZE.name.into(),
                detail: "records arrived out of time order; re-sorted".into(),
            });
        }
        let (selected, filter_report) = slice
            .clone()
            .successes()
            .select_par_view(view, self.config.threads)?;
        self.record_exec(&span, &filter_report);
        let records_in = selected.len();
        // A selection over a sorted log is already in time order, so the
        // whole sanitize stage runs over the borrowed view without copying
        // a single row. Degraded (out-of-order) input falls back to one
        // materialized copy, exactly the old filter/sort/dedup sequence.
        let owned;
        let (sub, removed, copied) = if selected.is_sorted() {
            let (clean, removed) = selected.dedup_exact_par(self.config.threads);
            (clean, removed, 0)
        } else {
            let mut m = selected.materialize();
            m.ensure_sorted();
            let removed = m.dedup_exact_par(self.config.threads);
            owned = m;
            (owned.view(), removed, records_in)
        };
        if removed > 0 {
            degradations.push(Degradation {
                stage: op::SANITIZE.name.into(),
                detail: format!("removed {removed} exact duplicate records"),
            });
        }
        span.field("records_in", records_in);
        span.field("records_dropped", removed);
        timings.push(StageTiming {
            stage: op::SANITIZE.name.into(),
            wall_ms: span.finish(),
        });
        self.finish_analysis(
            &sub,
            degradations,
            records_in,
            removed,
            copied,
            None,
            None,
            None,
            root,
            timings,
        )
    }

    /// Run the post-sanitize pipeline stages over an externally prepared
    /// log (see [`Prepared`]).
    #[deprecated(note = "use plan::AnalysisPlan::run with PlanInput::prepared — \
                         the single analysis entry point")]
    pub fn analyze_prepared(&self, prepared: Prepared) -> Result<AnalysisReport, AutoSensError> {
        let Prepared {
            log,
            degradations,
            records_in,
            records_dropped,
            partition,
            loss_counts,
            decay,
        } = prepared;
        self.analyze_prepared_raw(
            &log,
            degradations,
            records_in,
            records_dropped,
            partition,
            loss_counts,
            decay,
        )
    }

    /// The plan layer's prepared-input path (see
    /// [`PlanInput::Prepared`](crate::plan::PlanInput::Prepared)):
    /// unbundle the cached partials and run everything past sanitize.
    ///
    /// This is the incremental entry: the streaming engine merges its
    /// shard state into a [`PreparedMeta`] and obtains an
    /// [`AnalysisReport`] bit-identical to what the batch path would
    /// produce over the same records — every RNG-bearing stage runs from
    /// the same `StdRng::seed_from_u64(config.seed)` over the same
    /// sanitized record sequence. The run still traces one span per
    /// documented stage (the `"sanitize"` span carries the caller's
    /// counts; its wall time reflects only bookkeeping).
    pub(crate) fn analyze_prepared_impl(
        &self,
        log: &TelemetryLog,
        meta: PreparedMeta,
    ) -> Result<AnalysisReport, AutoSensError> {
        let PreparedMeta {
            degradations,
            records_in,
            records_dropped,
            partials,
            decay,
        } = meta;
        let (partition, loss_counts) = match partials {
            Some(p) => (Some(p.partition), Some(p.loss)),
            None => (None, None),
        };
        self.analyze_prepared_raw(
            log,
            degradations,
            records_in,
            records_dropped,
            partition,
            loss_counts,
            decay,
        )
    }

    /// Shared body of the prepared paths: a bookkeeping sanitize span,
    /// then everything downstream.
    #[allow(clippy::too_many_arguments)]
    fn analyze_prepared_raw(
        &self,
        log: &TelemetryLog,
        degradations: Vec<Degradation>,
        records_in: usize,
        records_dropped: usize,
        partition: Option<GroupPartition>,
        loss_counts: Option<LossCounts>,
        decay: Option<DecaySpec>,
    ) -> Result<AnalysisReport, AutoSensError> {
        log.require_sorted()?;
        let root = self.recorder.root("analyze");
        let mut timings: Vec<StageTiming> = Vec::new();
        let mut span = root.child(op::SANITIZE.name);
        span.field("records_in", records_in);
        span.field("records_dropped", records_dropped);
        timings.push(StageTiming {
            stage: op::SANITIZE.name.into(),
            wall_ms: span.finish(),
        });
        self.finish_analysis(
            &log.view(),
            degradations,
            records_in,
            records_dropped,
            0,
            partition,
            loss_counts,
            decay,
            root,
            timings,
        )
    }

    /// Everything downstream of sanitize: grouping, α estimation, the
    /// biased/unbiased PDFs, smoothing and normalization, metrics, and
    /// report assembly. Shared verbatim by the batch and prepared entry
    /// points — this is what makes streaming snapshots bit-identical to
    /// batch analyses.
    #[allow(clippy::too_many_arguments)]
    fn finish_analysis(
        &self,
        sub: &LogView<'_>,
        mut degradations: Vec<Degradation>,
        records_in: usize,
        removed: usize,
        copied: usize,
        partition: Option<GroupPartition>,
        loss_counts: Option<LossCounts>,
        decay: Option<DecaySpec>,
        mut root: Span,
        mut timings: Vec<StageTiming>,
    ) -> Result<AnalysisReport, AutoSensError> {
        let binner = self.config.binner()?;
        if sub.is_empty() {
            return Err(AutoSensError::EmptySlice(
                "slice selected no successful actions".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Loss model: estimate per-cell telemetry loss from in-band
        // evidence (duplicate/sequence-gap + volume-shortfall signals on
        // the sanitized view). The stage always runs — the loss-rate
        // gauges report even when the correction is disabled — but it
        // consumes no randomness, so an inactive correction leaves every
        // downstream bit unchanged.
        let mut span = root.child(op::LOSSMODEL.name);
        let counts =
            loss_counts.unwrap_or_else(|| LossCounts::from_view_par(sub, self.config.threads));
        let evidence = estimate_cell_loss_par(sub, &counts, self.config.threads);
        let model = LossModel::from_evidence(&evidence);
        let correct = self.config.loss_correct && !model.is_noop();
        span.field("cells_flagged", model.cells.len());
        span.field("active", usize::from(correct));
        {
            let metrics = self.recorder.metrics();
            metrics.gauge("autosens_loss_rate").set(model.overall_rate);
            for c in &model.cells {
                metrics
                    .gauge(&format!("autosens_loss_rate_{}", c.label))
                    .set(c.rate);
            }
        }
        timings.push(StageTiming {
            stage: op::LOSSMODEL.name.into(),
            wall_ms: span.finish(),
        });

        let grouping = if self.config.weekday_weekend_slots {
            Grouping::HourSlotsByDayKind
        } else {
            Grouping::HourSlots
        };
        let (biased, unbiased, alpha, naive) = if self.config.alpha_correction {
            let mut span = root.child(op::ALPHA.name);
            span.field("groups", grouping.n_groups());
            // With an active correction the α system is solved twice from
            // one set of inputs (one RNG-bearing draw stage): once naive,
            // once with the loss weights applied to the biased masses.
            let (est, naive_est) = if correct {
                let (naive_est, est) = estimate_alpha_corrected(
                    sub,
                    &binner,
                    grouping,
                    &self.config,
                    &mut rng,
                    partition,
                    &model,
                )?;
                (est, Some(naive_est))
            } else {
                let est = estimate_alpha_with_partition(
                    sub,
                    &binner,
                    grouping,
                    &self.config,
                    &mut rng,
                    partition,
                )?;
                (est, None)
            };
            for r in &naive_est.as_ref().unwrap_or(&est).exec_reports {
                self.record_exec(&span, r);
            }
            // Groups with data but no usable α are dropped from the pooled
            // histograms; surface each exclusion as a degradation so the
            // operator knows which time windows the curve no longer covers.
            for g in &est.groups {
                if g.n_actions > 0 && g.alpha.is_none() {
                    degradations.push(Degradation {
                        stage: op::ALPHA.name.into(),
                        detail: format!(
                            "group {} ({} actions) excluded: no usable alpha",
                            g.label, g.n_actions
                        ),
                    });
                }
            }
            timings.push(StageTiming {
                stage: op::ALPHA.name.into(),
                wall_ms: span.finish(),
            });
            let span = root.child(op::BIASED_PDF.name);
            let b = est.normalized_biased(&binner)?;
            let naive_b = naive_est
                .as_ref()
                .map(|n| n.normalized_biased(&binner))
                .transpose()?;
            timings.push(StageTiming {
                stage: op::BIASED_PDF.name.into(),
                wall_ms: span.finish(),
            });
            let span = root.child(op::UNBIASED_PDF.name);
            let u = est.pooled_unbiased(&binner)?;
            let naive_u = naive_est
                .as_ref()
                .map(|n| n.pooled_unbiased(&binner))
                .transpose()?;
            timings.push(StageTiming {
                stage: op::UNBIASED_PDF.name.into(),
                wall_ms: span.finish(),
            });
            (b, u, Some(est), naive_b.zip(naive_u))
        } else {
            let span = root.child(op::BIASED_PDF.name);
            let naive_b = biased_histogram(sub, &binner);
            let b = if correct {
                // Reweight without α: the pooled biased histogram is the
                // per-record weighted sum (cell × day factor). The weights
                // depend on each record's calendar day, so a precomputed
                // unit-weight partition cannot be reused here — the
                // weighted rescan is the only loss-correct path over the
                // view.
                let (wpart, report) =
                    partition_by_group_weighted(sub, &binner, &model, self.config.threads)?;
                self.record_exec(&span, &report);
                if wpart.n_records() != sub.len() as u64 {
                    return Err(AutoSensError::Internal(format!(
                        "group partition covers {} actions, log has {}",
                        wpart.n_records(),
                        sub.len()
                    )));
                }
                wpart.pooled_biased(None)?
            } else {
                naive_b.clone()
            };
            timings.push(StageTiming {
                stage: op::BIASED_PDF.name.into(),
                wall_ms: span.finish(),
            });
            let mut span = root.child(op::UNBIASED_PDF.name);
            span.field("draws", self.config.unbiased_draws);
            let (u, draw_report) = unbiased_histogram_par(
                sub,
                &binner,
                self.config.unbiased_draws,
                self.config.threads,
                &mut rng,
            )?;
            self.record_exec(&span, &draw_report);
            timings.push(StageTiming {
                stage: op::UNBIASED_PDF.name.into(),
                wall_ms: span.finish(),
            });
            let naive = correct.then(|| (naive_b, u.clone()));
            (b, u, None, naive)
        };

        let preference = NormalizedPreference::fit_traced(
            &biased,
            &unbiased,
            &self.config,
            &root,
            &mut timings,
        )?;

        // The naive side-channel curve re-fits with the same config but no
        // tracing (the smoothing/normalization stage spans describe the
        // corrected curve, which is the report's primary output).
        let loss = naive.map(|(naive_biased, naive_unbiased)| LossReport {
            overall_rate: model.overall_rate,
            cells: model.cells.clone(),
            naive_preference: NormalizedPreference::fit(
                &naive_biased,
                &naive_unbiased,
                &self.config,
            )
            .ok(),
            naive_biased,
            naive_unbiased,
        });

        // Windowed decayed curve: an incident-tracking view of the same
        // records, computed last on its own RNG stream so that — present or
        // absent — every lifetime stage above keeps its exact byte output.
        let windowed = decay
            .map(|spec| self.windowed_curve(sub, spec, &root, &mut timings))
            .transpose()?;

        let metrics = self.recorder.metrics();
        metrics.counter("autosens_core_analyses_total").inc();
        metrics
            .counter("autosens_core_records_read_total")
            .add(records_in as u64);
        metrics
            .counter("autosens_core_records_dropped_total")
            .add(removed as u64);
        metrics
            .counter("autosens_core_degradations_total")
            .add(degradations.len() as u64);
        // Zero-copy accounting: rows analyzed through borrowed views vs
        // rows physically copied to repair degraded input. Both register
        // (even at zero) so batch and streaming runs expose the same set.
        metrics
            .counter("autosens_core_view_rows_total")
            .add(sub.len() as u64);
        metrics
            .counter("autosens_core_rows_copied_total")
            .add(copied as u64);
        for d in &degradations {
            metrics
                .counter(&format!("autosens_core_degradations_{}_total", d.stage))
                .inc();
        }
        root.field("n_actions", sub.len());
        root.field("degradations", degradations.len());

        Ok(AnalysisReport {
            preference,
            alpha,
            n_actions: sub.len() as u64,
            biased,
            unbiased,
            loss,
            windowed,
            degradations,
            stage_timings: Some(timings),
        })
    }

    /// Compute the exponentially-decayed windowed curve (see
    /// [`WindowedCurve`]): a decayed-weight sweep for `B_w`, the decayed
    /// draw estimator for `U_w`, and a fit with the same smoothing /
    /// normalization config as the lifetime curve but no α correction —
    /// the decayed horizon covers too few occurrences of each hour slot
    /// for stable per-slot activity factors.
    fn windowed_curve(
        &self,
        sub: &LogView<'_>,
        spec: DecaySpec,
        root: &Span,
        timings: &mut Vec<StageTiming>,
    ) -> Result<WindowedCurve, AutoSensError> {
        if spec.half_life_ms <= 0 {
            return Err(AutoSensError::BadConfig(
                "decay half-life must be > 0 ms".into(),
            ));
        }
        let binner = self.config.binner()?;
        let mut span = root.child(op::WINDOWED_CURVE.name);
        span.field("half_life_ms", spec.half_life_ms as u64);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xDECA);
        let mut biased = Histogram::new(binner.clone());
        for i in 0..sub.len() {
            biased.record_weighted(
                sub.latency_at(i),
                decay_weight(sub.time_at(i), spec.frontier_ms, spec.half_life_ms),
            );
        }
        let (unbiased, draw_report) = unbiased_histogram_decayed_par(
            sub,
            &binner,
            spec.half_life_ms,
            spec.frontier_ms,
            self.config.unbiased_draws,
            self.config.threads,
            &mut rng,
        )?;
        self.record_exec(&span, &draw_report);
        let effective_mass = biased.total();
        let preference = NormalizedPreference::fit(&biased, &unbiased, &self.config).ok();
        span.field("effective_mass", effective_mass);
        span.field("fit", u64::from(preference.is_some()));
        timings.push(StageTiming {
            stage: op::WINDOWED_CURVE.name.into(),
            wall_ms: span.finish(),
        });
        Ok(WindowedCurve {
            spec,
            biased,
            unbiased,
            effective_mass,
            preference,
        })
    }

    /// §3.2 (Figure 4): one analysis per action type, on a base slice.
    ///
    /// Slices are analyzed in parallel; per-slice failures are returned
    /// alongside the successes so a sparse slice does not sink the batch.
    pub fn by_action_type(
        &self,
        log: &TelemetryLog,
        base: &Slice,
    ) -> Vec<(ActionType, Result<AnalysisReport, AutoSensError>)> {
        let slices: Vec<(ActionType, Slice)> = ActionType::analyzed()
            .into_iter()
            .map(|a| (a, base.clone().action(a)))
            .collect();
        self.parallel_analyses(log, slices)
    }

    /// §3.3 (Figure 5): one analysis per user class.
    pub fn by_user_class(
        &self,
        log: &TelemetryLog,
        base: &Slice,
    ) -> Vec<(UserClass, Result<AnalysisReport, AutoSensError>)> {
        let slices: Vec<(UserClass, Slice)> = UserClass::all()
            .into_iter()
            .map(|c| (c, base.clone().class(c)))
            .collect();
        self.parallel_analyses(log, slices)
    }

    /// §3.4 (Figure 6): quartile users by per-user median latency over the
    /// base slice, then analyze each quartile. Returns the quartile
    /// assignment alongside the four analyses (Q1 = fastest first).
    pub fn by_latency_quartile(
        &self,
        log: &TelemetryLog,
        base: &Slice,
        min_actions_per_user: usize,
    ) -> Result<(LatencyQuartiles, QuartileAnalyses), AutoSensError> {
        let selected = base.clone().successes().select(log);
        let owned;
        let sub = if selected.is_sorted() {
            selected
        } else {
            owned = selected.materialize();
            owned.view()
        };
        let quartiles = latency_quartiles(&sub, min_actions_per_user).ok_or_else(|| {
            AutoSensError::EmptySlice("too few eligible users for quartiles".into())
        })?;
        let slices: Vec<(usize, Slice)> = (0..4)
            .map(|q| (q, base.clone().users(quartiles.groups[q].clone())))
            .collect();
        let results = self.parallel_analyses(log, slices);
        Ok((quartiles, results))
    }

    /// §3.6 (Figure 7): one analysis per 6-hour day period.
    pub fn by_day_period(
        &self,
        log: &TelemetryLog,
        base: &Slice,
    ) -> Vec<(DayPeriod, Result<AnalysisReport, AutoSensError>)> {
        let slices: Vec<(DayPeriod, Slice)> = DayPeriod::all()
            .into_iter()
            .map(|p| (p, base.clone().period(p)))
            .collect();
        self.parallel_analyses(log, slices)
    }

    /// §3.7 (Figure 9): one analysis per calendar month.
    pub fn by_month(
        &self,
        log: &TelemetryLog,
        base: &Slice,
        months: &[Month],
    ) -> Vec<(Month, Result<AnalysisReport, AutoSensError>)> {
        let slices: Vec<(Month, Slice)> =
            months.iter().map(|&m| (m, base.clone().month(m))).collect();
        self.parallel_analyses(log, slices)
    }

    /// Analyze a slice with a bootstrap confidence band.
    #[deprecated(note = "use plan::AnalysisPlan::run with RunOptions::with_ci — \
                         the single analysis entry point")]
    pub fn analyze_slice_with_ci(
        &self,
        log: &TelemetryLog,
        slice: &Slice,
        replicates: usize,
        level: f64,
    ) -> Result<(AnalysisReport, crate::ci::PreferenceCi), AutoSensError> {
        let mut report = self.analyze_view_impl(&log.view(), slice)?;
        let ci = self.ci_impl(&mut report, replicates, level)?;
        Ok((report, ci))
    }

    /// Analyze a borrowed view with a bootstrap confidence band.
    #[deprecated(note = "use plan::AnalysisPlan::run with RunOptions::with_ci — \
                         the single analysis entry point")]
    pub fn analyze_view_with_ci(
        &self,
        view: &LogView<'_>,
        slice: &Slice,
        replicates: usize,
        level: f64,
    ) -> Result<(AnalysisReport, crate::ci::PreferenceCi), AutoSensError> {
        let mut report = self.analyze_view_impl(view, slice)?;
        let ci = self.ci_impl(&mut report, replicates, level)?;
        Ok((report, ci))
    }

    /// The optional `ci_bootstrap` operator: fit a bootstrap confidence
    /// band (see [`crate::ci`]) over a completed report's pooled
    /// histograms and append its stage timing. Runs on its own RNG
    /// stream (`seed ^ 0xC1`), so mapped and owned inputs produce
    /// bit-identical bands.
    pub(crate) fn ci_impl(
        &self,
        report: &mut AnalysisReport,
        replicates: usize,
        level: f64,
    ) -> Result<crate::ci::PreferenceCi, AutoSensError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xC1);
        let mut span = self.recorder.root(op::CI_BOOTSTRAP.name);
        span.field("replicates_requested", replicates);
        let (ci, exec_report) = crate::ci::preference_ci_traced(
            &report.biased,
            &report.unbiased,
            &self.config,
            replicates,
            level,
            &mut rng,
        )?;
        self.record_exec(&span, &exec_report);
        span.field("replicates_ok", ci.replicates);
        self.recorder
            .metrics()
            .counter("autosens_core_bootstrap_replicates_total")
            .add(ci.replicates as u64);
        let wall_ms = span.finish();
        if let Some(timings) = report.stage_timings.as_mut() {
            timings.push(StageTiming {
                stage: op::CI_BOOTSTRAP.name.into(),
                wall_ms,
            });
        }
        Ok(ci)
    }

    /// Build the complete serializable analysis bundle for a slice: the
    /// preference curve, per-period activity factors, the natural-
    /// experiment precondition diagnostics, and the bottleneck comparison.
    pub fn full_report(
        &self,
        log: &TelemetryLog,
        slice: &Slice,
        label: impl Into<String>,
    ) -> Result<crate::report::FullReport, AutoSensError> {
        use crate::report::{AlphaRow, FullReport, PreferenceSummary};
        let label = label.into();
        let analysis = self.analyze_view_impl(&log.view(), slice)?;
        let alpha_est = self.alpha_by_period(log, slice)?;
        let selected = slice.clone().successes().select(log);
        let owned;
        let sub = if selected.is_sorted() {
            selected
        } else {
            owned = selected.materialize();
            owned.view()
        };
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xF0);
        let locality = crate::locality::locality_report(&sub, &mut rng)?;
        let density = crate::locality::density_latency_correlation(&sub, 60_000)?;
        let decorrelation = crate::locality::decorrelation_report(&sub, 60_000, 24 * 60).ok();
        let bottleneck = crate::bottleneck::bottleneck_report(&analysis.preference, 500.0);
        Ok(FullReport {
            label: label.clone(),
            n_actions: analysis.n_actions,
            preference: PreferenceSummary::from_report(
                label,
                &analysis,
                &crate::report::default_grid(),
            ),
            alpha_by_period: alpha_est
                .groups
                .iter()
                .map(|g| AlphaRow {
                    label: g.label.clone(),
                    alpha: g.alpha,
                    n_actions: g.n_actions,
                })
                .collect(),
            locality,
            density,
            decorrelation,
            bottleneck,
        })
    }

    /// §3.6 (Figure 8): the activity factor per day period, with its
    /// per-latency-bin series, using the paper's 8am–2pm reference.
    pub fn alpha_by_period(
        &self,
        log: &TelemetryLog,
        base: &Slice,
    ) -> Result<AlphaEstimate, AutoSensError> {
        let binner = self.config.binner()?;
        let selected = base.clone().successes().select(log);
        let owned;
        let sub = if selected.is_sorted() {
            selected
        } else {
            owned = selected.materialize();
            owned.view()
        };
        if sub.is_empty() {
            return Err(AutoSensError::EmptySlice("alpha_by_period".into()));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xA1FA);
        // Force the morning period as primary reference by reordering:
        // estimate normally, then rescale every alpha by the morning value.
        let mut est = estimate_alpha(&sub, &binner, Grouping::DayPeriods, &self.config, &mut rng)?;
        let morning = 0usize; // group 0 = Morning8to14 by Grouping order
        if let Some(m_alpha) = est.groups[morning].alpha {
            for g in &mut est.groups {
                if let Some(a) = g.alpha.as_mut() {
                    *a /= m_alpha;
                }
            }
            // Rescale the per-bin series to the same convention. The series
            // is relative to the primary (largest) group; dividing by the
            // morning mean re-expresses it against the morning period.
            for g in &mut est.groups {
                for (_, a) in &mut g.per_bin {
                    *a /= m_alpha;
                }
            }
        }
        Ok(est)
    }

    /// Run labeled slice analyses through the work-stealing scheduler, one
    /// slice per chunk. Results come back in input order regardless of the
    /// worker count, and a slice whose analysis panics yields a per-slice
    /// [`AutoSensError::Internal`] instead of sinking the whole batch.
    fn parallel_analyses<K: Send + Sync + Copy>(
        &self,
        log: &TelemetryLog,
        slices: Vec<(K, Slice)>,
    ) -> Vec<(K, Result<AnalysisReport, AutoSensError>)> {
        let (out, report) = autosens_exec::run_chunks(
            "parallel_analyses",
            slices.len(),
            1,
            self.config.threads,
            |chunk, _| {
                let (key, slice) = &slices[chunk];
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.analyze_view_impl(&log.view(), slice)
                }))
                .unwrap_or_else(|payload| {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "unknown panic".into());
                    Err(AutoSensError::Internal(format!(
                        "analysis worker panicked: {msg}"
                    )))
                });
                (*key, result)
            },
        )
        // Invariant: the per-chunk closure catches its own unwinds, so the
        // job itself cannot fail.
        .expect("slice analyses catch their own panics");
        self.recorder
            .metrics()
            .counter("autosens_exec_chunks_total")
            .add(report.n_chunks as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanInput, RunOptions};
    use autosens_sim::{generate, Scenario, SimConfig};

    fn smoke_log() -> TelemetryLog {
        let (log, _) = generate(&SimConfig::scenario(Scenario::Smoke)).unwrap();
        log
    }

    fn fast_config() -> AutoSensConfig {
        AutoSensConfig {
            unbiased_draws: 48_000,
            min_supported_bins: 15,
            ..AutoSensConfig::default()
        }
    }

    fn run(engine: &AutoSens, log: &TelemetryLog) -> Result<AnalysisReport, AutoSensError> {
        engine
            .plan()
            .run(PlanInput::log(log), RunOptions::default())
            .map(|o| o.report)
    }

    fn run_prepared(
        engine: &AutoSens,
        log: &TelemetryLog,
        meta: PreparedMeta,
    ) -> Result<AnalysisReport, AutoSensError> {
        engine
            .plan()
            .run(PlanInput::prepared(log, meta), RunOptions::default())
            .map(|o| o.report)
    }

    #[test]
    fn analyze_produces_a_normalized_curve() {
        let log = smoke_log();
        let engine = AutoSens::new(fast_config());
        let report = run(&engine, &log).unwrap();
        assert!(report.n_actions > 1000);
        let pref = &report.preference;
        assert!((pref.at(300.0).unwrap() - 1.0).abs() < 1e-9);
        // The planted preference decreases with latency.
        let hi = pref.at(1200.0);
        if let Some(hi) = hi {
            assert!(hi < 1.0, "pref(1200) = {hi}");
        }
        assert!(report.alpha.is_some());
    }

    #[test]
    fn analyze_is_deterministic() {
        let log = smoke_log();
        let engine = AutoSens::new(fast_config());
        let a = run(&engine, &log).unwrap();
        let b = run(&engine, &log).unwrap();
        assert_eq!(a.preference.series(), b.preference.series());
    }

    #[test]
    fn empty_slice_is_an_error() {
        let log = TelemetryLog::new();
        let engine = AutoSens::new(fast_config());
        assert!(matches!(
            run(&engine, &log),
            Err(AutoSensError::EmptySlice(_))
        ));
    }

    #[test]
    fn alpha_correction_can_be_disabled() {
        let log = smoke_log();
        let mut cfg = fast_config();
        cfg.alpha_correction = false;
        let engine = AutoSens::new(cfg);
        let report = run(&engine, &log).unwrap();
        assert!(report.alpha.is_none());
        assert!(report.preference.at(300.0).is_some());
    }

    #[test]
    fn by_action_type_returns_all_four() {
        let log = smoke_log();
        let engine = AutoSens::new(fast_config());
        let results = engine.by_action_type(&log, &Slice::all());
        assert_eq!(results.len(), 4);
        let ok = results.iter().filter(|(_, r)| r.is_ok()).count();
        assert!(ok >= 3, "expected most action slices to fit, got {ok}");
    }

    #[test]
    fn by_user_class_returns_both() {
        let log = smoke_log();
        let engine = AutoSens::new(fast_config());
        let results = engine.by_user_class(&log, &Slice::all());
        assert_eq!(results.len(), 2);
        for (_, r) in &results {
            assert!(r.is_ok());
        }
    }

    #[test]
    fn by_quartile_partitions_users() {
        let log = smoke_log();
        let engine = AutoSens::new(fast_config());
        let (quartiles, results) = engine.by_latency_quartile(&log, &Slice::all(), 10).unwrap();
        assert_eq!(results.len(), 4);
        let total: usize = quartiles.groups.iter().map(|g| g.len()).sum();
        assert!(total > 100, "users partitioned: {total}");
    }

    #[test]
    fn batch_analyses_return_slices_in_input_order() {
        // The scheduler reassembles per-slice results by chunk index, so
        // batch outputs follow the input slice order for any worker count.
        let log = smoke_log();
        for threads in [1, 4] {
            let cfg = AutoSensConfig {
                threads,
                ..fast_config()
            };
            let engine = AutoSens::new(cfg);
            let actions: Vec<ActionType> = engine
                .by_action_type(&log, &Slice::all())
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            assert_eq!(actions, ActionType::analyzed(), "threads={threads}");
            let periods: Vec<DayPeriod> = engine
                .by_day_period(&log, &Slice::all())
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            assert_eq!(periods, DayPeriod::all().to_vec(), "threads={threads}");
        }
    }

    #[test]
    fn clean_input_reports_no_degradations() {
        let log = smoke_log();
        let engine = AutoSens::new(fast_config());
        let report = run(&engine, &log).unwrap();
        assert!(
            report.degradations.is_empty(),
            "unexpected: {:?}",
            report.degradations
        );
    }

    #[test]
    fn corrupted_input_completes_with_degradations() {
        use autosens_faults::{FaultOp, FaultPlan};
        let log = smoke_log();
        let plan = FaultPlan {
            seed: 0xBAD,
            ops: vec![
                FaultOp::DropBursty {
                    rate: 0.3,
                    mean_burst: 25,
                },
                FaultOp::Duplicate { rate: 0.05 },
                FaultOp::Reorder {
                    rate: 0.05,
                    max_shift_ms: 60_000,
                },
            ],
        };
        let corrupted = plan.apply(&log).unwrap();
        assert!(!corrupted.is_sorted());
        let engine = AutoSens::new(fast_config());
        let report = run(&engine, &corrupted).unwrap();
        // The analysis completes with a curve and structured warnings.
        assert!((report.preference.at(300.0).unwrap() - 1.0).abs() < 1e-9);
        let stages: Vec<&str> = report
            .degradations
            .iter()
            .map(|d| d.stage.as_str())
            .collect();
        assert!(stages.contains(&"sanitize"), "stages: {stages:?}");
        let text = report.degradations[0].to_string();
        assert!(text.starts_with("[sanitize]"), "{text}");
        // Re-sorting and dedup were both reported.
        assert!(report
            .degradations
            .iter()
            .any(|d| d.detail.contains("re-sorted")));
        assert!(report
            .degradations
            .iter()
            .any(|d| d.detail.contains("duplicate")));
    }

    #[test]
    fn analyze_produces_one_span_per_documented_stage() {
        let log = smoke_log();
        let recorder = autosens_obs::Recorder::new();
        let engine = AutoSens::with_recorder(fast_config(), recorder.clone());
        let report = run(&engine, &log).unwrap();
        let tree = recorder.finish();
        assert_eq!(tree.count_named("analyze"), 1, "{}", tree.render());
        for stage in STAGES {
            assert_eq!(
                tree.count_named(stage),
                1,
                "stage {stage} missing or duplicated:\n{}",
                tree.render()
            );
        }
        // Stage timings mirror the span tree (same stages, same order).
        let timings = report.stage_timings.as_ref().unwrap();
        let stages: Vec<&str> = timings.iter().map(|t| t.stage.as_str()).collect();
        assert_eq!(stages, STAGES.to_vec());
        assert!(timings.iter().all(|t| t.wall_ms >= 0.0));
        // Every stage span nests under the analyze root.
        let root_id = tree
            .spans()
            .iter()
            .find(|s| s.name == "analyze")
            .unwrap()
            .id;
        for stage in ["sanitize", "alpha", "biased_pdf", "unbiased_pdf"] {
            let span = tree.spans().iter().find(|s| s.name == stage).unwrap();
            assert_eq!(span.parent, Some(root_id), "{stage} not under analyze");
        }
    }

    #[test]
    fn ci_analysis_adds_the_bootstrap_stage() {
        let log = smoke_log();
        let recorder = autosens_obs::Recorder::new();
        let engine = AutoSens::with_recorder(fast_config(), recorder.clone());
        let out = engine
            .plan()
            .run(PlanInput::log(&log), RunOptions::with_ci(25, 0.95))
            .unwrap();
        let (report, ci) = (out.report, out.ci.unwrap());
        let timings = report.stage_timings.unwrap();
        assert_eq!(timings.last().unwrap().stage, CI_STAGE);
        assert_eq!(recorder.finish().count_named(CI_STAGE), 1);
        assert_eq!(
            recorder
                .metrics()
                .snapshot()
                .counter("autosens_core_bootstrap_replicates_total"),
            Some(ci.replicates as u64)
        );
    }

    #[test]
    fn degradation_counters_match_the_report() {
        use autosens_faults::{FaultOp, FaultPlan};
        let log = smoke_log();
        let plan = FaultPlan {
            seed: 0xBAD2,
            ops: vec![
                FaultOp::Duplicate { rate: 0.05 },
                FaultOp::Reorder {
                    rate: 0.05,
                    max_shift_ms: 60_000,
                },
            ],
        };
        let corrupted = plan.apply(&log).unwrap();
        let recorder = autosens_obs::Recorder::new();
        let engine = AutoSens::with_recorder(fast_config(), recorder.clone());
        let report = run(&engine, &corrupted).unwrap();
        assert!(!report.degradations.is_empty());
        let snap = recorder.metrics().snapshot();
        assert_eq!(
            snap.counter("autosens_core_degradations_total"),
            Some(report.degradations.len() as u64)
        );
        // Per-kind counters partition the total exactly.
        for stage in ["sanitize", "alpha"] {
            let want = report
                .degradations
                .iter()
                .filter(|d| d.stage == stage)
                .count() as u64;
            let got = snap
                .counter(&format!("autosens_core_degradations_{stage}_total"))
                .unwrap_or(0);
            assert_eq!(got, want, "stage {stage}");
        }
        assert_eq!(
            snap.counter("autosens_core_records_dropped_total")
                .unwrap_or(0)
                > 0,
            report
                .degradations
                .iter()
                .any(|d| d.detail.contains("duplicate"))
        );
    }

    #[test]
    fn loss_correction_is_a_noop_on_clean_input() {
        let log = smoke_log();
        let on = run(&AutoSens::new(fast_config()), &log).unwrap();
        assert!(
            on.loss.is_none(),
            "clean input flagged cells: {:?}",
            on.loss.map(|l| l.cells)
        );
        let mut cfg = fast_config();
        cfg.loss_correct = false;
        let off = run(&AutoSens::new(cfg), &log).unwrap();
        // Bit-identical curves and histograms: the inactive correction
        // changes nothing downstream.
        assert_eq!(on.preference.series(), off.preference.series());
        assert_eq!(on.biased.counts(), off.biased.counts());
        assert_eq!(on.unbiased.counts(), off.unbiased.counts());
    }

    #[test]
    fn loss_correction_carries_naive_curves_on_lossy_input() {
        use autosens_faults::{FaultOp, FaultPlan};
        let log = smoke_log();
        let plan = FaultPlan {
            seed: 0x10_55,
            ops: vec![FaultOp::DropBursty {
                rate: 0.3,
                mean_burst: 40,
            }],
        };
        let corrupted = plan.apply(&log).unwrap();
        let report = run(&AutoSens::new(fast_config()), &corrupted).unwrap();
        let loss = report.loss.as_ref().expect("bursty loss goes undetected");
        assert!(loss.overall_rate > 0.0);
        assert!(!loss.cells.is_empty());
        assert!(loss.cells.iter().all(|c| c.weight > 1.0));
        // The naive side channel differs from the corrected primary.
        assert_ne!(report.biased.counts(), loss.naive_biased.counts());
        let naive = loss.naive_preference.as_ref().unwrap();
        assert!((naive.at(300.0).unwrap() - 1.0).abs() < 1e-9);

        // An explicit off-run reproduces the naive curve bit for bit.
        let mut cfg = fast_config();
        cfg.loss_correct = false;
        let off = run(&AutoSens::new(cfg), &corrupted).unwrap();
        assert!(off.loss.is_none());
        assert_eq!(off.biased.counts(), loss.naive_biased.counts());
        assert_eq!(
            off.preference.series(),
            loss.naive_preference.as_ref().unwrap().series()
        );
    }

    #[test]
    fn loss_correction_is_thread_invariant() {
        use autosens_faults::{FaultOp, FaultPlan};
        let log = smoke_log();
        let plan = FaultPlan {
            seed: 0x10_55,
            ops: vec![FaultOp::DropBursty {
                rate: 0.3,
                mean_burst: 40,
            }],
        };
        let corrupted = plan.apply(&log).unwrap();
        let baseline = run(
            &AutoSens::new(AutoSensConfig {
                threads: 1,
                ..fast_config()
            }),
            &corrupted,
        )
        .unwrap();
        assert!(baseline.loss.is_some());
        for threads in [2, 4, 8] {
            let report = run(
                &AutoSens::new(AutoSensConfig {
                    threads,
                    ..fast_config()
                }),
                &corrupted,
            )
            .unwrap();
            assert_eq!(
                baseline.preference.series(),
                report.preference.series(),
                "threads={threads}"
            );
            assert_eq!(
                baseline.biased.counts(),
                report.biased.counts(),
                "threads={threads}"
            );
            let (a, b) = (
                baseline.loss.as_ref().unwrap(),
                report.loss.as_ref().unwrap(),
            );
            assert_eq!(a.naive_biased.counts(), b.naive_biased.counts());
            assert_eq!(
                a.naive_preference.as_ref().unwrap().series(),
                b.naive_preference.as_ref().unwrap().series(),
                "threads={threads}"
            );
        }
    }

    /// A sanitized log plus [`PreparedMeta`] equivalent to what batch
    /// sanitize would produce for the whole log, optionally requesting
    /// the windowed decayed curve.
    fn prepared_from(log: &TelemetryLog, decay: Option<DecaySpec>) -> (TelemetryLog, PreparedMeta) {
        let (selected, _) = Slice::all().successes().select_par(log, 1).unwrap();
        let records_in = selected.len();
        let (clean, removed) = selected.dedup_exact_par(1);
        (
            clean.materialize(),
            PreparedMeta {
                records_in,
                records_dropped: removed,
                decay,
                ..PreparedMeta::default()
            },
        )
    }

    #[test]
    fn prepared_decay_adds_windowed_curve_and_leaves_lifetime_untouched() {
        let log = smoke_log();
        let engine = AutoSens::new(fast_config());
        let (clean, meta) = prepared_from(&log, None);
        let base = run_prepared(&engine, &clean, meta).unwrap();
        assert!(base.windowed.is_none());

        let frontier = clean.view().time_at(clean.view().len() - 1);
        let spec = DecaySpec {
            half_life_ms: 2 * 86_400_000,
            frontier_ms: frontier,
        };
        let (clean, meta) = prepared_from(&log, Some(spec));
        let with = run_prepared(&engine, &clean, meta).unwrap();
        let w = with.windowed.as_ref().expect("windowed curve requested");
        assert_eq!(w.spec, spec);
        assert!(w.effective_mass > 0.0);
        assert!(w.preference.is_some(), "decayed mass should support a fit");

        // The lifetime output is bit-identical whether or not the windowed
        // stage ran: it consumes its own RNG stream after every lifetime
        // stage finished.
        assert_eq!(base.preference.series(), with.preference.series());
        assert_eq!(base.biased.counts(), with.biased.counts());
        assert_eq!(base.unbiased.counts(), with.unbiased.counts());
        assert_eq!(base.n_actions, with.n_actions);

        // The extra stage shows up in the timings only when requested, so
        // batch runs keep exactly the documented stage list.
        let stages = |r: &AnalysisReport| -> Vec<String> {
            r.stage_timings
                .as_ref()
                .unwrap()
                .iter()
                .map(|t| t.stage.clone())
                .collect()
        };
        assert!(!stages(&base).contains(&"windowed_curve".to_string()));
        assert!(stages(&with).contains(&"windowed_curve".to_string()));
    }

    #[test]
    fn windowed_mass_shrinks_with_shorter_half_life() {
        let log = smoke_log();
        let engine = AutoSens::new(fast_config());
        let (clean, _) = prepared_from(&log, None);
        let frontier = clean.view().time_at(clean.view().len() - 1);
        let mass = |hl: i64| {
            let (clean, meta) = prepared_from(
                &log,
                Some(DecaySpec {
                    half_life_ms: hl,
                    frontier_ms: frontier,
                }),
            );
            run_prepared(&engine, &clean, meta)
                .unwrap()
                .windowed
                .unwrap()
                .effective_mass
        };
        let short = mass(6 * 3_600_000);
        let long = mass(4 * 86_400_000);
        assert!(
            short < long,
            "6h mass {short} should be below 4d mass {long}"
        );
    }

    #[test]
    fn nonpositive_half_life_is_rejected() {
        let log = smoke_log();
        let engine = AutoSens::new(fast_config());
        let (clean, meta) = prepared_from(
            &log,
            Some(DecaySpec {
                half_life_ms: 0,
                frontier_ms: 1,
            }),
        );
        assert!(matches!(
            run_prepared(&engine, &clean, meta),
            Err(AutoSensError::BadConfig(_))
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_plan_entry_point() {
        let log = smoke_log();
        let engine = AutoSens::new(fast_config());
        let base = run(&engine, &log).unwrap();
        let view = log.view();
        let all = Slice::all();
        let a = engine.analyze(&log).unwrap();
        let b = engine.analyze_slice(&log, &all).unwrap();
        let c = engine.analyze_view(&view, &all).unwrap();
        for (label, r) in [("analyze", &a), ("analyze_slice", &b), ("analyze_view", &c)] {
            assert_eq!(base.preference.series(), r.preference.series(), "{label}");
            assert_eq!(base.biased.counts(), r.biased.counts(), "{label}");
            assert_eq!(base.n_actions, r.n_actions, "{label}");
        }

        let (clean, meta) = prepared_from(&log, None);
        let p = engine
            .analyze_prepared(Prepared {
                log: clean,
                degradations: meta.degradations,
                records_in: meta.records_in,
                records_dropped: meta.records_dropped,
                partition: None,
                loss_counts: None,
                decay: meta.decay,
            })
            .unwrap();
        assert_eq!(base.preference.series(), p.preference.series());

        let ci_base = engine
            .plan()
            .run(PlanInput::log(&log), RunOptions::with_ci(25, 0.9))
            .unwrap();
        let (d, ci_d) = engine.analyze_slice_with_ci(&log, &all, 25, 0.9).unwrap();
        let (e, ci_e) = engine.analyze_view_with_ci(&view, &all, 25, 0.9).unwrap();
        let ci = ci_base.ci.unwrap();
        assert_eq!(base.preference.series(), d.preference.series());
        assert_eq!(base.preference.series(), e.preference.series());
        assert_eq!(ci.replicates, ci_d.replicates);
        assert_eq!(ci.band_at(500.0), ci_d.band_at(500.0));
        assert_eq!(ci.band_at(500.0), ci_e.band_at(500.0));
    }

    #[test]
    fn alpha_by_period_has_morning_reference_one() {
        let log = smoke_log();
        let engine = AutoSens::new(fast_config());
        let est = engine.alpha_by_period(&log, &Slice::all()).unwrap();
        assert_eq!(est.groups.len(), 4);
        let morning = est.groups[0].alpha.unwrap();
        assert!((morning - 1.0).abs() < 1e-9, "morning alpha = {morning}");
        // Night activity factor is well below daytime.
        let night = est.groups[3].alpha.unwrap();
        assert!(night < 0.7, "night alpha = {night}");
    }
}
