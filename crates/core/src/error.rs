//! Error type for the AutoSens pipeline.

use std::fmt;

use autosens_stats::StatsError;
use autosens_telemetry::TelemetryError;

/// Errors produced by the AutoSens analysis pipeline.
#[derive(Debug)]
pub enum AutoSensError {
    /// The analyzed slice contained no usable records.
    EmptySlice(String),
    /// The configuration is invalid.
    BadConfig(String),
    /// Not enough well-supported latency bins to produce a curve.
    InsufficientSupport {
        /// What was being estimated.
        what: String,
        /// Number of supported bins found.
        supported: usize,
        /// Number required.
        required: usize,
    },
    /// The reference latency fell outside the supported range of the curve.
    ReferenceUnsupported {
        /// The configured reference latency.
        reference_ms: f64,
    },
    /// A data-dependent computation produced a non-finite value (NaN or ±∞)
    /// that would otherwise silently poison downstream estimates.
    NonFinite {
        /// What was being computed.
        what: String,
    },
    /// An internal failure the pipeline recovered into a typed error rather
    /// than a panic (e.g. an analysis worker thread panicked).
    Internal(String),
    /// An underlying statistics error.
    Stats(StatsError),
    /// An underlying telemetry error.
    Telemetry(TelemetryError),
}

impl fmt::Display for AutoSensError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoSensError::EmptySlice(what) => write!(f, "empty analysis slice: {what}"),
            AutoSensError::BadConfig(why) => write!(f, "invalid AutoSens config: {why}"),
            AutoSensError::InsufficientSupport {
                what,
                supported,
                required,
            } => write!(
                f,
                "insufficient support for {what}: {supported} bins (need {required})"
            ),
            AutoSensError::ReferenceUnsupported { reference_ms } => write!(
                f,
                "reference latency {reference_ms} ms is outside the supported range"
            ),
            AutoSensError::NonFinite { what } => {
                write!(f, "non-finite value while computing {what}")
            }
            AutoSensError::Internal(what) => write!(f, "internal failure: {what}"),
            AutoSensError::Stats(e) => write!(f, "statistics error: {e}"),
            AutoSensError::Telemetry(e) => write!(f, "telemetry error: {e}"),
        }
    }
}

impl std::error::Error for AutoSensError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AutoSensError::Stats(e) => Some(e),
            AutoSensError::Telemetry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for AutoSensError {
    fn from(e: StatsError) -> Self {
        AutoSensError::Stats(e)
    }
}

impl From<TelemetryError> for AutoSensError {
    fn from(e: TelemetryError) -> Self {
        AutoSensError::Telemetry(e)
    }
}

/// A chunk of a data-parallel job panicked: the scheduler captured the
/// unwind and the pipeline surfaces it as a typed internal error (the same
/// containment contract as the per-slice analysis workers).
impl From<autosens_exec::ExecError> for AutoSensError {
    fn from(e: autosens_exec::ExecError) -> Self {
        AutoSensError::Internal(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        let e = AutoSensError::EmptySlice("Feb consumers".into());
        assert!(e.to_string().contains("Feb consumers"));
        let e = AutoSensError::InsufficientSupport {
            what: "B/U ratio".into(),
            supported: 3,
            required: 10,
        };
        assert!(e.to_string().contains("3 bins"));
        let e: AutoSensError = StatsError::SingularMatrix.into();
        assert!(e.source().is_some());
        let e: AutoSensError = TelemetryError::InvalidRecord("x".into()).into();
        assert!(e.source().is_some());
        let e = AutoSensError::ReferenceUnsupported {
            reference_ms: 300.0,
        };
        assert!(e.to_string().contains("300"));
        let e = AutoSensError::BadConfig("bin width".into());
        assert!(e.to_string().contains("bin width"));
        let e = AutoSensError::NonFinite {
            what: "alpha mean".into(),
        };
        assert!(e.to_string().contains("alpha mean"));
        let e = AutoSensError::Internal("worker panicked".into());
        assert!(e.to_string().contains("worker panicked"));
    }
}
