//! Serializable result types and plain-text rendering.
//!
//! The experiment regenerators print the same rows/series the paper's tables
//! and figures report; this module holds the shared formatting helpers and
//! the serde-friendly summary types the CLI emits as JSON.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::bottleneck::BottleneckReport;
use crate::locality::{DecorrelationReport, DensityLatencyReport, LocalityReport};
use crate::pipeline::AnalysisReport;
use crate::preference::NormalizedPreference;

/// A compact, serializable summary of one preference analysis.
///
/// `Serialize`/`Deserialize` are hand-written instead of derived so the
/// `loss` field is **omitted** (not emitted as `null`) when absent: a run
/// with `loss_correct` off — or with no estimated loss — serializes byte
/// for byte like a summary that predates loss correction, which the golden
/// fixture gate depends on.
#[derive(Debug, Clone, PartialEq)]
pub struct PreferenceSummary {
    /// Label of the slice ("SelectMail / Business / Feb", ...).
    pub label: String,
    /// Number of actions analyzed.
    pub n_actions: u64,
    /// Reference latency (ms).
    pub reference_ms: f64,
    /// Fitted span (ms).
    pub span_ms: (f64, f64),
    /// Preference sampled on a fixed latency grid: `(latency, value)`.
    /// When `loss` is present this is the **corrected** curve.
    pub points: Vec<(f64, f64)>,
    /// Loss-correction sidecar: present only when the lossmodel stage
    /// estimated nonzero loss and reweighted the curve.
    pub loss: Option<LossSummary>,
}

/// The loss-correction side of a [`PreferenceSummary`]: what the model
/// estimated, and what the curve would have been without the correction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossSummary {
    /// Volume-weighted overall estimated telemetry-loss rate.
    pub estimated_loss_rate: f64,
    /// Corrected cells: `(label, estimated rate, applied weight)`.
    pub cells: Vec<(String, f64, f64)>,
    /// The naive (uncorrected) curve on the same grid as `points`; empty
    /// when the uncorrected histograms could not support a fit.
    pub naive_points: Vec<(f64, f64)>,
}

impl PreferenceSummary {
    /// Summarize a report, sampling the curve at the given latencies
    /// (out-of-span latencies are skipped).
    pub fn from_report(label: impl Into<String>, report: &AnalysisReport, grid: &[f64]) -> Self {
        PreferenceSummary {
            label: label.into(),
            n_actions: report.n_actions,
            reference_ms: report.preference.reference_ms(),
            span_ms: report.preference.span_ms(),
            points: sample_curve(&report.preference, grid),
            loss: report.loss.as_ref().map(|l| LossSummary {
                estimated_loss_rate: l.overall_rate,
                cells: l
                    .cells
                    .iter()
                    .map(|c| (c.label.clone(), c.rate, c.weight))
                    .collect(),
                naive_points: l
                    .naive_preference
                    .as_ref()
                    .map(|p| sample_curve(p, grid))
                    .unwrap_or_default(),
            }),
        }
    }
}

impl Serialize for PreferenceSummary {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("label".to_string(), self.label.to_value()),
            ("n_actions".to_string(), self.n_actions.to_value()),
            ("reference_ms".to_string(), self.reference_ms.to_value()),
            ("span_ms".to_string(), self.span_ms.to_value()),
            ("points".to_string(), self.points.to_value()),
        ];
        if let Some(loss) = &self.loss {
            fields.push(("loss".to_string(), loss.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for PreferenceSummary {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = match v {
            Value::Object(entries) => entries,
            other => return Err(DeError::type_mismatch("PreferenceSummary (object)", other)),
        };
        fn get<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
            match serde::__field(obj, name) {
                Some(v) => T::from_value(v),
                None => T::from_missing(name),
            }
        }
        Ok(PreferenceSummary {
            label: get(obj, "label")?,
            n_actions: get(obj, "n_actions")?,
            reference_ms: get(obj, "reference_ms")?,
            span_ms: get(obj, "span_ms")?,
            points: get(obj, "points")?,
            loss: get(obj, "loss")?,
        })
    }
}

/// One row of the per-period activity-factor table in a [`FullReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlphaRow {
    /// Period label ("8am-2pm", ...).
    pub label: String,
    /// The activity factor (reference period = 1), when estimable.
    pub alpha: Option<f64>,
    /// Actions in the period.
    pub n_actions: u64,
}

/// A complete, serializable analysis bundle for one slice: everything an
/// operator needs to archive or feed to a dashboard — the preference
/// curve, the activity factors, the natural-experiment precondition
/// diagnostics, and the §3.5 bottleneck comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullReport {
    /// Slice label.
    pub label: String,
    /// Number of successful actions analyzed.
    pub n_actions: u64,
    /// The preference curve summary.
    pub preference: PreferenceSummary,
    /// Per-day-period activity factors (8am–2pm reference).
    pub alpha_by_period: Vec<AlphaRow>,
    /// Figure 1 locality diagnostics.
    pub locality: LocalityReport,
    /// Figure 2 density/latency correlation.
    pub density: DensityLatencyReport,
    /// Latency-level decorrelation estimate (when computable).
    pub decorrelation: Option<DecorrelationReport>,
    /// Drop factors per latency doubling vs. the bottleneck prediction.
    pub bottleneck: BottleneckReport,
}

/// Sample a preference curve at the given latencies, skipping unsupported
/// points.
pub fn sample_curve(pref: &NormalizedPreference, grid: &[f64]) -> Vec<(f64, f64)> {
    grid.iter()
        .filter_map(|&l| pref.at(l).map(|v| (l, v)))
        .collect()
}

/// The default latency grid used when printing curves: every 100 ms from
/// 100 ms to 2500 ms (the span of the paper's figures).
pub fn default_grid() -> Vec<f64> {
    (1..=25).map(|i| i as f64 * 100.0).collect()
}

/// Render rows as a fixed-width text table.
///
/// `headers.len()` must equal the width of every row.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = headers.len();
    for row in rows {
        assert_eq!(row.len(), n_cols, "row width mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n_cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Format a float with 3 decimal places (the precision used in reports).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Write a `(x, y)` series as a two-column CSV string.
pub fn series_csv(header: (&str, &str), series: &[(f64, f64)]) -> String {
    let mut out = format!("{},{}\n", header.0, header.1);
    for (x, y) in series {
        out.push_str(&format!("{x},{y}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_spans_the_figures() {
        let g = default_grid();
        assert_eq!(g.first(), Some(&100.0));
        assert_eq!(g.last(), Some(&2500.0));
        assert_eq!(g.len(), 25);
    }

    #[test]
    fn text_table_renders_aligned() {
        let t = text_table(
            &["latency", "pref"],
            &[
                vec!["500".into(), "0.88".into()],
                vec!["1000".into(), "0.68".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("latency"));
        assert!(lines[2].starts_with("500"));
        // Columns align: "pref" column starts at the same offset everywhere.
        let col = lines[0].find("pref").unwrap();
        assert_eq!(&lines[2][col..col + 4], "0.88");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn text_table_rejects_ragged_rows() {
        text_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn series_csv_format() {
        let csv = series_csv(("x", "y"), &[(1.0, 2.5), (2.0, 3.5)]);
        assert_eq!(csv, "x,y\n1,2.5\n2,3.5\n");
    }

    #[test]
    fn f3_rounds() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f3(1.0), "1.000");
    }

    #[test]
    fn preference_summary_omits_absent_loss() {
        let summary = PreferenceSummary {
            label: "all".into(),
            n_actions: 10,
            reference_ms: 300.0,
            span_ms: (55.0, 1995.0),
            points: vec![(500.0, 0.9)],
            loss: None,
        };
        let json = serde_json::to_string(&summary).unwrap();
        // No `loss` key at all — not even `"loss": null` — so uncorrected
        // output is byte-identical to summaries from before loss correction.
        assert!(!json.contains("loss"));
        let back: PreferenceSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(summary, back);
        // A summary missing the field parses (golden fixtures predate it).
        let legacy: PreferenceSummary = serde_json::from_str(
            r#"{"label":"all","n_actions":10,"reference_ms":300.0,
                "span_ms":[55.0,1995.0],"points":[[500.0,0.9]]}"#,
        )
        .unwrap();
        assert_eq!(legacy, summary);
    }

    #[test]
    fn preference_summary_roundtrips_loss() {
        let summary = PreferenceSummary {
            label: "all".into(),
            n_actions: 10,
            reference_ms: 300.0,
            span_ms: (55.0, 1995.0),
            points: vec![(500.0, 0.9)],
            loss: Some(LossSummary {
                estimated_loss_rate: 0.21,
                cells: vec![("h09_wd_business".into(), 0.2, 1.25)],
                naive_points: vec![(500.0, 0.95)],
            }),
        };
        let json = serde_json::to_string_pretty(&summary).unwrap();
        let back: PreferenceSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(summary, back);
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["loss"]["estimated_loss_rate"], 0.21);
        assert_eq!(value["loss"]["cells"][0][0], "h09_wd_business");
        assert_eq!(value["loss"]["naive_points"][0][1], 0.95);
    }

    #[test]
    fn full_report_serde_roundtrip() {
        use crate::bottleneck::BottleneckReport;
        use crate::locality::{DensityLatencyReport, LocalityReport};
        let report = FullReport {
            label: "SelectMail / Business".into(),
            n_actions: 12345,
            preference: PreferenceSummary {
                label: "SelectMail / Business".into(),
                n_actions: 12345,
                reference_ms: 300.0,
                span_ms: (55.0, 1995.0),
                points: vec![(500.0, 0.9), (1000.0, 0.68)],
                loss: None,
            },
            alpha_by_period: vec![AlphaRow {
                label: "8am-2pm".into(),
                alpha: Some(1.0),
                n_actions: 9999,
            }],
            locality: LocalityReport {
                msd_mad_actual: 0.44,
                msd_mad_shuffled: 1.0,
                msd_mad_sorted: 0.0001,
                von_neumann: 0.43,
                n_samples: 12345,
            },
            density: DensityLatencyReport {
                correlation: 0.2,
                n_windows: 5000,
                window_ms: 60_000,
            },
            decorrelation: None,
            bottleneck: BottleneckReport {
                doublings: vec![(500.0, 1000.0, 1.32)],
                bottleneck_factor: 2.0,
            },
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: FullReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        // Spot-check the JSON shape the CLI consumers rely on.
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["label"], "SelectMail / Business");
        assert_eq!(value["bottleneck"]["bottleneck_factor"], 2.0);
        assert_eq!(value["alpha_by_period"][0]["alpha"], 1.0);
    }
}
