//! The unbiased latency distribution `U` (§2.2).
//!
//! `U` approximates the latency the service would have delivered at times
//! *unrelated* to user behaviour. Direct measurements do not exist at such
//! times, so the paper's estimator draws instants uniformly at random over
//! the analysis span and, for each, takes the latency of the observed sample
//! nearest in time (breaking ties uniformly at random). Because instants are
//! drawn uniformly in *time* — not in proportion to action volume — slow
//! periods contribute according to their duration, undoing the activity
//! bias.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use autosens_exec::ExecReport;
use autosens_stats::binning::Binner;
use autosens_stats::histogram::Histogram;
use autosens_telemetry::log::LogView;
use autosens_telemetry::time::SimTime;

use crate::error::AutoSensError;

/// Estimate `U` over the whole span of a (sorted, non-empty) log.
///
/// Draws `n_draws` uniformly random instants in `[start, end]` and
/// histograms the latency of the nearest sample to each.
pub fn unbiased_histogram<R: Rng>(
    log: &LogView<'_>,
    binner: &Binner,
    n_draws: usize,
    rng: &mut R,
) -> Result<Histogram, AutoSensError> {
    let (start, end) = match (log.start_time(), log.end_time()) {
        (Some(s), Some(e)) => (s.millis(), e.millis()),
        _ => return Err(AutoSensError::EmptySlice("unbiased estimation".into())),
    };
    let windows = [(start, end)];
    unbiased_histogram_in_windows(log, binner, &windows, n_draws, rng)
}

/// Estimate `U` restricted to a set of time windows (each `[lo, hi]`,
/// inclusive), drawing instants uniformly over the union of the windows.
///
/// This is the slot-conditional variant used by the α machinery: the
/// windows are, e.g., every occurrence of the 14:00–15:00 hour across the
/// analysis span. Nearest-sample lookups still search the whole log — the
/// nearest observation to an instant inside a window may lie just outside
/// it, which is exactly the paper's estimator behaviour.
pub fn unbiased_histogram_in_windows<R: Rng>(
    log: &LogView<'_>,
    binner: &Binner,
    windows: &[(i64, i64)],
    n_draws: usize,
    rng: &mut R,
) -> Result<Histogram, AutoSensError> {
    if log.is_empty() {
        return Err(AutoSensError::EmptySlice("unbiased estimation".into()));
    }
    if n_draws == 0 {
        return Err(AutoSensError::BadConfig(
            "unbiased draws must be > 0".into(),
        ));
    }
    let lens: Vec<i64> = windows
        .iter()
        .map(|&(lo, hi)| if hi < lo { 0 } else { hi - lo + 1 })
        .collect();
    let total_len: i64 = lens.iter().sum();
    if total_len <= 0 {
        return Err(AutoSensError::BadConfig(
            "unbiased windows have zero total length".into(),
        ));
    }

    let mut h = Histogram::new(binner.clone());
    for _ in 0..n_draws {
        // Pick a window proportionally to its length, then an instant in it.
        let mut pick = rng.gen_range(0..total_len);
        let mut t = 0i64;
        for (i, &len) in lens.iter().enumerate() {
            if pick < len {
                t = windows[i].0 + pick;
                break;
            }
            pick -= len;
        }
        let (lo, hi) = log
            .nearest_in_time(SimTime(t))
            .map_err(AutoSensError::from)?;
        let idx = if hi - lo == 1 {
            lo
        } else {
            rng.gen_range(lo..hi)
        };
        h.record(log.latency_at(idx));
    }
    Ok(h)
}

/// Chunked [`unbiased_histogram`]: the draws run as a data-parallel job.
/// See [`unbiased_histogram_in_windows_par`] for the determinism contract.
pub fn unbiased_histogram_par<R: Rng>(
    log: &LogView<'_>,
    binner: &Binner,
    n_draws: usize,
    threads: usize,
    rng: &mut R,
) -> Result<(Histogram, ExecReport), AutoSensError> {
    let (start, end) = match (log.start_time(), log.end_time()) {
        (Some(s), Some(e)) => (s.millis(), e.millis()),
        _ => return Err(AutoSensError::EmptySlice("unbiased estimation".into())),
    };
    let windows = [(start, end)];
    unbiased_histogram_in_windows_par(log, binner, &windows, n_draws, threads, rng)
}

/// Chunked [`unbiased_histogram_in_windows`]: the draw budget is cut into
/// fixed-size chunks, each chunk draws from its own RNG stream (seeded
/// from one `u64` taken off the caller's `rng`, mixed with the chunk
/// index), and the per-chunk histograms merge in chunk order — so the
/// result is bit-identical for every thread count. Each chunk pre-draws
/// its instants and processes them in time order, walking a cursor over
/// the window prefix sums — cache-friendly where the serial variant's
/// random-order lookups are not.
pub fn unbiased_histogram_in_windows_par<R: Rng>(
    log: &LogView<'_>,
    binner: &Binner,
    windows: &[(i64, i64)],
    n_draws: usize,
    threads: usize,
    rng: &mut R,
) -> Result<(Histogram, ExecReport), AutoSensError> {
    if log.is_empty() {
        return Err(AutoSensError::EmptySlice("unbiased estimation".into()));
    }
    if n_draws == 0 {
        return Err(AutoSensError::BadConfig(
            "unbiased draws must be > 0".into(),
        ));
    }
    // Cumulative window lengths: cum[i] = total length of windows[..i].
    let mut cum: Vec<i64> = Vec::with_capacity(windows.len() + 1);
    cum.push(0);
    for &(lo, hi) in windows {
        let len = if hi < lo { 0 } else { hi - lo + 1 };
        cum.push(cum.last().unwrap() + len);
    }
    let total_len = *cum.last().unwrap();
    if total_len <= 0 {
        return Err(AutoSensError::BadConfig(
            "unbiased windows have zero total length".into(),
        ));
    }
    // One sequential draw establishes the job's seed; every chunk then
    // derives its own stream, keeping the caller's RNG consumption (and
    // the draws themselves) independent of the worker count.
    let base_seed = rng.gen::<u64>();
    let (parts, report) = autosens_exec::run_chunks(
        "unbiased_draws",
        n_draws,
        autosens_exec::chunk_size_for(n_draws),
        threads,
        |chunk, range| -> Result<Histogram, AutoSensError> {
            let mut rng = StdRng::seed_from_u64(autosens_exec::chunk_seed(base_seed, chunk as u64));
            // Draw every (instant, tie-break) pair up front, then process in
            // instant order: the nearest-sample lookups sweep the log
            // forward instead of jumping to random timestamps, which keeps
            // the search path in cache. The sort key (pick, tie) is a total
            // order on the draws, so the accumulation order — and the f64
            // bits of the result — stay a pure function of the chunk seed.
            let mut draws: Vec<(i64, u64)> = range
                .map(|_| (rng.gen_range(0..total_len), rng.gen::<u64>()))
                .collect();
            draws.sort_unstable();
            let mut h = Histogram::new(binner.clone());
            let mut w = 0usize;
            for (pick, tie) in draws {
                // Advance to the window owning this pick; zero-length
                // windows are skipped because their cum entry equals the
                // next window's.
                while cum[w + 1] <= pick {
                    w += 1;
                }
                let t = windows[w].0 + (pick - cum[w]);
                let (lo, hi) = log
                    .nearest_in_time(SimTime(t))
                    .map_err(AutoSensError::from)?;
                let idx = if hi - lo == 1 {
                    lo
                } else {
                    lo + (tie as usize) % (hi - lo)
                };
                h.record(log.latency_at(idx));
            }
            Ok(h)
        },
    )?;
    let mut pooled = Histogram::new(binner.clone());
    for part in parts {
        pooled.merge(&part?).map_err(AutoSensError::from)?;
    }
    Ok((pooled, report))
}

/// The exponential-decay weight of an event-time instant `t_ms` relative to
/// a frontier (the freshest instant in the window): `0.5^(age / half_life)`
/// where `age = frontier_ms - t_ms`. Instants at the frontier weigh 1, one
/// half-life back weigh 0.5, and instants past the frontier are clamped to
/// weight 1 rather than amplified.
pub fn decay_weight(t_ms: i64, frontier_ms: i64, half_life_ms: i64) -> f64 {
    debug_assert!(half_life_ms > 0);
    let age = (frontier_ms - t_ms).max(0) as f64;
    0.5f64.powf(age / half_life_ms as f64)
}

/// Exponentially-decayed variant of [`unbiased_histogram_par`]: instants are
/// drawn uniformly over the whole span exactly as in the undecayed
/// estimator, but each draw deposits weight
/// `0.5^((frontier_ms - t) / half_life_ms)` instead of 1 — so the windowed
/// unbiased curve `U_w` tracks the *recent* latency environment while old
/// regimes fade geometrically. Drawing uniformly and decaying the weight
/// (rather than drawing from the decayed density) keeps the nearest-sample
/// sweep and the chunk/seed schedule identical to the lifetime estimator,
/// and the result bit-identical for every thread count.
#[allow(clippy::too_many_arguments)]
pub fn unbiased_histogram_decayed_par<R: Rng>(
    log: &LogView<'_>,
    binner: &Binner,
    half_life_ms: i64,
    frontier_ms: i64,
    n_draws: usize,
    threads: usize,
    rng: &mut R,
) -> Result<(Histogram, ExecReport), AutoSensError> {
    if log.is_empty() {
        return Err(AutoSensError::EmptySlice("unbiased estimation".into()));
    }
    if n_draws == 0 {
        return Err(AutoSensError::BadConfig(
            "unbiased draws must be > 0".into(),
        ));
    }
    if half_life_ms <= 0 {
        return Err(AutoSensError::BadConfig(
            "decay half-life must be > 0 ms".into(),
        ));
    }
    let (start, end) = match (log.start_time(), log.end_time()) {
        (Some(s), Some(e)) => (s.millis(), e.millis()),
        _ => return Err(AutoSensError::EmptySlice("unbiased estimation".into())),
    };
    let total_len = end - start + 1;
    let base_seed = rng.gen::<u64>();
    let (parts, report) = autosens_exec::run_chunks(
        "unbiased_decayed_draws",
        n_draws,
        autosens_exec::chunk_size_for(n_draws),
        threads,
        |chunk, range| -> Result<Histogram, AutoSensError> {
            let mut rng = StdRng::seed_from_u64(autosens_exec::chunk_seed(base_seed, chunk as u64));
            let mut draws: Vec<(i64, u64)> = range
                .map(|_| (rng.gen_range(0..total_len), rng.gen::<u64>()))
                .collect();
            draws.sort_unstable();
            let mut h = Histogram::new(binner.clone());
            for (pick, tie) in draws {
                let t = start + pick;
                let (lo, hi) = log
                    .nearest_in_time(SimTime(t))
                    .map_err(AutoSensError::from)?;
                let idx = if hi - lo == 1 {
                    lo
                } else {
                    lo + (tie as usize) % (hi - lo)
                };
                h.record_weighted(
                    log.latency_at(idx),
                    decay_weight(t, frontier_ms, half_life_ms),
                );
            }
            Ok(h)
        },
    )?;
    let mut pooled = Histogram::new(binner.clone());
    for part in parts {
        pooled.merge(&part?).map_err(AutoSensError::from)?;
    }
    Ok((pooled, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_stats::binning::OutOfRange;
    use autosens_telemetry::log::TelemetryLog;
    use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rec(t: i64, latency: f64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t),
            action: ActionType::SelectMail,
            latency_ms: latency,
            user: UserId(0),
            class: UserClass::Business,
            tz_offset_ms: 0,
            outcome: Outcome::Success,
        }
    }

    fn binner() -> Binner {
        Binner::new(0.0, 1000.0, 10.0, OutOfRange::Discard).unwrap()
    }

    #[test]
    fn time_weighted_not_count_weighted() {
        // 10 actions at latency 100 cluster in the first second; one action
        // at latency 500 sits alone at t = 100 s. By count, latency 100
        // dominates 10:1 (~91%). The nearest-sample estimator instead
        // weights each sample by the time it is nearest to: the cluster
        // owns [0, ~50.45 s] and the lone sample owns the other half, so
        // the unbiased split is ~50/50 — time-weighted, not count-weighted.
        let mut records: Vec<ActionRecord> = (0..10).map(|i| rec(i * 100, 100.0)).collect();
        records.push(rec(100_000, 500.0));
        let log = TelemetryLog::from_records(records).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let h = unbiased_histogram(&log.view(), &binner(), 20_000, &mut rng).unwrap();
        let frac_fast = h.count(10) / h.total();
        let frac_slow = h.count(50) / h.total();
        assert!(
            (frac_fast - 0.5045).abs() < 0.02,
            "fast {frac_fast} (count share would be 0.91)"
        );
        assert!((frac_slow - 0.4955).abs() < 0.02, "slow {frac_slow}");
    }

    #[test]
    fn uniform_coverage_of_homogeneous_log() {
        // Regularly spaced samples alternating between two latencies get
        // roughly equal unbiased mass.
        let records: Vec<ActionRecord> = (0..1000)
            .map(|i| rec(i * 1000, if i % 2 == 0 { 105.0 } else { 505.0 }))
            .collect();
        let log = TelemetryLog::from_records(records).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let h = unbiased_histogram(&log.view(), &binner(), 30_000, &mut rng).unwrap();
        let a = h.count(10) / h.total();
        let b = h.count(50) / h.total();
        assert!((a - 0.5).abs() < 0.02, "a = {a}");
        assert!((b - 0.5).abs() < 0.02, "b = {b}");
    }

    #[test]
    fn tie_breaking_samples_all_duplicates() {
        // Three simultaneous records; nearest lookup always returns all
        // three, so random tie-breaking must spread mass across them.
        let log =
            TelemetryLog::from_records(vec![rec(500, 105.0), rec(500, 405.0), rec(500, 705.0)])
                .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let h = unbiased_histogram(&log.view(), &binner(), 9_000, &mut rng).unwrap();
        for bin in [10, 40, 70] {
            let frac = h.count(bin) / h.total();
            assert!((frac - 1.0 / 3.0).abs() < 0.03, "bin {bin}: {frac}");
        }
    }

    #[test]
    fn windows_restrict_the_draws() {
        // Latency 100 in the first 10 s, latency 500 in the next 10 s.
        let mut records: Vec<ActionRecord> = (0..100).map(|i| rec(i * 100, 100.0)).collect();
        records.extend((0..100).map(|i| rec(10_000 + i * 100, 500.0)));
        let log = TelemetryLog::from_records(records).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        // Draw only from the second window.
        let h = unbiased_histogram_in_windows(
            &log.view(),
            &binner(),
            &[(10_000, 19_900)],
            5_000,
            &mut rng,
        )
        .unwrap();
        assert!(h.count(50) / h.total() > 0.97);
        // Draw from both windows: roughly 50/50.
        let h = unbiased_histogram_in_windows(
            &log.view(),
            &binner(),
            &[(0, 9_900), (10_000, 19_900)],
            20_000,
            &mut rng,
        )
        .unwrap();
        let frac = h.count(10) / h.total();
        assert!((frac - 0.5).abs() < 0.05, "frac = {frac}");
    }

    #[test]
    fn error_cases() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty = TelemetryLog::new();
        assert!(unbiased_histogram(&empty.view(), &binner(), 100, &mut rng).is_err());
        let log = TelemetryLog::from_records(vec![rec(0, 100.0)]).unwrap();
        assert!(unbiased_histogram(&log.view(), &binner(), 0, &mut rng).is_err());
        assert!(
            unbiased_histogram_in_windows(&log.view(), &binner(), &[(10, 5)], 10, &mut rng)
                .is_err()
        );
        assert!(unbiased_histogram_in_windows(&log.view(), &binner(), &[], 10, &mut rng).is_err());
    }

    #[test]
    fn par_draws_are_bit_identical_across_thread_counts() {
        let records: Vec<ActionRecord> = (0..500)
            .map(|i| rec(i * 997, 50.0 + (i % 90) as f64 * 10.0))
            .collect();
        let log = TelemetryLog::from_records(records).unwrap();
        let windows = [(0, 150_000), (200_000, 400_000)];
        let reference = {
            let mut rng = StdRng::seed_from_u64(7);
            unbiased_histogram_in_windows_par(&log.view(), &binner(), &windows, 30_000, 1, &mut rng)
                .unwrap()
                .0
        };
        for threads in [2, 4, 8] {
            let mut rng = StdRng::seed_from_u64(7);
            let (h, report) = unbiased_histogram_in_windows_par(
                &log.view(),
                &binner(),
                &windows,
                30_000,
                threads,
                &mut rng,
            )
            .unwrap();
            let same = h
                .counts()
                .iter()
                .zip(reference.counts())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads={threads} diverged");
            assert_eq!(report.n_items, 30_000);
        }
        // The whole-span wrapper agrees with the serial estimator's
        // statistics (not bitwise — different RNG schedule — but close).
        let mut rng = StdRng::seed_from_u64(8);
        let (h, _) = unbiased_histogram_par(&log.view(), &binner(), 20_000, 2, &mut rng).unwrap();
        assert_eq!(h.total(), 20_000.0);
    }

    #[test]
    fn decay_weight_halves_per_half_life() {
        assert_eq!(decay_weight(1_000, 1_000, 500), 1.0);
        assert!((decay_weight(500, 1_000, 500) - 0.5).abs() < 1e-12);
        assert!((decay_weight(0, 1_000, 500) - 0.25).abs() < 1e-12);
        // Instants past the frontier clamp to 1, never amplify.
        assert_eq!(decay_weight(2_000, 1_000, 500), 1.0);
    }

    #[test]
    fn decayed_draws_weight_recent_regime_up() {
        // First half of the span is slow (500 ms), second half fast
        // (100 ms). Undecayed, the unbiased split is ~50/50; with a
        // half-life of a tenth of the span, the fast (recent) regime must
        // dominate the decayed mass.
        let mut records: Vec<ActionRecord> = (0..500).map(|i| rec(i * 100, 500.0)).collect();
        records.extend((0..500).map(|i| rec(50_000 + i * 100, 100.0)));
        let log = TelemetryLog::from_records(records).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let (h, _) = unbiased_histogram_decayed_par(
            &log.view(),
            &binner(),
            10_000,
            99_900,
            40_000,
            2,
            &mut rng,
        )
        .unwrap();
        let frac_fast = h.count(10) / h.total();
        assert!(frac_fast > 0.8, "fast share {frac_fast}");
        // Old mass fades but never to exactly zero.
        assert!(h.count(50) > 0.0);
    }

    #[test]
    fn decayed_draws_are_bit_identical_across_thread_counts() {
        let records: Vec<ActionRecord> = (0..500)
            .map(|i| rec(i * 997, 50.0 + (i % 90) as f64 * 10.0))
            .collect();
        let log = TelemetryLog::from_records(records).unwrap();
        let frontier = 499 * 997;
        let reference = {
            let mut rng = StdRng::seed_from_u64(9);
            unbiased_histogram_decayed_par(
                &log.view(),
                &binner(),
                60_000,
                frontier,
                30_000,
                1,
                &mut rng,
            )
            .unwrap()
            .0
        };
        for threads in [2, 4, 8] {
            let mut rng = StdRng::seed_from_u64(9);
            let (h, report) = unbiased_histogram_decayed_par(
                &log.view(),
                &binner(),
                60_000,
                frontier,
                30_000,
                threads,
                &mut rng,
            )
            .unwrap();
            let same = h
                .counts()
                .iter()
                .zip(reference.counts())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads={threads} diverged");
            assert_eq!(report.n_items, 30_000);
        }
    }

    #[test]
    fn decayed_rejects_bad_half_life() {
        let log = TelemetryLog::from_records(vec![rec(0, 100.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        assert!(
            unbiased_histogram_decayed_par(&log.view(), &binner(), 0, 0, 10, 1, &mut rng).is_err()
        );
        assert!(
            unbiased_histogram_decayed_par(&log.view(), &binner(), -5, 0, 10, 1, &mut rng).is_err()
        );
    }

    #[test]
    fn single_record_log_is_degenerate_but_works() {
        let log = TelemetryLog::from_records(vec![rec(1000, 250.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let h = unbiased_histogram(&log.view(), &binner(), 100, &mut rng).unwrap();
        assert_eq!(h.count(25), 100.0);
    }
}
