//! The §3.5 analysis: latency *preference* vs. latency *bottleneck*.
//!
//! Two mechanisms can reduce action counts at high latency: users may
//! *choose* to do less (preference), or the latency sits on their critical
//! path and mechanically throttles them (bottleneck). A pure bottleneck
//! predicts the action rate halves each time latency doubles — a drop
//! factor of 2 per doubling. The paper observes much gentler factors
//! (≈1.3 from 500→1000 ms, ≈1.1 from 1000→2000 ms for SelectMail) and
//! concludes genuine preference dominates. This module computes those
//! factors from a fitted preference curve.

use serde::{Deserialize, Serialize};

use crate::preference::NormalizedPreference;

/// Drop factors across latency doublings, compared with the pure-bottleneck
/// prediction of 2.0 per doubling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BottleneckReport {
    /// `(from_ms, to_ms, drop factor)` for each analyzed doubling.
    pub doublings: Vec<(f64, f64, f64)>,
    /// The pure-bottleneck prediction per doubling (always 2.0; included so
    /// reports are self-describing).
    pub bottleneck_factor: f64,
}

impl BottleneckReport {
    /// Whether every observed doubling drops by clearly less than the
    /// bottleneck prediction — the paper's evidence that preference, not
    /// mechanical throttling, dominates.
    pub fn preference_dominates(&self) -> bool {
        !self.doublings.is_empty()
            && self
                .doublings
                .iter()
                .all(|&(_, _, f)| f < 0.85 * self.bottleneck_factor)
    }
}

/// Compute drop factors across successive doublings starting at `start_ms`,
/// for as many doublings as the curve's span supports.
pub fn bottleneck_report(pref: &NormalizedPreference, start_ms: f64) -> BottleneckReport {
    let mut doublings = Vec::new();
    let mut lo = start_ms;
    loop {
        let hi = lo * 2.0;
        match pref.drop_factor(lo, hi) {
            Some(f) => doublings.push((lo, hi, f)),
            None => break,
        }
        lo = hi;
    }
    BottleneckReport {
        doublings,
        bottleneck_factor: 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AutoSensConfig;
    use autosens_stats::binning::{Binner, OutOfRange};
    use autosens_stats::histogram::Histogram;

    fn fit_with_ratio(f: impl Fn(f64) -> f64) -> NormalizedPreference {
        let b = Binner::new(0.0, 3000.0, 10.0, OutOfRange::Discard).unwrap();
        let mut biased = Histogram::new(b.clone());
        let mut unbiased = Histogram::new(b.clone());
        for i in 0..b.n_bins() {
            let c = b.center(i);
            unbiased.record_weighted(c, 1000.0);
            biased.record_weighted(c, 1000.0 * f(c));
        }
        let cfg = AutoSensConfig {
            savgol_window: 21,
            min_biased_count: 1.0,
            min_unbiased_count: 1.0,
            ..AutoSensConfig::default()
        };
        NormalizedPreference::fit(&biased, &unbiased, &cfg).unwrap()
    }

    #[test]
    fn preference_like_curve_beats_bottleneck() {
        // Paper-like exponential-with-floor curve.
        let pref = fit_with_ratio(|l| 0.54 + 0.76 * (-l / 620.0).exp());
        let report = bottleneck_report(&pref, 500.0);
        assert!(report.doublings.len() >= 2);
        let (lo, hi, f1) = report.doublings[0];
        assert_eq!((lo, hi), (500.0, 1000.0));
        // Paper: ~1.3 for 500 -> 1000 ms.
        assert!((f1 - 1.3).abs() < 0.1, "factor = {f1}");
        let (_, _, f2) = report.doublings[1];
        // Paper: ~1.1 for 1000 -> 2000 ms; the planted curve gives ~1.21.
        // Either way, far below the bottleneck factor of 2.
        assert!(f2 > 1.0 && f2 < 1.3, "factor = {f2}");
        assert!(report.preference_dominates());
    }

    #[test]
    fn bottleneck_like_curve_is_flagged() {
        // A pure 1/L curve: halves per doubling -> factor 2 per doubling.
        let pref = fit_with_ratio(|l| 500.0 / l.max(100.0));
        let report = bottleneck_report(&pref, 500.0);
        assert!(!report.doublings.is_empty());
        for (_, _, f) in &report.doublings {
            assert!((f - 2.0).abs() < 0.25, "factor = {f}");
        }
        assert!(!report.preference_dominates());
    }

    #[test]
    fn stops_at_the_span_edge() {
        let pref = fit_with_ratio(|l| 1.5 - l / 4000.0);
        let report = bottleneck_report(&pref, 500.0);
        // Span ends at 3000 ms, so 500->1000->2000 fit; 2000->4000 does not.
        assert_eq!(report.doublings.len(), 2);
        // Starting outside the span yields no doublings.
        let empty = bottleneck_report(&pref, 2_800.0);
        assert!(empty.doublings.is_empty());
        assert!(!empty.preference_dominates());
    }
}
