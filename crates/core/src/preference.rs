//! From `B` and `U` to the normalized latency preference (§2.3).
//!
//! The per-bin density ratio `B/U` is noisy, so it is smoothed with a
//! Savitzky–Golay filter (window 101, degree 3) and then normalized by its
//! value at a reference latency (300 ms). The result — the **normalized
//! latency preference** — reads directly: a value of 0.8 at some latency
//! means users are 20% less active there than at the reference, all else
//! being equal.

use serde::{Deserialize, Serialize};

use autosens_stats::binning::Binner;
use autosens_stats::histogram::Histogram;
use autosens_stats::savgol::SavGol;

use crate::config::AutoSensConfig;
use crate::error::AutoSensError;

/// A fitted normalized latency preference curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NormalizedPreference {
    binner: Binner,
    /// Raw `B/U` ratio per bin (`None` where unsupported).
    raw: Vec<Option<f64>>,
    /// Smoothed, normalized preference per bin (`None` outside the fitted
    /// span).
    normalized: Vec<Option<f64>>,
    /// First and last bin (inclusive) of the fitted span.
    span: (usize, usize),
    /// The normalization reference latency.
    reference_ms: f64,
}

impl NormalizedPreference {
    /// Fit the preference curve from biased and unbiased histograms.
    ///
    /// Support rule: a bin participates in the raw ratio when both its
    /// biased and unbiased masses meet the configured minima. The curve is
    /// fitted over the contiguous span from the first to the last supported
    /// bin; unsupported holes inside the span are bridged by linear
    /// interpolation before smoothing. The reference latency must fall
    /// inside the span.
    pub fn fit(
        biased: &Histogram,
        unbiased: &Histogram,
        cfg: &AutoSensConfig,
    ) -> Result<NormalizedPreference, AutoSensError> {
        let parent = autosens_obs::Span::noop("fit");
        NormalizedPreference::fit_traced(biased, unbiased, cfg, &parent, &mut Vec::new())
    }

    /// [`NormalizedPreference::fit`] with tracing: the smoothing and
    /// normalization stages open child spans under `parent` and append
    /// their wall-clock timings to `timings`.
    pub(crate) fn fit_traced(
        biased: &Histogram,
        unbiased: &Histogram,
        cfg: &AutoSensConfig,
        parent: &autosens_obs::Span,
        timings: &mut Vec<autosens_obs::StageTiming>,
    ) -> Result<NormalizedPreference, AutoSensError> {
        cfg.validate()?;
        let binner = biased.binner().clone();
        if !binner.same_grid(unbiased.binner()) {
            return Err(AutoSensError::Stats(
                autosens_stats::StatsError::BinnerMismatch,
            ));
        }
        if biased.is_empty() || unbiased.is_empty() {
            return Err(AutoSensError::EmptySlice(
                "preference fit: empty histogram".into(),
            ));
        }
        let n = binner.n_bins();
        let b_total = biased.total();
        let u_total = unbiased.total();

        // Raw per-bin ratio on supported bins.
        let mut raw: Vec<Option<f64>> = vec![None; n];
        for (i, slot) in raw.iter_mut().enumerate() {
            let b = biased.count(i);
            let u = unbiased.count(i);
            if b >= cfg.min_biased_count && u >= cfg.min_unbiased_count && u > 0.0 {
                *slot = Some((b / b_total) / (u / u_total));
            }
        }

        let supported: Vec<usize> = (0..n).filter(|&i| raw[i].is_some()).collect();
        if supported.len() < cfg.min_supported_bins {
            return Err(AutoSensError::InsufficientSupport {
                what: "B/U ratio".into(),
                supported: supported.len(),
                required: cfg.min_supported_bins,
            });
        }
        let first = supported[0];
        // Invariant: `supported.len() >= min_supported_bins >= 1` was just
        // checked, so a last element exists.
        let last = *supported.last().expect("non-empty");

        let mut span = parent.child(crate::plan::op::SMOOTHING.name);
        span.field("supported_bins", supported.len());
        span.field("window", cfg.savgol_window);
        // Contiguous series over the span with interpolated holes.
        let series = interpolate_holes(&raw[first..=last]);

        // Smooth and normalize.
        let filter =
            SavGol::new(cfg.savgol_window, cfg.savgol_degree).map_err(AutoSensError::from)?;
        let smoothed = filter.smooth(&series).map_err(AutoSensError::from)?;
        // The raw ratios are finite by construction (positive totals, u > 0)
        // and smoothing is a finite linear combination — but extreme masses
        // can overflow to ∞. Fail typed instead of emitting a NaN curve.
        if smoothed.iter().any(|v| !v.is_finite()) {
            return Err(AutoSensError::NonFinite {
                what: "smoothed B/U ratio".into(),
            });
        }
        timings.push(autosens_obs::StageTiming {
            stage: crate::plan::op::SMOOTHING.name.into(),
            wall_ms: span.finish(),
        });

        let span = parent.child(crate::plan::op::NORMALIZATION.name);
        let ref_bin = binner
            .index_of(cfg.reference_latency_ms)
            .filter(|&i| i >= first && i <= last)
            .ok_or(AutoSensError::ReferenceUnsupported {
                reference_ms: cfg.reference_latency_ms,
            })?;
        let ref_value = smoothed[ref_bin - first];
        if !(ref_value.is_finite() && ref_value > 0.0) {
            return Err(AutoSensError::ReferenceUnsupported {
                reference_ms: cfg.reference_latency_ms,
            });
        }

        let mut normalized = vec![None; n];
        for (k, v) in smoothed.iter().enumerate() {
            // Smoothing can slightly overshoot below zero on sparse edges;
            // clamp at zero (a negative preference is meaningless).
            normalized[first + k] = Some((v / ref_value).max(0.0));
        }
        timings.push(autosens_obs::StageTiming {
            stage: crate::plan::op::NORMALIZATION.name.into(),
            wall_ms: span.finish(),
        });

        Ok(NormalizedPreference {
            binner,
            raw,
            normalized,
            span: (first, last),
            reference_ms: cfg.reference_latency_ms,
        })
    }

    /// The binner of the latency axis.
    pub fn binner(&self) -> &Binner {
        &self.binner
    }

    /// Normalized preference at a latency, if within the fitted span.
    pub fn at(&self, latency_ms: f64) -> Option<f64> {
        let i = self.binner.index_of(latency_ms)?;
        self.normalized[i]
    }

    /// Raw (unsmoothed) `B/U` ratio at a latency, if that bin was supported.
    pub fn raw_at(&self, latency_ms: f64) -> Option<f64> {
        let i = self.binner.index_of(latency_ms)?;
        self.raw[i]
    }

    /// The `(latency, preference)` series over the fitted span.
    pub fn series(&self) -> Vec<(f64, f64)> {
        (self.span.0..=self.span.1)
            .filter_map(|i| self.normalized[i].map(|v| (self.binner.center(i), v)))
            .collect()
    }

    /// The `(latency, raw ratio)` series over the supported bins.
    pub fn raw_series(&self) -> Vec<(f64, f64)> {
        (0..self.binner.n_bins())
            .filter_map(|i| self.raw[i].map(|v| (self.binner.center(i), v)))
            .collect()
    }

    /// The fitted latency span `(lo_ms, hi_ms)` (bin centers).
    pub fn span_ms(&self) -> (f64, f64) {
        (
            self.binner.center(self.span.0),
            self.binner.center(self.span.1),
        )
    }

    /// The reference latency used for normalization.
    pub fn reference_ms(&self) -> f64 {
        self.reference_ms
    }

    /// The multiplicative drop factor `pref(from) / pref(to)` — e.g. the
    /// paper's §3.5 uses `drop_factor(500, 1000)` ≈ 1.3. `None` if either
    /// end is outside the span or the denominator is zero.
    pub fn drop_factor(&self, from_ms: f64, to_ms: f64) -> Option<f64> {
        let a = self.at(from_ms)?;
        let b = self.at(to_ms)?;
        if b > 0.0 {
            Some(a / b)
        } else {
            None
        }
    }
}

/// Replace `None` holes by linear interpolation between their supported
/// neighbours. The first and last elements are guaranteed supported by the
/// caller (the span is trimmed to supported bins).
fn interpolate_holes(window: &[Option<f64>]) -> Vec<f64> {
    let n = window.len();
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        match window[i] {
            Some(v) => {
                out[i] = v;
                i += 1;
            }
            None => {
                // Find the hole extent [i, j). Invariant: the caller trims
                // the span to supported endpoints, so a hole always has a
                // supported neighbour on each side.
                let prev = i.checked_sub(1).expect("first element is supported");
                let mut j = i;
                while j < n && window[j].is_none() {
                    j += 1;
                }
                debug_assert!(j < n, "last element is supported");
                let a = out[prev];
                let b = window[j].expect("stop condition");
                let gap = (j - prev) as f64;
                for (k, slot) in out.iter_mut().enumerate().take(j).skip(i) {
                    let frac = (k - prev) as f64 / gap;
                    *slot = a + (b - a) * frac;
                }
                i = j;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_stats::binning::OutOfRange;

    fn binner() -> Binner {
        Binner::new(0.0, 1000.0, 10.0, OutOfRange::Discard).unwrap()
    }

    fn cfg() -> AutoSensConfig {
        AutoSensConfig {
            latency_hi_ms: 1000.0,
            savgol_window: 11,
            savgol_degree: 3,
            min_biased_count: 5.0,
            min_unbiased_count: 5.0,
            min_supported_bins: 10,
            reference_latency_ms: 300.0,
            ..AutoSensConfig::default()
        }
    }

    /// Build histograms whose ratio is a known function of latency.
    fn histograms_with_ratio(f: impl Fn(f64) -> f64) -> (Histogram, Histogram) {
        let b = binner();
        let mut biased = Histogram::new(b.clone());
        let mut unbiased = Histogram::new(b.clone());
        for i in 0..b.n_bins() {
            let center = b.center(i);
            // Uniform unbiased mass, biased mass proportional to f(center).
            unbiased.record_weighted(center, 1000.0);
            biased.record_weighted(center, 1000.0 * f(center));
        }
        (biased, unbiased)
    }

    #[test]
    fn recovers_flat_ratio() {
        let (b, u) = histograms_with_ratio(|_| 1.0);
        let p = NormalizedPreference::fit(&b, &u, &cfg()).unwrap();
        for (_, v) in p.series() {
            assert!((v - 1.0).abs() < 1e-9);
        }
        assert_eq!(p.at(300.0).map(|v| (v * 1e9).round() / 1e9), Some(1.0));
    }

    #[test]
    fn recovers_linear_decay_and_normalizes_at_reference() {
        let (b, u) = histograms_with_ratio(|l| 2.0 - l / 1000.0);
        let p = NormalizedPreference::fit(&b, &u, &cfg()).unwrap();
        // Value at the reference is exactly 1.
        assert!((p.at(300.0).unwrap() - 1.0).abs() < 1e-9);
        // f(600)/f(300) = 1.4/1.7.
        let expect = 1.4 / 1.7;
        assert!((p.at(600.0).unwrap() - expect).abs() < 0.01);
        // Monotone decreasing.
        let series = p.series();
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9);
        }
        // Drop factor matches the ratio of values.
        let d = p.drop_factor(300.0, 600.0).unwrap();
        assert!((d - 1.0 / expect).abs() < 0.02);
    }

    #[test]
    fn smoothing_reduces_noise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let b0 = binner();
        let mut biased = Histogram::new(b0.clone());
        let mut unbiased = Histogram::new(b0.clone());
        for i in 0..b0.n_bins() {
            let center = b0.center(i);
            let truth = 1.5 - center / 1000.0;
            let noise = 1.0 + 0.2 * (rng.gen::<f64>() - 0.5);
            unbiased.record_weighted(center, 1000.0);
            biased.record_weighted(center, 1000.0 * truth * noise);
        }
        let p = NormalizedPreference::fit(&biased, &unbiased, &cfg()).unwrap();
        // Smoothed curve is much closer to the truth than the raw ratio.
        let mut raw_err = 0.0;
        let mut smooth_err = 0.0;
        let mut count = 0;
        for i in 5..(b0.n_bins() - 5) {
            let center = b0.center(i);
            let truth = (1.5 - center / 1000.0) / (1.5 - 0.305); // normalized at ~300
            if let (Some(r), Some(s)) = (p.raw_at(center), p.at(center)) {
                // Raw is normalized differently; normalize by its 300ms value.
                let raw_norm = r / p.raw_at(305.0).unwrap();
                raw_err += (raw_norm - truth).abs();
                smooth_err += (s - truth).abs();
                count += 1;
            }
        }
        assert!(count > 50);
        assert!(
            smooth_err < raw_err * 0.6,
            "smooth {smooth_err} vs raw {raw_err}"
        );
    }

    #[test]
    fn holes_are_interpolated() {
        let b0 = binner();
        let mut biased = Histogram::new(b0.clone());
        let mut unbiased = Histogram::new(b0.clone());
        for i in 0..b0.n_bins() {
            let center = b0.center(i);
            unbiased.record_weighted(center, 1000.0);
            // Leave bins 40..=45 unsupported (below min count).
            let w = if (40..=45).contains(&i) { 1.0 } else { 1000.0 };
            biased.record_weighted(center, w);
        }
        let p = NormalizedPreference::fit(&biased, &unbiased, &cfg()).unwrap();
        // The curve is still defined across the hole.
        assert!(p.at(425.0).is_some());
        // But the raw ratio is not.
        assert!(p.raw_at(425.0).is_none());
    }

    #[test]
    fn insufficient_support_is_an_error() {
        let b0 = binner();
        let mut biased = Histogram::new(b0.clone());
        let mut unbiased = Histogram::new(b0.clone());
        // Only 3 supported bins.
        for i in [10usize, 11, 12] {
            biased.record_weighted(b0.center(i), 100.0);
            unbiased.record_weighted(b0.center(i), 100.0);
        }
        match NormalizedPreference::fit(&biased, &unbiased, &cfg()) {
            Err(AutoSensError::InsufficientSupport { supported, .. }) => {
                assert_eq!(supported, 3)
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn reference_outside_span_is_an_error() {
        let b0 = binner();
        let mut biased = Histogram::new(b0.clone());
        let mut unbiased = Histogram::new(b0.clone());
        // Support only bins 50..80 (500-800 ms); reference 300 ms is outside.
        for i in 50..80 {
            biased.record_weighted(b0.center(i), 100.0);
            unbiased.record_weighted(b0.center(i), 100.0);
        }
        assert!(matches!(
            NormalizedPreference::fit(&biased, &unbiased, &cfg()),
            Err(AutoSensError::ReferenceUnsupported { .. })
        ));
    }

    #[test]
    fn empty_histograms_are_an_error() {
        let e = Histogram::new(binner());
        let (b, u) = histograms_with_ratio(|_| 1.0);
        assert!(NormalizedPreference::fit(&e, &u, &cfg()).is_err());
        assert!(NormalizedPreference::fit(&b, &e, &cfg()).is_err());
    }

    #[test]
    fn mismatched_binners_are_an_error() {
        let (b, _) = histograms_with_ratio(|_| 1.0);
        let other = Histogram::new(Binner::new(0.0, 1000.0, 20.0, OutOfRange::Discard).unwrap());
        assert!(NormalizedPreference::fit(&b, &other, &cfg()).is_err());
    }

    #[test]
    fn interpolate_holes_basics() {
        let w = [Some(1.0), None, None, Some(4.0)];
        assert_eq!(interpolate_holes(&w), vec![1.0, 2.0, 3.0, 4.0]);
        let w = [Some(2.0), Some(3.0)];
        assert_eq!(interpolate_holes(&w), vec![2.0, 3.0]);
        let w = [Some(5.0)];
        assert_eq!(interpolate_holes(&w), vec![5.0]);
    }

    #[test]
    fn span_and_accessors() {
        let (b, u) = histograms_with_ratio(|_| 1.0);
        let p = NormalizedPreference::fit(&b, &u, &cfg()).unwrap();
        let (lo, hi) = p.span_ms();
        assert!(lo < hi);
        assert_eq!(p.reference_ms(), 300.0);
        assert!(p.at(-5.0).is_none());
        assert!(p.at(5000.0).is_none());
        assert_eq!(p.series().len(), p.binner().n_bins());
        assert_eq!(p.raw_series().len(), p.binner().n_bins());
    }
}
