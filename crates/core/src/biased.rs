//! The biased latency distribution `B` (§2.2).
//!
//! `B` is simply the histogram of the latencies of the actions users
//! actually performed. It is "biased" because, if users prefer low latency,
//! actions cluster in fast periods and `B` shifts left of the underlying
//! latency distribution.

use autosens_stats::binning::Binner;
use autosens_stats::histogram::Histogram;
use autosens_telemetry::log::LogView;

/// Build the biased histogram of a (pre-sliced) view.
///
/// Each successful action contributes weight 1 at its latency. Error
/// outcomes must already have been filtered (the pipeline does this); this
/// function histograms every row it is given, straight off the latency
/// column — no records are materialized.
pub fn biased_histogram(view: &LogView<'_>, binner: &Binner) -> Histogram {
    let mut h = Histogram::new(binner.clone());
    for i in 0..view.len() {
        h.record(view.latency_at(i));
    }
    h
}

/// Build a biased histogram with per-record weights, used by the
/// α-normalization (each record's weight is `1/α` of its hour slot).
pub fn weighted_biased_histogram<F>(view: &LogView<'_>, binner: &Binner, weight: F) -> Histogram
where
    F: Fn(&autosens_telemetry::record::ActionRecord) -> f64,
{
    let mut h = Histogram::new(binner.clone());
    for r in view.iter() {
        h.record_weighted(r.latency_ms, weight(&r));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_stats::binning::OutOfRange;
    use autosens_telemetry::log::TelemetryLog;
    use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
    use autosens_telemetry::time::SimTime;

    fn rec(t: i64, latency: f64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t),
            action: ActionType::SelectMail,
            latency_ms: latency,
            user: UserId(0),
            class: UserClass::Business,
            tz_offset_ms: 0,
            outcome: Outcome::Success,
        }
    }

    fn binner() -> Binner {
        Binner::new(0.0, 1000.0, 10.0, OutOfRange::Discard).unwrap()
    }

    #[test]
    fn histograms_latencies() {
        let log =
            TelemetryLog::from_records(vec![rec(0, 105.0), rec(1, 108.0), rec(2, 455.0)]).unwrap();
        let h = biased_histogram(&log.view(), &binner());
        assert_eq!(h.count(10), 2.0);
        assert_eq!(h.count(45), 1.0);
        assert_eq!(h.total(), 3.0);
    }

    #[test]
    fn out_of_range_latencies_are_discarded_not_crashed() {
        let log = TelemetryLog::from_records(vec![rec(0, 5000.0), rec(1, 100.0)]).unwrap();
        let h = biased_histogram(&log.view(), &binner());
        assert_eq!(h.total(), 1.0);
        assert_eq!(h.n_discarded(), 1);
    }

    #[test]
    fn weighted_histogram_applies_weights() {
        let log = TelemetryLog::from_records(vec![rec(0, 105.0), rec(1, 455.0)]).unwrap();
        let h = weighted_biased_histogram(&log.view(), &binner(), |r| {
            if r.latency_ms < 200.0 {
                2.0
            } else {
                0.5
            }
        });
        assert_eq!(h.count(10), 2.0);
        assert_eq!(h.count(45), 0.5);
        assert_eq!(h.total(), 2.5);
    }

    #[test]
    fn empty_log_gives_empty_histogram() {
        let h = biased_histogram(&TelemetryLog::new().view(), &binner());
        assert!(h.is_empty());
    }
}
