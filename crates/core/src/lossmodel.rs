//! Loss-aware correction: turn per-cell loss evidence into
//! inverse-observation-probability weights for the analysis kernels.
//!
//! The telemetry layer estimates, per loss cell (local hour × day kind ×
//! user class) and per calendar day, how many records a view *should*
//! have had ([`autosens_telemetry::loss::estimate_cell_loss`]). This
//! module converts that evidence into a [`LossModel`]: one weight per
//! cell plus one weight per flagged (day, hour), each `1 / (1 - rate)`
//! clamped to [`MAX_WEIGHT`], combined per record by
//! [`LossModel::weight_for`]. The pipeline then builds the biased
//! histogram (and the α grouping's per-group histograms) as a *weighted*
//! sum over records, so a (day, hour) that kept only 80% of its records
//! contributes each surviving record 1.25 times — undoing, in
//! expectation, the thinning the loss mechanism applied. The day factor
//! is essential, not a refinement: a weight constant over a whole time
//! group multiplies that group's biased counts and its α estimate
//! identically and cancels out of the α-normalized pool, so day-blind
//! cell weights alone cannot correct the α path at all.
//!
//! ## Why this removes MNAR bias
//!
//! The preference curve is a ratio of the biased latency distribution `B`
//! to the unbiased opportunity distribution `U`. Loss that is correlated
//! with time-of-day or class (and therefore, through the diurnal load
//! curve, with latency) thins `B` non-uniformly: slow-hour records vanish
//! more often, so high-latency mass is underrepresented and the fitted
//! curve looks *less* latency-averse than the population truly is.
//! Reweighting each observed record by the inverse of its cell's estimated
//! observation probability restores the expected cell totals before the
//! pooling step, which is exactly inverse-probability weighting under a
//! missing-at-random-within-cell assumption.
//!
//! ## When it is a no-op
//!
//! Zero estimated loss in every cell (clean telemetry, or loss the
//! estimators cannot see) yields unit weights everywhere —
//! [`LossModel::is_noop`] — and the pipeline skips the corrected path
//! entirely, leaving the report bit-identical to `loss_correct: false`.
//!
//! ## Failure modes
//!
//! * Loss invisible to the evidence layer (uniform thinning of irregular
//!   arrivals) leaves the curve uncorrected — but such MCAR loss does not
//!   bias the ratio `B/U` in the first place.
//! * Loss correlated with latency *within* a (day, hour) — finer than the
//!   day-localized grid — is only partially corrected: the model restores
//!   day and cell totals, not within-slot shape (a burst's surviving
//!   records keep the burst's own latency mix).
//! * Day-localized rates are measured against the median same-kind day;
//!   when more than half the days of a slot are damaged the baseline
//!   itself is depressed and the correction underestimates.
//! * A cell estimated near-total loss would explode its weight; the clamp
//!   at [`MAX_WEIGHT`] trades residual bias for bounded variance.

use serde::{Deserialize, Serialize};

use autosens_telemetry::loss::{loss_cell_index, LossEvidence, N_LOSS_CELLS};

/// Weight ceiling: a cell may be upweighted at most this much (rate
/// ≈ 0.9). Beyond that, a handful of surviving records would dominate the
/// pooled histogram, so the clamp bounds the variance of the correction.
pub const MAX_WEIGHT: f64 = 10.0;

/// Per-cell correction weights derived from loss evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossModel {
    /// One weight per loss cell, in cell-index order; `1.0` for clean cells.
    pub weights: Vec<f64>,
    /// The corrections actually applied (cells with weight > 1), for
    /// reporting.
    pub cells: Vec<CellCorrection>,
    /// Day-localized weights (sorted by day; only days with at least one
    /// upweighted hour appear). See [`LossModel::weight_for`] for why these
    /// exist separately from the cell weights.
    #[serde(default)]
    pub day_weights: Vec<DayWeights>,
    /// Volume-weighted overall estimated loss rate.
    pub overall_rate: f64,
}

/// Inverse-observation-probability weights for one calendar day
/// (class-pooled, per local hour — matching the day-localized evidence).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayWeights {
    /// Local day index.
    pub day: i64,
    /// 24 per-hour weights (`1.0` for clean hours).
    pub weights: Vec<f64>,
}

/// One corrected cell, as surfaced in reports and metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellCorrection {
    /// Loss-cell index.
    pub cell: usize,
    /// Metric-name-safe cell label (`h{hh}_{wd|we}_{class}`).
    pub label: String,
    /// Estimated loss rate of the cell.
    pub rate: f64,
    /// Applied inverse-observation-probability weight.
    pub weight: f64,
}

impl LossModel {
    /// Build the model from the telemetry layer's evidence.
    pub fn from_evidence(evidence: &LossEvidence) -> LossModel {
        let mut weights = vec![1.0f64; N_LOSS_CELLS];
        let mut cells = Vec::new();
        for c in &evidence.cells {
            if c.rate <= 0.0 {
                continue;
            }
            let weight = (1.0 / (1.0 - c.rate)).clamp(1.0, MAX_WEIGHT);
            weights[c.cell] = weight;
            cells.push(CellCorrection {
                cell: c.cell,
                label: c.label(),
                rate: c.rate,
                weight,
            });
        }
        let day_weights = evidence
            .day_rates
            .iter()
            .map(|d| DayWeights {
                day: d.day,
                weights: d
                    .rates
                    .iter()
                    .map(|&r| {
                        if r > 0.0 {
                            (1.0 / (1.0 - r).max(1.0 / MAX_WEIGHT)).clamp(1.0, MAX_WEIGHT)
                        } else {
                            1.0
                        }
                    })
                    .collect(),
            })
            .filter(|d| d.weights.iter().any(|&w| w > 1.0))
            .collect();
        LossModel {
            weights,
            cells,
            day_weights,
            overall_rate: evidence.overall_rate,
        }
    }

    /// A model that corrects nothing (unit weights).
    pub fn identity() -> LossModel {
        LossModel {
            weights: vec![1.0; N_LOSS_CELLS],
            cells: Vec::new(),
            day_weights: Vec::new(),
            overall_rate: 0.0,
        }
    }

    /// The correction weight of one record: its cell weight times its
    /// day-localized weight, clamped to [`MAX_WEIGHT`].
    ///
    /// The day factor is what makes the correction effective under the α
    /// normalization: a weight constant across a whole time group scales
    /// the group's biased histogram and its α estimate by the same factor
    /// and cancels out of the normalized pool, so cell weights alone
    /// cannot undo loss that the grouping already absorbs. Bursty (MNAR)
    /// loss hits *specific days* of a slot; restoring those days relative
    /// to the slot's median day reshapes the within-group mix — the part
    /// of the bias that survives α — which is exactly what the day factor
    /// does.
    pub fn weight_for(&self, day: i64, hour: u8, weekend: bool, class_code: u8) -> f64 {
        let cell_w = self.weights[loss_cell_index(hour, weekend, class_code)];
        let day_w = self
            .day_weights
            .binary_search_by_key(&day, |d| d.day)
            .ok()
            .map(|i| self.day_weights[i].weights[hour as usize])
            .unwrap_or(1.0);
        (cell_w * day_w).clamp(1.0, MAX_WEIGHT)
    }

    /// True when every weight is exactly 1 — the correction would not
    /// change a single bit of the report, and the pipeline skips it.
    pub fn is_noop(&self) -> bool {
        self.cells.is_empty() && self.day_weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_telemetry::loss::{loss_cell_index, CellLossEvidence};

    fn evidence_with(rates: &[(usize, f64)]) -> LossEvidence {
        let cells = (0..N_LOSS_CELLS)
            .map(|cell| {
                let rate = rates
                    .iter()
                    .find(|(c, _)| *c == cell)
                    .map(|(_, r)| *r)
                    .unwrap_or(0.0);
                let observed = 100u64;
                let expected = if rate > 0.0 {
                    observed as f64 / (1.0 - rate)
                } else {
                    observed as f64
                };
                CellLossEvidence {
                    cell,
                    hour: (cell / 2 / 2) as u8,
                    weekend: (cell / 2) % 2 == 1,
                    class_code: (cell % 2) as u8,
                    observed,
                    expected,
                    rate,
                }
            })
            .collect();
        LossEvidence {
            cells,
            day_rates: Vec::new(),
            overall_rate: rates.iter().map(|(_, r)| r).sum::<f64>() / N_LOSS_CELLS as f64,
        }
    }

    #[test]
    fn zero_evidence_is_a_noop() {
        let model = LossModel::from_evidence(&evidence_with(&[]));
        assert!(model.is_noop());
        assert!(model.weights.iter().all(|&w| w == 1.0));
        assert_eq!(model, {
            let mut id = LossModel::identity();
            id.overall_rate = model.overall_rate;
            id
        });
    }

    #[test]
    fn weights_are_inverse_observation_probability() {
        let cell = loss_cell_index(9, false, 0);
        let model = LossModel::from_evidence(&evidence_with(&[(cell, 0.2)]));
        assert!(!model.is_noop());
        assert!((model.weights[cell] - 1.25).abs() < 1e-12);
        assert!(model
            .weights
            .iter()
            .enumerate()
            .all(|(i, &w)| i == cell || w == 1.0));
        assert_eq!(model.cells.len(), 1);
        assert_eq!(model.cells[0].label, "h09_wd_business");
    }

    #[test]
    fn extreme_rates_are_clamped() {
        let cell = loss_cell_index(3, true, 1);
        let model = LossModel::from_evidence(&evidence_with(&[(cell, 0.99)]));
        assert_eq!(model.weights[cell], MAX_WEIGHT);
    }

    #[test]
    fn model_serializes() {
        let cell = loss_cell_index(12, false, 1);
        let model = LossModel::from_evidence(&evidence_with(&[(cell, 0.1)]));
        let json = serde_json::to_string(&model).unwrap();
        let back: LossModel = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
    }
}
