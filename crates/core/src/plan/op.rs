//! The operator table: the declared identity of every pipeline stage.
//!
//! Each stage of the estimator is described once, as data — its span
//! name, its upstream inputs, whether it draws from the seeded RNG
//! stream, and (when one exists) the mergeable per-shard partial state
//! an incremental caller may cache for it. Everything that used to be a
//! hand-placed string constant (the `"sanitize"` span, the
//! `STAGES` list, the profile artifact's stage column) derives from
//! this table, so adding or renaming an operator is a one-line change
//! that the spans, metrics, stage timings, and docs all follow.
//!
//! ## Why `draws_rng` is the cacheability frontier
//!
//! The pipeline seeds one `StdRng` after sanitize and threads it through
//! the stages in a fixed order. Any state accumulated *before* the first
//! draw is a pure, order-insensitive fold over the sanitized records —
//! unit-weight integer histogram additions and `u64` counters — so
//! per-shard partials of it merge bit-identically to a batch rescan.
//! Anything at or past a draw depends on the *global* window (the draw
//! count and instant layout are functions of the window's start/end), so
//! caching it per shard would change the random sequence and break the
//! bit-equality invariant. The CI bootstrap is the extreme case: it
//! resamples the final pooled histograms, so there is no per-shard
//! decomposition of it at all.

/// One pipeline stage's declared identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatorSpec {
    /// Span / stage-timing / metrics name (also the `Degradation::stage`
    /// label for problems this operator survives).
    pub name: &'static str,
    /// Names of the upstream operators whose output this one consumes
    /// (empty for the source operator).
    pub inputs: &'static [&'static str],
    /// Whether the operator consumes the seeded RNG stream. RNG-bearing
    /// operators are recomputed in full on every run — see the module
    /// docs for why they can never be cached per shard.
    pub draws_rng: bool,
    /// The `Mergeable` per-shard partial-aggregate state an incremental
    /// caller may cache for this operator (`None` when the operator has
    /// no pre-RNG per-shard decomposition). For `alpha` the *partition
    /// fold* is cacheable even though the solve itself draws: the fold
    /// happens entirely before the first draw.
    pub partial: Option<&'static str>,
}

impl OperatorSpec {
    /// Whether an incremental caller can cache per-shard state for this
    /// operator (it declares a partial). The partial always covers only
    /// the pre-RNG portion of the operator's work.
    pub const fn cacheable(&self) -> bool {
        self.partial.is_some()
    }
}

/// Filter / stable sort / exact dedup. Its "partial" is the sorted,
/// deduplicated shard column store the streaming engine maintains.
pub const SANITIZE: OperatorSpec = OperatorSpec {
    name: "sanitize",
    inputs: &[],
    draws_rng: false,
    partial: Some("sorted shard ColumnStore"),
};

/// Per-cell telemetry-loss estimation from in-band evidence.
pub const LOSSMODEL: OperatorSpec = OperatorSpec {
    name: "lossmodel",
    inputs: &["sanitize"],
    draws_rng: false,
    partial: Some("LossCounts"),
};

/// Per-group activity-factor (α) estimation. The record→cell fold is the
/// cacheable partial; the per-group solve draws from the RNG stream.
pub const ALPHA: OperatorSpec = OperatorSpec {
    name: "alpha",
    inputs: &["sanitize", "lossmodel"],
    draws_rng: true,
    partial: Some("GroupPartition"),
};

/// The pooled (α-normalized, loss-weighted) biased latency PDF — a
/// cell-order sum over the same `GroupPartition` the α stage folds.
pub const BIASED_PDF: OperatorSpec = OperatorSpec {
    name: "biased_pdf",
    inputs: &["sanitize", "alpha"],
    draws_rng: false,
    partial: Some("GroupPartition"),
};

/// The unbiased latency PDF from random draw instants. The draw count
/// and layout depend on the global window span — never cacheable.
pub const UNBIASED_PDF: OperatorSpec = OperatorSpec {
    name: "unbiased_pdf",
    inputs: &["sanitize", "alpha"],
    draws_rng: true,
    partial: None,
};

/// Savitzky–Golay smoothing of the B/U ratio.
pub const SMOOTHING: OperatorSpec = OperatorSpec {
    name: "smoothing",
    inputs: &["biased_pdf", "unbiased_pdf"],
    draws_rng: false,
    partial: None,
};

/// Normalization of the smoothed ratio at the reference latency.
pub const NORMALIZATION: OperatorSpec = OperatorSpec {
    name: "normalization",
    inputs: &["smoothing"],
    draws_rng: false,
    partial: None,
};

/// The bootstrap confidence band (optional, requested via
/// [`RunOptions`](crate::plan::RunOptions)). It resamples the final
/// pooled histograms on its own RNG stream, so it has no per-shard
/// decomposition whatsoever and can never be cached.
pub const CI_BOOTSTRAP: OperatorSpec = OperatorSpec {
    name: "ci_bootstrap",
    inputs: &["biased_pdf", "unbiased_pdf"],
    draws_rng: true,
    partial: None,
};

/// The exponentially-decayed windowed curve (optional, streaming-only).
/// Every record's weight depends on the window frontier — never
/// cacheable.
pub const WINDOWED_CURVE: OperatorSpec = OperatorSpec {
    name: "windowed_curve",
    inputs: &["sanitize"],
    draws_rng: true,
    partial: None,
};

/// The always-run operators, in execution order. One span per entry per
/// run. [`CI_BOOTSTRAP`] and [`WINDOWED_CURVE`] run only on request.
pub const OPERATORS: &[OperatorSpec] = &[
    SANITIZE,
    LOSSMODEL,
    ALPHA,
    BIASED_PDF,
    UNBIASED_PDF,
    SMOOTHING,
    NORMALIZATION,
];

/// The span names of the always-run operators, in execution order —
/// derived from [`OPERATORS`], never hand-maintained.
pub const STAGE_NAMES: &[&str] = &[
    OPERATORS[0].name,
    OPERATORS[1].name,
    OPERATORS[2].name,
    OPERATORS[3].name,
    OPERATORS[4].name,
    OPERATORS[5].name,
    OPERATORS[6].name,
];

/// Look an operator up by name (always-run and optional alike).
pub fn operator(name: &str) -> Option<&'static OperatorSpec> {
    const ALL: &[&OperatorSpec] = &[
        &SANITIZE,
        &LOSSMODEL,
        &ALPHA,
        &BIASED_PDF,
        &UNBIASED_PDF,
        &SMOOTHING,
        &NORMALIZATION,
        &CI_BOOTSTRAP,
        &WINDOWED_CURVE,
    ];
    ALL.iter().copied().find(|op| op.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_follow_the_operator_table() {
        assert_eq!(STAGE_NAMES.len(), OPERATORS.len());
        for (name, op) in STAGE_NAMES.iter().zip(OPERATORS) {
            assert_eq!(*name, op.name);
        }
    }

    #[test]
    fn every_input_names_a_known_operator() {
        for op in OPERATORS.iter().chain([&CI_BOOTSTRAP, &WINDOWED_CURVE]) {
            for input in op.inputs {
                assert!(
                    operator(input).is_some(),
                    "{}: unknown input {input}",
                    op.name
                );
            }
        }
    }

    #[test]
    fn inputs_only_reference_earlier_operators() {
        // The always-run chain is a DAG in execution order: an operator
        // may only consume outputs that already exist when it runs.
        for (i, op) in OPERATORS.iter().enumerate() {
            for input in op.inputs {
                let pos = OPERATORS.iter().position(|o| o.name == *input);
                assert!(
                    pos.is_some_and(|p| p < i),
                    "{} consumes {input}, which does not run before it",
                    op.name
                );
            }
        }
    }

    #[test]
    fn rng_operators_never_cache_past_the_fold() {
        // The only RNG-bearing operator with a partial is alpha, whose
        // partial covers the pre-draw record→cell fold.
        for op in [&UNBIASED_PDF, &CI_BOOTSTRAP, &WINDOWED_CURVE] {
            assert!(op.draws_rng);
            assert!(!op.cacheable(), "{} must not cache", op.name);
        }
        assert!(ALPHA.draws_rng && ALPHA.cacheable());
        assert!(operator("nonexistent").is_none());
    }
}
