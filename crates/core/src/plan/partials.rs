//! The bundled pre-RNG partial aggregates — one value per shard that an
//! incremental caller folds records into and merges at snapshot time.
//!
//! [`PlanPartials`] packages every cacheable operator state from the
//! [operator table](crate::plan::op): the `alpha`/`biased_pdf`
//! [`GroupPartition`] fold and the `lossmodel` [`LossCounts`] fold. (The
//! `sanitize` partial — the sorted, deduplicated shard columns — lives
//! in the caller's storage layer, not here.) Both folds are
//! order-insensitive sums of unit-weight integer counts, so merging
//! per-shard values in any order is bit-identical to a single batch
//! rescan; that is the invariant that lets a merged snapshot reproduce
//! batch `analyze` byte for byte.

use autosens_exec::Mergeable;
use autosens_stats::binning::Binner;
use autosens_telemetry::loss::LossCounts;
use autosens_telemetry::record::ActionRecord;

use crate::alpha::GroupPartition;
use crate::error::AutoSensError;

/// Every cacheable per-shard operator state, bundled.
#[derive(Debug, Clone)]
pub struct PlanPartials {
    /// The `alpha`/`biased_pdf` record→(group×period) cell fold.
    pub partition: GroupPartition,
    /// The `lossmodel` in-band evidence fold.
    pub loss: LossCounts,
}

impl PlanPartials {
    /// Empty partials on the given latency grid.
    pub fn empty(binner: &Binner) -> PlanPartials {
        PlanPartials {
            partition: GroupPartition::empty(binner),
            loss: LossCounts::new(),
        }
    }

    /// Fold one admitted record into every cacheable operator state.
    pub fn record(&mut self, r: &ActionRecord) {
        self.partition.record(r);
        self.loss.record(r.time, r.tz_offset_ms, r.class.code());
    }

    /// Merge another shard's partials in, failing on grid mismatch.
    pub fn try_merge(&mut self, other: &PlanPartials) -> Result<(), AutoSensError> {
        self.partition.merge(&other.partition)?;
        self.loss.merge(&other.loss);
        Ok(())
    }

    /// Records folded in so far (from the partition's action counts).
    pub fn n_records(&self) -> u64 {
        self.partition.n_records()
    }
}

impl Mergeable for PlanPartials {
    /// Panics on latency-grid mismatch, like the `Vec<T>` length-mismatch
    /// precedent: partials built under different grids are a programming
    /// error, not a runtime condition.
    fn merge(&mut self, other: Self) {
        self.try_merge(&other)
            .expect("PlanPartials::merge: latency grids differ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AutoSensConfig;
    use autosens_sim::{generate, Scenario, SimConfig};

    #[test]
    fn shardwise_merge_matches_batch_fold() {
        let (log, _) = generate(&SimConfig::scenario(Scenario::Smoke)).unwrap();
        let binner = AutoSensConfig::default().binner().unwrap();
        let mut batch = PlanPartials::empty(&binner);
        let records = log.to_records();
        for r in &records {
            batch.record(r);
        }
        let mut merged = PlanPartials::empty(&binner);
        for chunk in records.chunks(97) {
            let mut shard = PlanPartials::empty(&binner);
            for r in chunk {
                shard.record(r);
            }
            merged.merge(shard);
        }
        assert_eq!(merged.n_records(), batch.n_records());
        assert_eq!(merged.partition.cell_actions, batch.partition.cell_actions);
        assert_eq!(merged.loss.total(), batch.loss.total());
        assert_eq!(merged.loss.observed_cells(), batch.loss.observed_cells());
        for (a, b) in merged.partition.cells.iter().zip(&batch.partition.cells) {
            assert_eq!(a.counts(), b.counts());
        }
    }
}
