//! The analysis plan layer: the estimator's stage chain as an explicit
//! operator DAG with one entry point.
//!
//! The paper's pipeline is a fixed sequence — sanitize → lossmodel →
//! α → biased/unbiased PDFs → smoothing → normalization, with optional
//! CI-bootstrap and windowed-curve operators. This module declares that
//! sequence as data (the [operator table](op::OPERATORS)) and runs it
//! through a single entry point, [`AnalysisPlan::run`], which replaces
//! the six historical `analyze*` variants on [`AutoSens`] (kept as
//! `#[deprecated]` shims for one release). What varies between calls is
//! no longer *which method* but *which input shape* ([`PlanInput`]) and
//! *which optional operators* ([`RunOptions`]).
//!
//! Incremental callers cache the pre-RNG per-shard states declared in
//! the table ([`PlanPartials`]) and enter via [`PlanInput::prepared`];
//! the output is bit-identical to a batch run over the same records at
//! every thread count — see the [`op`] module docs for why the RNG
//! frontier is exactly the cacheability frontier.
//!
//! ```
//! use autosens_core::plan::{AnalysisPlan, PlanInput, RunOptions};
//! use autosens_core::AutoSensConfig;
//! use autosens_sim::{generate, Scenario, SimConfig};
//!
//! let (log, _) = generate(&SimConfig::scenario(Scenario::Smoke)).unwrap();
//! let plan = AnalysisPlan::new(AutoSensConfig::default());
//! let out = plan.run(PlanInput::log(&log), RunOptions::default()).unwrap();
//! assert!(out.report.n_actions > 0);
//! assert!(out.ci.is_none()); // CI bootstrap runs only on request
//! ```

pub mod op;
mod partials;

pub use op::{OperatorSpec, CI_BOOTSTRAP, OPERATORS, STAGE_NAMES, WINDOWED_CURVE};
pub use partials::PlanPartials;

use autosens_obs::Recorder;
use autosens_telemetry::log::{LogView, TelemetryLog};
use autosens_telemetry::query::Slice;

use crate::ci::PreferenceCi;
use crate::config::AutoSensConfig;
use crate::error::AutoSensError;
use crate::pipeline::{AnalysisReport, AutoSens, DecaySpec, Degradation};

/// What the plan runs over. All shapes converge on the same stage chain
/// and the same RNG streams, so for the same underlying records every
/// shape produces a bit-identical [`AnalysisReport`].
#[derive(Debug)]
pub enum PlanInput<'a> {
    /// A full log: sanitize selects all successful actions.
    Log(&'a TelemetryLog),
    /// One slice of a log.
    Slice {
        /// The log to analyze.
        log: &'a TelemetryLog,
        /// The slice filter to apply during sanitize.
        slice: &'a Slice,
    },
    /// One slice of a borrowed [`LogView`] — the zero-copy ingest shape;
    /// a memory-mapped container's columns flow to the kernels without
    /// materializing a row.
    View {
        /// The borrowed columns to analyze.
        view: &'a LogView<'a>,
        /// The slice filter to apply during sanitize.
        slice: &'a Slice,
    },
    /// An externally sanitized log plus cached pre-RNG operator state —
    /// the incremental shape the streaming engine uses. `log` must equal
    /// what batch sanitize would produce for the same input: filtered to
    /// the slice's successes, stably time-sorted, exact duplicates
    /// removed keep-first.
    Prepared {
        /// The sanitized (sorted, deduplicated) log of successes.
        log: &'a TelemetryLog,
        /// The caller's sanitize bookkeeping and cached partials.
        meta: PreparedMeta,
    },
}

impl<'a> PlanInput<'a> {
    /// Analyze a full log (successful actions only, as in the paper).
    pub fn log(log: &'a TelemetryLog) -> PlanInput<'a> {
        PlanInput::Log(log)
    }

    /// Analyze one slice of a log.
    pub fn slice(log: &'a TelemetryLog, slice: &'a Slice) -> PlanInput<'a> {
        PlanInput::Slice { log, slice }
    }

    /// Analyze one slice of a borrowed view.
    pub fn view(view: &'a LogView<'a>, slice: &'a Slice) -> PlanInput<'a> {
        PlanInput::View { view, slice }
    }

    /// Analyze an externally sanitized log (see [`PlanInput::Prepared`]).
    pub fn prepared(log: &'a TelemetryLog, meta: PreparedMeta) -> PlanInput<'a> {
        PlanInput::Prepared { log, meta }
    }
}

/// Sanitize bookkeeping and cached operator state accompanying a
/// [`PlanInput::Prepared`] input. [`Default`] is a clean, cacheless
/// prepared run: no degradations, no partials, no windowed curve.
#[derive(Debug, Clone, Default)]
pub struct PreparedMeta {
    /// Degradations observed while preparing (out-of-order arrival,
    /// duplicates removed, …), in the order batch sanitize would report
    /// them: re-sort first, then duplicate removal.
    pub degradations: Vec<Degradation>,
    /// Records that entered sanitize after filtering (pre-dedup count).
    pub records_in: usize,
    /// Records dropped by deduplication.
    pub records_dropped: usize,
    /// Cached pre-RNG operator partials matching the log exactly; when
    /// present the lossmodel and α folds skip their rescans.
    pub partials: Option<PlanPartials>,
    /// Optional windowed-decay request: when present the report also
    /// carries an exponentially-decayed windowed curve. The lifetime
    /// curve is unaffected either way.
    pub decay: Option<DecaySpec>,
}

/// A CI-bootstrap request (see [`crate::ci`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CiSpec {
    /// Bootstrap replicate count.
    pub replicates: usize,
    /// Two-sided confidence level (e.g. `0.95`).
    pub level: f64,
}

/// Which optional operators a [`AnalysisPlan::run`] executes on top of
/// the always-run chain.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunOptions {
    /// Run the [`op::CI_BOOTSTRAP`] operator and return a confidence
    /// band in [`RunOutput::ci`].
    pub ci: Option<CiSpec>,
}

impl RunOptions {
    /// Request a bootstrap confidence band.
    pub fn with_ci(replicates: usize, level: f64) -> RunOptions {
        RunOptions {
            ci: Some(CiSpec { replicates, level }),
        }
    }
}

/// What a [`AnalysisPlan::run`] produced.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The completed analysis (including the CI stage's timing when one
    /// was requested).
    pub report: AnalysisReport,
    /// The bootstrap confidence band, when [`RunOptions::ci`] asked for
    /// one.
    pub ci: Option<PreferenceCi>,
}

/// The single analysis entry point: an executable instance of the
/// [operator table](op::OPERATORS) over an [`AutoSens`] engine.
///
/// Construct one per configuration (or borrow one from an existing
/// engine via [`AutoSens::plan`] — the recorder is shared, so spans and
/// metrics land in the same place) and call [`AnalysisPlan::run`] with
/// the input shape at hand.
#[derive(Debug, Clone)]
pub struct AnalysisPlan {
    engine: AutoSens,
}

impl AnalysisPlan {
    /// A plan with a configuration (validated at run time) and no span
    /// buffering — reports still carry stage timings.
    pub fn new(config: AutoSensConfig) -> AnalysisPlan {
        AnalysisPlan {
            engine: AutoSens::new(config),
        }
    }

    /// A plan that records spans and metrics into `recorder`.
    pub fn with_recorder(config: AutoSensConfig, recorder: Recorder) -> AnalysisPlan {
        AnalysisPlan {
            engine: AutoSens::with_recorder(config, recorder),
        }
    }

    /// Wrap an existing engine (shares its recorder).
    pub fn from_engine(engine: AutoSens) -> AnalysisPlan {
        AnalysisPlan { engine }
    }

    /// The underlying engine (for the per-slice drivers that remain on
    /// [`AutoSens`]: `by_action_type`, `full_report`, …).
    pub fn engine(&self) -> &AutoSens {
        &self.engine
    }

    /// The plan's configuration.
    pub fn config(&self) -> &AutoSensConfig {
        self.engine.config()
    }

    /// The plan's recorder.
    pub fn recorder(&self) -> &Recorder {
        self.engine.recorder()
    }

    /// The always-run operator table, in execution order.
    pub fn operators() -> &'static [OperatorSpec] {
        op::OPERATORS
    }

    /// Run the plan over an input. One span per always-run operator,
    /// plus one per requested optional operator; stage timings in the
    /// report follow the same order.
    pub fn run(&self, input: PlanInput<'_>, opts: RunOptions) -> Result<RunOutput, AutoSensError> {
        let mut report = match input {
            PlanInput::Log(log) => self.engine.analyze_view_impl(&log.view(), &Slice::all())?,
            PlanInput::Slice { log, slice } => self.engine.analyze_view_impl(&log.view(), slice)?,
            PlanInput::View { view, slice } => self.engine.analyze_view_impl(view, slice)?,
            PlanInput::Prepared { log, meta } => self.engine.analyze_prepared_impl(log, meta)?,
        };
        let ci = match opts.ci {
            Some(spec) => Some(
                self.engine
                    .ci_impl(&mut report, spec.replicates, spec.level)?,
            ),
            None => None,
        };
        Ok(RunOutput { report, ci })
    }
}

impl AutoSens {
    /// Borrow this engine as a plan (clones the engine; the recorder is
    /// `Arc`-shared, so spans and metrics keep landing in this engine's
    /// recorder).
    pub fn plan(&self) -> AnalysisPlan {
        AnalysisPlan {
            engine: self.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_sim::{generate, Scenario, SimConfig};

    fn smoke_log() -> TelemetryLog {
        let (log, _) = generate(&SimConfig::scenario(Scenario::Smoke)).unwrap();
        log
    }

    fn fast_config() -> AutoSensConfig {
        AutoSensConfig {
            unbiased_draws: 48_000,
            min_supported_bins: 15,
            ..AutoSensConfig::default()
        }
    }

    #[test]
    fn every_input_shape_matches_the_log_shape() {
        let log = smoke_log();
        let plan = AnalysisPlan::new(fast_config());
        let base = plan
            .run(PlanInput::log(&log), RunOptions::default())
            .unwrap()
            .report;
        let all = Slice::all();
        let by_slice = plan
            .run(PlanInput::slice(&log, &all), RunOptions::default())
            .unwrap()
            .report;
        let view = log.view();
        let by_view = plan
            .run(PlanInput::view(&view, &all), RunOptions::default())
            .unwrap()
            .report;
        assert_eq!(base.preference.series(), by_slice.preference.series());
        assert_eq!(base.preference.series(), by_view.preference.series());
        assert_eq!(base.n_actions, by_view.n_actions);
    }

    #[test]
    fn ci_request_appends_the_bootstrap_stage() {
        let log = smoke_log();
        let plan = AnalysisPlan::new(fast_config());
        let out = plan
            .run(PlanInput::log(&log), RunOptions::with_ci(25, 0.95))
            .unwrap();
        let ci = out.ci.expect("ci requested");
        assert!(ci.replicates > 0);
        let timings = out.report.stage_timings.unwrap();
        assert_eq!(
            timings.last().unwrap().stage,
            op::CI_BOOTSTRAP.name,
            "CI stage timing must come last"
        );
    }

    #[test]
    fn prepared_shape_with_partials_is_bit_identical_to_batch() {
        let log = smoke_log();
        let plan = AnalysisPlan::new(fast_config());
        let batch = plan
            .run(PlanInput::log(&log), RunOptions::default())
            .unwrap()
            .report;

        // Sanitize externally: the smoke log is clean, so select + sort
        // is the identity and partials can be folded record by record.
        let selected = Slice::all().successes().select(&log);
        let sanitized = selected.materialize();
        let binner = plan.config().binner().unwrap();
        let mut partials = PlanPartials::empty(&binner);
        for r in &sanitized.to_records() {
            partials.record(r);
        }
        let records_in = sanitized.view().len();
        let meta = PreparedMeta {
            records_in,
            partials: Some(partials),
            ..PreparedMeta::default()
        };
        let prepared = plan
            .run(PlanInput::prepared(&sanitized, meta), RunOptions::default())
            .unwrap()
            .report;
        assert_eq!(batch.preference.series(), prepared.preference.series());
        assert_eq!(batch.biased.counts(), prepared.biased.counts());
        assert_eq!(batch.unbiased.counts(), prepared.unbiased.counts());
        assert_eq!(batch.n_actions, prepared.n_actions);
    }
}
