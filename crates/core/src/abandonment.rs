//! Session-abandonment analysis for *non-sticky* services (paper §4).
//!
//! For services a user can walk away from (search, streaming, shopping),
//! the natural latency-sensitivity signal is **session continuation**:
//! after an action completes with latency `L`, does the user perform
//! another action in the same session, or abandon? This module
//! reconstructs sessions from raw telemetry (per-user gap threshold),
//! labels each action *continued* or *terminal*, and fits the continuation
//! rate as a function of latency — smoothed and normalized exactly like
//! the preference curve, so the two analyses read on the same scale.
//!
//! The last action before the simulation/log horizon is right-censored (we
//! cannot know whether the user would have continued); actions within one
//! gap-threshold of the log's end are excluded from the denominator.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use autosens_stats::histogram::Histogram;
use autosens_telemetry::log::TelemetryLog;
use autosens_telemetry::record::UserId;

use crate::config::AutoSensConfig;
use crate::error::AutoSensError;
use crate::preference::NormalizedPreference;

/// Summary statistics of the reconstructed sessions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Number of reconstructed sessions.
    pub n_sessions: u64,
    /// Number of actions considered (after censoring).
    pub n_actions: u64,
    /// Number of actions followed by another in-session action.
    pub n_continued: u64,
    /// Mean actions per session.
    pub mean_session_len: f64,
    /// The gap threshold used, ms.
    pub gap_ms: i64,
}

impl SessionStats {
    /// Overall (latency-independent) continuation rate.
    pub fn overall_continuation(&self) -> f64 {
        if self.n_actions == 0 {
            0.0
        } else {
            self.n_continued as f64 / self.n_actions as f64
        }
    }
}

/// The result of the abandonment analysis.
#[derive(Debug, Clone)]
pub struct AbandonmentReport {
    /// Continuation rate vs latency, normalized at the reference latency
    /// (1.0 at the reference; 0.9 at some latency = 10% relative drop in
    /// the probability of continuing the session).
    pub continuation: NormalizedPreference,
    /// Session reconstruction statistics.
    pub stats: SessionStats,
}

/// Fit the normalized session-continuation curve of a (pre-sliced) log.
///
/// `gap_ms` is the sessionization threshold: two consecutive actions of the
/// same user further apart than this belong to different sessions. The
/// smoothing/normalization parameters come from `cfg` (same bins, window,
/// and reference latency as the preference pipeline).
pub fn session_continuation(
    log: &TelemetryLog,
    cfg: &AutoSensConfig,
    gap_ms: i64,
) -> Result<AbandonmentReport, AutoSensError> {
    cfg.validate()?;
    if gap_ms <= 0 {
        return Err(AutoSensError::BadConfig(format!(
            "session gap must be > 0 ms, got {gap_ms}"
        )));
    }
    if log.is_empty() {
        return Err(AutoSensError::EmptySlice("abandonment analysis".into()));
    }
    let horizon = log.end_time().expect("non-empty").millis();
    let binner = cfg.binner()?;

    // Per-user chronological action streams. A sorted input log yields
    // sorted per-user streams because filtering preserves order.
    let mut per_user: HashMap<UserId, Vec<(i64, f64)>> = HashMap::new();
    for r in log.iter() {
        per_user
            .entry(r.user)
            .or_default()
            .push((r.time.millis(), r.latency_ms));
    }

    let mut all = Histogram::new(binner.clone());
    let mut continued = Histogram::new(binner.clone());
    let mut n_sessions = 0u64;
    let mut n_actions = 0u64;
    let mut n_continued = 0u64;
    let mut total_len = 0u64;

    for stream in per_user.values() {
        let mut session_open = false;
        for (i, &(t, latency)) in stream.iter().enumerate() {
            if !session_open {
                n_sessions += 1;
                session_open = true;
            }
            let next = stream.get(i + 1);
            let continues = match next {
                Some(&(t_next, _)) => t_next - t <= gap_ms,
                None => false,
            };
            total_len += 1;
            if !continues {
                session_open = false;
            }
            // Right-censoring: an action too close to the horizon cannot be
            // labeled (its continuation may lie beyond the log).
            if !continues && horizon - t <= gap_ms {
                continue;
            }
            n_actions += 1;
            all.record(latency);
            if continues {
                n_continued += 1;
                continued.record(latency);
            }
        }
    }

    if all.is_empty() {
        return Err(AutoSensError::EmptySlice(
            "no labelable actions after censoring".into(),
        ));
    }

    // The ratio of fractions equals continuation_rate(L) / overall_rate up
    // to normalization — which the reference-latency normalization removes,
    // so the standard fit machinery applies directly.
    let continuation = NormalizedPreference::fit(&continued, &all, cfg)?;

    Ok(AbandonmentReport {
        continuation,
        stats: SessionStats {
            n_sessions,
            n_actions,
            n_continued,
            mean_session_len: if n_sessions > 0 {
                total_len as f64 / n_sessions as f64
            } else {
                0.0
            },
            gap_ms,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass};
    use autosens_telemetry::time::SimTime;

    fn rec(user: u64, t: i64, latency: f64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t),
            action: ActionType::SelectMail,
            latency_ms: latency,
            user: UserId(user),
            class: UserClass::Consumer,
            tz_offset_ms: 0,
            outcome: Outcome::Success,
        }
    }

    fn cfg() -> AutoSensConfig {
        AutoSensConfig {
            latency_hi_ms: 1000.0,
            savgol_window: 11,
            min_biased_count: 1.0,
            min_unbiased_count: 1.0,
            min_supported_bins: 5,
            ..AutoSensConfig::default()
        }
    }

    #[test]
    fn sessionization_counts_sessions_and_continuations() {
        // User 1: a 3-action session, then (after a long gap) a singleton.
        // User 2: one 2-action session. A far-future sentinel record keeps
        // the horizon away so no action is censored.
        let log = TelemetryLog::from_records(vec![
            rec(1, 0, 100.0),
            rec(1, 10_000, 200.0),
            rec(1, 20_000, 300.0),
            rec(1, 10_000_000, 400.0),
            rec(2, 5_000, 150.0),
            rec(2, 15_000, 250.0),
            rec(3, 99_000_000, 500.0), // horizon sentinel (censored itself)
        ])
        .unwrap();
        // This test exercises sessionization counting; the toy latencies
        // support only a few bins, so relax the fit gates accordingly.
        let cfg = AutoSensConfig {
            min_supported_bins: 2,
            reference_latency_ms: 150.0,
            ..cfg()
        };
        let report = session_continuation(&log, &cfg, 60_000).unwrap();
        let s = &report.stats;
        assert_eq!(s.n_sessions, 4); // 2 for user1, 1 for user2, 1 sentinel
        assert_eq!(s.n_continued, 3); // user1: 2, user2: 1
                                      // Labelable: all 6 non-sentinel actions.
        assert_eq!(s.n_actions, 6);
        assert!((s.overall_continuation() - 0.5).abs() < 1e-9);
        assert_eq!(s.gap_ms, 60_000);
    }

    #[test]
    fn censored_tail_actions_are_excluded() {
        // Terminal action right at the horizon: cannot be labeled.
        let log = TelemetryLog::from_records(vec![
            rec(1, 0, 100.0),
            rec(1, 10_000, 200.0), // terminal, and 10s before horizon
        ])
        .unwrap();
        let report = session_continuation(&log, &cfg(), 60_000);
        // The first action is labelable (continued); the second is censored
        // -> only one action in the histograms, which cannot support a fit.
        assert!(report.is_err());
    }

    #[test]
    fn recovers_a_planted_continuation_step() {
        // Synthetic sessions where actions with latency < 500 always
        // continue and actions >= 500 never do (deterministic truth).
        let mut records = Vec::new();
        let mut t = 0i64;
        let mut user = 0u64;
        for i in 0..4000 {
            let latency = 105.0 + (i % 80) as f64 * 10.0; // 105 .. 905
            user += 1;
            // Two-action session when fast, singleton when slow.
            records.push(rec(user, t, latency));
            if latency < 500.0 {
                records.push(rec(user, t + 5_000, latency));
            }
            t += 200_000;
        }
        // Horizon sentinel far in the future.
        records.push(rec(9_999_999, t + 100_000_000, 300.0));
        let log = TelemetryLog::from_records(records).unwrap();
        let report = session_continuation(&log, &cfg(), 60_000).unwrap();
        let c = &report.continuation;
        // Continuation is ~flat-high below 500 and collapses above.
        let low = c.at(300.0).unwrap();
        let high = c.at(800.0);
        assert!((low - 1.0).abs() < 0.15, "low = {low}");
        match high {
            // The >=500 bins hold only terminal actions; with smoothing the
            // curve near 800 must be far below the fast region...
            Some(h) => assert!(h < 0.4, "high = {h}"),
            // ...or entirely unsupported in `continued`, which shows up as
            // a span ending near 500.
            None => assert!(c.span_ms().1 <= 600.0),
        }
    }

    #[test]
    fn error_cases() {
        let log = TelemetryLog::new();
        assert!(session_continuation(&log, &cfg(), 60_000).is_err());
        let log = TelemetryLog::from_records(vec![rec(1, 0, 100.0)]).unwrap();
        assert!(session_continuation(&log, &cfg(), 0).is_err());
        assert!(session_continuation(&log, &cfg(), -5).is_err());
        let bad = AutoSensConfig {
            savgol_window: 4,
            ..cfg()
        };
        assert!(session_continuation(&log, &bad, 60_000).is_err());
    }
}
