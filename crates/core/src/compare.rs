//! Comparing two preference curves.
//!
//! Figure 9's month-over-month stability claim — and any operational
//! regression check ("did last week's deploy make users more latency-
//! sensitive?") — reduces to comparing two normalized preference curves
//! over their shared support. This module computes the standard gap
//! statistics between two fitted curves.

use serde::{Deserialize, Serialize};

use crate::preference::NormalizedPreference;

/// Gap statistics between two curves over a shared latency grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurveComparison {
    /// Mean absolute gap over the shared probes.
    pub mae: f64,
    /// Maximum absolute gap, with the latency where it occurs.
    pub max_gap: (f64, f64),
    /// Mean signed gap (`a - b`): positive when `a` sits above `b`,
    /// i.e. `b` is the more latency-sensitive curve.
    pub mean_signed: f64,
    /// The compared points: `(latency, a, b)`.
    pub points: Vec<(f64, f64, f64)>,
}

impl CurveComparison {
    /// Whether the curves agree within `tolerance` everywhere probed.
    pub fn agrees_within(&self, tolerance: f64) -> bool {
        self.max_gap.1 <= tolerance
    }
}

/// Compare two curves at the given latencies. Probes outside either
/// curve's span are skipped; `None` when no probe is shared.
pub fn compare_curves(
    a: &NormalizedPreference,
    b: &NormalizedPreference,
    grid: &[f64],
) -> Option<CurveComparison> {
    let mut points = Vec::new();
    for &l in grid {
        if let (Some(va), Some(vb)) = (a.at(l), b.at(l)) {
            points.push((l, va, vb));
        }
    }
    if points.is_empty() {
        return None;
    }
    let n = points.len() as f64;
    let mae = points.iter().map(|(_, x, y)| (x - y).abs()).sum::<f64>() / n;
    let mean_signed = points.iter().map(|(_, x, y)| x - y).sum::<f64>() / n;
    let max_gap = points
        .iter()
        .map(|(l, x, y)| (*l, (x - y).abs()))
        .max_by(|p, q| p.1.partial_cmp(&q.1).expect("finite gaps"))
        .expect("non-empty");
    Some(CurveComparison {
        mae,
        max_gap,
        mean_signed,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AutoSensConfig;
    use autosens_stats::binning::{Binner, OutOfRange};
    use autosens_stats::histogram::Histogram;

    fn fit(f: impl Fn(f64) -> f64) -> NormalizedPreference {
        let b = Binner::new(0.0, 1000.0, 10.0, OutOfRange::Discard).unwrap();
        let mut biased = Histogram::new(b.clone());
        let mut unbiased = Histogram::new(b.clone());
        for i in 0..b.n_bins() {
            let c = b.center(i);
            unbiased.record_weighted(c, 1000.0);
            biased.record_weighted(c, 1000.0 * f(c));
        }
        let cfg = AutoSensConfig {
            latency_hi_ms: 1000.0,
            savgol_window: 11,
            min_biased_count: 1.0,
            min_unbiased_count: 1.0,
            min_supported_bins: 10,
            ..AutoSensConfig::default()
        };
        NormalizedPreference::fit(&biased, &unbiased, &cfg).unwrap()
    }

    #[test]
    fn identical_curves_have_zero_gap() {
        let a = fit(|l| 1.5 - l / 1000.0);
        let b = fit(|l| 1.5 - l / 1000.0);
        let grid: Vec<f64> = (1..10).map(|i| i as f64 * 100.0).collect();
        let cmp = compare_curves(&a, &b, &grid).unwrap();
        assert!(cmp.mae < 1e-9);
        assert!(cmp.max_gap.1 < 1e-9);
        assert!(cmp.mean_signed.abs() < 1e-9);
        assert!(cmp.agrees_within(0.01));
        assert_eq!(cmp.points.len(), 9);
    }

    #[test]
    fn shifted_curves_report_the_gap_and_its_sign() {
        // `b` drops faster with latency -> more sensitive -> a - b > 0 at
        // latencies above the reference.
        let a = fit(|l| 2.0 - l / 1000.0);
        let b = fit(|l| 2.0 - 1.5 * l / 1000.0);
        let grid = [500.0, 700.0, 900.0];
        let cmp = compare_curves(&a, &b, &grid).unwrap();
        assert!(cmp.mae > 0.01);
        assert!(cmp.mean_signed > 0.0, "{cmp:?}");
        // The gap grows with latency, so the max is at the last probe.
        assert_eq!(cmp.max_gap.0, 900.0);
        assert!(!cmp.agrees_within(0.01));
    }

    #[test]
    fn disjoint_probes_yield_none() {
        let a = fit(|_| 1.0);
        let b = fit(|_| 1.0);
        assert!(compare_curves(&a, &b, &[5000.0, 9000.0]).is_none());
        assert!(compare_curves(&a, &b, &[]).is_none());
    }
}
