//! AutoSens pipeline configuration, defaulting to the paper's parameters.

use serde::{Deserialize, Serialize};

use autosens_stats::binning::{Binner, OutOfRange};

use crate::error::AutoSensError;

/// Configuration of the AutoSens analysis pipeline.
///
/// Defaults follow §2.3/§2.4 of the paper: 10 ms latency bins, a
/// Savitzky–Golay filter with window 101 and degree 3, a 300 ms reference
/// latency, and 1-hour confounder slots with multi-reference α averaging.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoSensConfig {
    /// Latency bin width in ms (paper: 10 ms).
    pub bin_width_ms: f64,
    /// Upper edge of the analyzed latency range in ms; samples above are
    /// discarded (the paper's figures span up to ~2–2.5 s).
    pub latency_hi_ms: f64,
    /// Savitzky–Golay window length in bins (paper: 101).
    pub savgol_window: usize,
    /// Savitzky–Golay polynomial degree (paper: 3).
    pub savgol_degree: usize,
    /// Reference latency for normalization in ms (paper: 300 ms).
    pub reference_latency_ms: f64,
    /// Total number of random instants drawn to estimate the unbiased
    /// distribution `U` (split evenly across confounder slots when the
    /// α-correction is enabled).
    pub unbiased_draws: usize,
    /// Whether to apply the §2.4.1 time-confounder correction.
    pub alpha_correction: bool,
    /// How many (highest-volume) slots to use in turn as the α reference
    /// before averaging (§2.4.1: "pick multiple references in turn").
    pub alpha_references: usize,
    /// Minimum action count for a latency bin to participate in α
    /// estimation and in the B/U ratio.
    pub min_biased_count: f64,
    /// Minimum unbiased-draw count for a latency bin to participate.
    pub min_unbiased_count: f64,
    /// Minimum number of supported bins required to fit a preference curve.
    pub min_supported_bins: usize,
    /// Seed for the random draws (unbiased sampling, tie-breaking).
    pub seed: u64,
    /// Timezone offset (ms) used to define the analysis' hour slots. The
    /// paper slices to a single region (U.S. users); this reproduction's
    /// default population lives at offset 0.
    pub slot_tz_offset_ms: i64,
    /// Split the confounder slots by weekday vs weekend (48 groups instead
    /// of 24). §2.4.1 names the day of week as part of the time confounder;
    /// enable this when weekend load (and hence latency) differs from
    /// weekdays. Off by default, matching the paper's hour-of-day slots.
    #[serde(default)]
    pub weekday_weekend_slots: bool,
    /// Weight per-bin α values by their estimated precision when averaging
    /// across latency bins, instead of the paper's uniform average. Cuts
    /// the α noise of sparsely populated slots; off by default to match
    /// the paper exactly.
    #[serde(default)]
    pub alpha_precision_weighting: bool,
    /// Worker threads for the data-parallel stages (sanitize, α partition,
    /// unbiased draws, bootstrap replicates). `0` means "all available
    /// cores". The analysis output is bit-identical for every value: chunk
    /// boundaries depend only on the data, and partials merge in chunk
    /// order.
    #[serde(default)]
    pub threads: usize,
    /// Estimate per-slot/per-class telemetry loss from in-band evidence
    /// and reweight the preference estimate by inverse observation
    /// probability. On by default; when the estimated loss is zero the
    /// correction is a provable no-op and the report is bit-identical to
    /// running with this off.
    #[serde(default = "default_loss_correct")]
    pub loss_correct: bool,
}

fn default_loss_correct() -> bool {
    true
}

impl Default for AutoSensConfig {
    fn default() -> Self {
        AutoSensConfig {
            bin_width_ms: 10.0,
            latency_hi_ms: 3_000.0,
            savgol_window: 101,
            savgol_degree: 3,
            reference_latency_ms: 300.0,
            unbiased_draws: 480_000,
            alpha_correction: true,
            alpha_references: 4,
            min_biased_count: 10.0,
            min_unbiased_count: 10.0,
            min_supported_bins: 20,
            seed: 0x5E_ED_00,
            slot_tz_offset_ms: 0,
            weekday_weekend_slots: false,
            alpha_precision_weighting: false,
            threads: 0,
            loss_correct: true,
        }
    }
}

impl AutoSensConfig {
    /// Validate the configuration and build the latency binner.
    pub fn binner(&self) -> Result<Binner, AutoSensError> {
        self.validate()?;
        Binner::new(
            0.0,
            self.latency_hi_ms,
            self.bin_width_ms,
            OutOfRange::Discard,
        )
        .map_err(AutoSensError::from)
    }

    /// Check all parameter domains.
    pub fn validate(&self) -> Result<(), AutoSensError> {
        let bad = |why: &str| Err(AutoSensError::BadConfig(why.into()));
        if !(self.bin_width_ms > 0.0 && self.bin_width_ms.is_finite()) {
            return bad("bin_width_ms must be positive");
        }
        if !self.latency_hi_ms.is_finite() || self.latency_hi_ms <= self.bin_width_ms {
            return bad("latency_hi_ms must exceed bin_width_ms");
        }
        if self.savgol_window < 3 || self.savgol_window.is_multiple_of(2) {
            return bad("savgol_window must be odd and >= 3");
        }
        if self.savgol_degree >= self.savgol_window {
            return bad("savgol_degree must be < savgol_window");
        }
        if !(self.reference_latency_ms >= 0.0 && self.reference_latency_ms < self.latency_hi_ms) {
            return bad("reference_latency_ms must lie within the latency range");
        }
        if self.unbiased_draws == 0 {
            return bad("unbiased_draws must be > 0");
        }
        if self.alpha_references == 0 {
            return bad("alpha_references must be >= 1");
        }
        if !(self.min_biased_count >= 0.0 && self.min_unbiased_count >= 0.0) {
            return bad("min counts must be >= 0");
        }
        if self.min_supported_bins == 0 {
            return bad("min_supported_bins must be >= 1");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = AutoSensConfig::default();
        assert_eq!(c.bin_width_ms, 10.0);
        assert_eq!(c.savgol_window, 101);
        assert_eq!(c.savgol_degree, 3);
        assert_eq!(c.reference_latency_ms, 300.0);
        assert!(c.alpha_correction);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn binner_covers_the_range() {
        let c = AutoSensConfig::default();
        let b = c.binner().unwrap();
        assert_eq!(b.n_bins(), 300);
        assert_eq!(b.width(), 10.0);
        assert_eq!(b.index_of(299.0), Some(29));
        assert_eq!(b.index_of(3000.0), None);
    }

    #[test]
    fn validation_catches_violations() {
        let good = AutoSensConfig::default();
        let mut c;

        c = good.clone();
        c.bin_width_ms = 0.0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.latency_hi_ms = 5.0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.savgol_window = 100;
        assert!(c.validate().is_err());

        c = good.clone();
        c.savgol_degree = 101;
        assert!(c.validate().is_err());

        c = good.clone();
        c.reference_latency_ms = 3_000.0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.unbiased_draws = 0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.alpha_references = 0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.min_biased_count = -1.0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.min_supported_bins = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let c = AutoSensConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: AutoSensConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
