//! The time-based activity factor `α` (§2.4.1).
//!
//! User activity and latency both follow the clock, so time confounds any
//! naive pooling of data across hours. The paper's correction estimates, for
//! each time group `T` (1-hour slots by default) and latency bin `L`:
//!
//! * `c_T^L` — the count of actions with latency `L` in group `T`;
//! * `f_T^L` — the fraction of group `T`'s *time* during which the latency
//!   is `L`, estimated from the group-conditional unbiased distribution;
//! * the temporal action rate `c_T^L / f_T^L`;
//! * `α_{T,L}` — the rate relative to a reference group at the *same*
//!   latency bin, so the latency effect cancels and only the time effect
//!   remains;
//! * `α_T` — the average of `α_{T,L}` over latency bins (the paper verifies,
//!   and Figure 8 shows, that `α` is flat across bins).
//!
//! Counts are then divided by `α_T` before pooling, which replaces e.g. the
//! small night-time counts with counts commensurate with how *prevalent*
//! each latency is at night. Because noise makes the result depend on the
//! reference, several references are used in turn and the results averaged.

use rand::Rng;

use autosens_exec::ExecReport;
use autosens_stats::binning::Binner;
use autosens_stats::histogram::Histogram;
use autosens_telemetry::log::LogView;
use autosens_telemetry::loss::{loss_cell_index, N_LOSS_CELLS, N_LOSS_CLASSES};
use autosens_telemetry::record::ActionRecord;
use autosens_telemetry::time::{DayPeriod, MS_PER_DAY, MS_PER_HOUR};

use crate::config::AutoSensConfig;
use crate::error::AutoSensError;
use crate::lossmodel::LossModel;
use crate::unbiased::unbiased_histogram_in_windows_par;

/// How records are grouped in time for the confounder correction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grouping {
    /// 24 one-hour slots by local hour of day (the paper's §2.4.1 choice).
    HourSlots,
    /// The four 6-hour day periods (used for the Figure 8 analysis).
    DayPeriods,
    /// 48 groups: one-hour slots split by weekday vs weekend (groups
    /// 0..24 weekday, 24..48 weekend). §2.4.1 names the day of week as
    /// part of the time confounder; this grouping corrects it when
    /// weekend load (and hence latency) differs from weekdays.
    HourSlotsByDayKind,
}

impl Grouping {
    /// Number of groups.
    pub fn n_groups(self) -> usize {
        match self {
            Grouping::HourSlots => 24,
            Grouping::DayPeriods => 4,
            Grouping::HourSlotsByDayKind => 48,
        }
    }

    /// Group index of a (local hour of day, weekend flag) pair.
    pub fn group_of(self, hour: u8, weekend: bool) -> usize {
        match self {
            Grouping::HourSlots => hour as usize,
            Grouping::DayPeriods => match DayPeriod::of_hour(hour) {
                DayPeriod::Morning8to14 => 0,
                DayPeriod::Afternoon14to20 => 1,
                DayPeriod::Evening20to2 => 2,
                DayPeriod::Night2to8 => 3,
            },
            Grouping::HourSlotsByDayKind => hour as usize + if weekend { 24 } else { 0 },
        }
    }

    /// Group index of a local hour on a weekday (convenience for the
    /// groupings that ignore the day kind).
    pub fn group_of_hour(self, hour: u8) -> usize {
        self.group_of(hour, false)
    }

    /// Whether a (local hour, weekend) cell belongs to a group.
    pub fn contains(self, group: usize, hour: u8, weekend: bool) -> bool {
        self.group_of(hour, weekend) == group
    }

    /// The local hours belonging to a group index (either day kind).
    pub fn hours_of_group(self, group: usize) -> Vec<u8> {
        (0..24u8)
            .filter(|&h| self.contains(group, h, false) || self.contains(group, h, true))
            .collect()
    }

    /// Human-readable group label.
    pub fn label(self, group: usize) -> String {
        match self {
            Grouping::HourSlots => format!("{group:02}:00-{:02}:00", (group + 1) % 24),
            Grouping::DayPeriods => DayPeriod::all()[group].label().to_string(),
            Grouping::HourSlotsByDayKind => {
                let hour = group % 24;
                let kind = if group < 24 { "weekday" } else { "weekend" };
                format!("{kind} {hour:02}:00-{:02}:00", (hour + 1) % 24)
            }
        }
    }
}

/// The α estimate for one time group.
#[derive(Debug, Clone)]
pub struct GroupAlpha {
    /// Group index under the grouping.
    pub group: usize,
    /// Display label.
    pub label: String,
    /// The activity factor (1.0 for the primary reference group); `None`
    /// when the group had too little data to compare against any reference.
    pub alpha: Option<f64>,
    /// Per-latency-bin α against the primary reference (Figure 8's series):
    /// `(bin center ms, α)` for bins supported in both groups.
    pub per_bin: Vec<(f64, f64)>,
    /// Action count in the group.
    pub n_actions: u64,
    /// The group's biased (count) histogram.
    pub biased: Histogram,
    /// The group's unbiased (draw-count) histogram.
    pub unbiased: Histogram,
    /// The group's time-proportional share of the total unbiased draw
    /// budget. The pooled U rescales each group's histogram to this mass so
    /// pooling stays exactly time-weighted even though sparse groups
    /// receive a floor of extra draws for α stability.
    pub target_mass: f64,
}

/// The complete α estimate over a log.
#[derive(Debug, Clone)]
pub struct AlphaEstimate {
    /// The grouping used.
    pub grouping: Grouping,
    /// Per-group results, indexed by group id (groups with no records have
    /// `n_actions == 0` and `alpha == None`).
    pub groups: Vec<GroupAlpha>,
    /// The primary reference group (largest action count).
    pub primary_reference: usize,
    /// The reference groups used for averaging.
    pub references: Vec<usize>,
    /// Scheduling reports of the data-parallel jobs that built the
    /// estimate (the slot partition plus one draw job per populated
    /// group), for the pipeline's observability layer.
    pub exec_reports: Vec<ExecReport>,
}

impl AlphaEstimate {
    /// α for a record's group, if usable.
    pub fn alpha_for(&self, record: &ActionRecord) -> Option<f64> {
        let hour = record.hour_slot().0;
        let weekend = record.time.is_weekend_local(record.tz_offset_ms);
        let g = self.grouping.group_of(hour, weekend);
        self.groups[g].alpha
    }

    /// The α-normalized pooled biased histogram: each group's counts scaled
    /// by `1/α_T`. Groups without a usable α are excluded.
    pub fn normalized_biased(&self, binner: &Binner) -> Result<Histogram, AutoSensError> {
        let mut pooled = Histogram::new(binner.clone());
        for g in &self.groups {
            if let Some(alpha) = g.alpha {
                // estimate_alpha never stores such an α, but the fields are
                // public; fail typed rather than scaling by NaN/∞/0.
                if !(alpha.is_finite() && alpha > 0.0) {
                    return Err(AutoSensError::NonFinite {
                        what: format!("alpha for group {}", g.label),
                    });
                }
                let mut h = g.biased.clone();
                h.scale(1.0 / alpha).map_err(AutoSensError::from)?;
                pooled.merge(&h).map_err(AutoSensError::from)?;
            }
        }
        Ok(pooled)
    }

    /// The pooled unbiased histogram over the groups with a usable α.
    ///
    /// Each group's histogram is rescaled to its time-proportional target
    /// mass before merging, so the pooled distribution weights every group
    /// by the wall-clock time it covers — the defining property of `U`.
    pub fn pooled_unbiased(&self, binner: &Binner) -> Result<Histogram, AutoSensError> {
        let mut pooled = Histogram::new(binner.clone());
        for g in &self.groups {
            if g.alpha.is_some() && !g.unbiased.is_empty() && g.target_mass > 0.0 {
                let mut h = g.unbiased.clone();
                h.scale(g.target_mass / h.total())
                    .map_err(AutoSensError::from)?;
                pooled.merge(&h).map_err(AutoSensError::from)?;
            }
        }
        Ok(pooled)
    }
}

/// Per-bin and mean α of one group against one reference, from raw counts.
///
/// `c_*` are per-bin action counts; `u_*` are per-bin unbiased masses (draw
/// counts or fractions — only their relative sizes matter). A bin
/// participates when all four quantities meet their minimum. This is the
/// arithmetic of the paper's Table 1, exposed for direct testing:
///
/// ```
/// use autosens_core::alpha::alpha_vs_reference;
///
/// // The paper's Table 1: night vs day, "low"/"high" latency bins.
/// let (per_bin, mean) = alpha_vs_reference(
///     &[26.0, 4.0],  // night action counts
///     &[0.8, 0.2],   // night time fractions
///     &[90.0, 140.0],// day action counts (reference)
///     &[0.3, 0.7],   // day time fractions
///     0.0, 0.0,
/// );
/// assert!((per_bin[0].unwrap() - 0.108).abs() < 1e-3);
/// assert!((per_bin[1].unwrap() - 0.100).abs() < 1e-9);
/// assert!((mean.unwrap() - 0.104).abs() < 1e-3);
/// ```
pub fn alpha_vs_reference(
    c_g: &[f64],
    u_g: &[f64],
    c_r: &[f64],
    u_r: &[f64],
    min_c: f64,
    min_u: f64,
) -> (Vec<Option<f64>>, Option<f64>) {
    assert!(
        c_g.len() == u_g.len() && c_g.len() == c_r.len() && c_g.len() == u_r.len(),
        "bin count mismatch"
    );
    let ug_total: f64 = u_g.iter().sum();
    let ur_total: f64 = u_r.iter().sum();
    let mut per_bin = vec![None; c_g.len()];
    let mut sum = 0.0;
    let mut n = 0usize;
    if ug_total > 0.0 && ur_total > 0.0 {
        for i in 0..c_g.len() {
            let ok = c_g[i] >= min_c.max(1e-12)
                && c_r[i] >= min_c.max(1e-12)
                && u_g[i] >= min_u
                && u_r[i] >= min_u
                && u_g[i] > 0.0
                && u_r[i] > 0.0;
            if !ok {
                continue;
            }
            let f_g = u_g[i] / ug_total;
            let f_r = u_r[i] / ur_total;
            let rate_g = c_g[i] / f_g;
            let rate_r = c_r[i] / f_r;
            let a = rate_g / rate_r;
            per_bin[i] = Some(a);
            sum += a;
            n += 1;
        }
    }
    let mean = if n > 0 { Some(sum / n as f64) } else { None };
    (per_bin, mean)
}

/// Precision-weighted variant of [`alpha_vs_reference`]: each bin's α is
/// weighted by the inverse of its (delta-method) relative variance,
/// `1 / (1/c_g + 1/c_r + 1/u_g + 1/u_r)`, so sparsely populated bins no
/// longer dominate the average with their noise. An extension beyond the
/// paper (which averages uniformly); enabled by
/// [`crate::config::AutoSensConfig::alpha_precision_weighting`].
pub fn alpha_vs_reference_weighted(
    c_g: &[f64],
    u_g: &[f64],
    c_r: &[f64],
    u_r: &[f64],
    min_c: f64,
    min_u: f64,
) -> (Vec<Option<f64>>, Option<f64>) {
    let (per_bin, _) = alpha_vs_reference(c_g, u_g, c_r, u_r, min_c, min_u);
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, a) in per_bin.iter().enumerate() {
        if let Some(a) = a {
            let w = 1.0 / (1.0 / c_g[i] + 1.0 / c_r[i] + 1.0 / u_g[i] + 1.0 / u_r[i]);
            num += w * a;
            den += w;
        }
    }
    let mean = if den > 0.0 { Some(num / den) } else { None };
    (per_bin, mean)
}

/// The per-cell action partition behind α estimation: one biased (count)
/// histogram and one action counter per **loss cell** (local hour ×
/// day kind × user class — [`autosens_telemetry::loss::N_LOSS_CELLS`]
/// cells).
///
/// Cells are strictly finer than every [`Grouping`] (each group is a union
/// of cells), so one partition serves all groupings *and* the loss-aware
/// correction, which reweights per cell before regrouping. Group
/// histograms come out of [`GroupPartition::group_biased`]: an ordered sum
/// over the group's cells. With unit weights every bin count is a sum of
/// integer-valued `f64`s (exact in any order below 2^53), so the regrouped
/// histograms are bit-identical to accumulating per group directly; with
/// correction weights the fixed cell order makes the weighted sum
/// deterministic for every thread count.
///
/// [`estimate_alpha`] builds this with a chunked map-reduce over the log;
/// an incremental caller (the streaming engine) maintains the same partials
/// per shard and merges them instead. Histogram counts are unit-weight
/// additions, so partial merges are exact in any order and the merged
/// partition is bit-identical to a batch rescan of the same records.
#[derive(Debug, Clone)]
pub struct GroupPartition {
    /// Per-cell biased histograms, indexed by loss-cell id.
    pub cells: Vec<Histogram>,
    /// Per-cell action counts, indexed by loss-cell id.
    pub cell_actions: Vec<u64>,
}

impl GroupPartition {
    /// An all-empty partition for a binner.
    pub fn empty(binner: &Binner) -> GroupPartition {
        GroupPartition {
            cells: (0..N_LOSS_CELLS)
                .map(|_| Histogram::new(binner.clone()))
                .collect(),
            cell_actions: vec![0u64; N_LOSS_CELLS],
        }
    }

    /// Loss-cell index of a record.
    pub fn cell_of(r: &ActionRecord) -> usize {
        let weekend = r.time.is_weekend_local(r.tz_offset_ms);
        loss_cell_index(r.hour_slot().0, weekend, r.class.code())
    }

    /// Fold one record into the partition (the incremental counterpart of
    /// the batch map-reduce's per-chunk loop).
    pub fn record(&mut self, r: &ActionRecord) {
        let c = GroupPartition::cell_of(r);
        self.cells[c].record(r.latency_ms);
        self.cell_actions[c] += 1;
    }

    /// Fold one record in with a loss-correction weight on its histogram
    /// contribution (the action counter stays a raw unit count).
    pub fn record_weighted(&mut self, r: &ActionRecord, weight: f64) {
        let c = GroupPartition::cell_of(r);
        self.cells[c].record_weighted(r.latency_ms, weight);
        self.cell_actions[c] += 1;
    }

    /// Fold another partition of the same shape into this one.
    pub fn merge(&mut self, other: &GroupPartition) -> Result<(), AutoSensError> {
        if other.cells.len() != self.cells.len() {
            return Err(AutoSensError::Internal(format!(
                "cannot merge group partitions of {} and {} cells",
                self.cells.len(),
                other.cells.len()
            )));
        }
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            a.merge(b).map_err(AutoSensError::from)?;
        }
        for (a, b) in self.cell_actions.iter_mut().zip(&other.cell_actions) {
            *a += b;
        }
        Ok(())
    }

    /// Total records partitioned.
    pub fn n_records(&self) -> u64 {
        self.cell_actions.iter().sum()
    }

    /// Whether cell `cell` belongs to group `group` under `grouping`.
    fn cell_in_group(grouping: Grouping, cell: usize, group: usize) -> bool {
        let slot = cell / N_LOSS_CLASSES;
        let hour = (slot / 2) as u8;
        let weekend = slot % 2 == 1;
        grouping.group_of(hour, weekend) == group
    }

    /// Per-group biased histograms under a grouping: each group is the sum
    /// of its cells, in cell order. `weights` (one per cell, finite and
    /// ≥ 1) applies the loss correction; `None` is the exact unit-weight
    /// path (bit-identical to direct per-group accumulation — see the type
    /// docs).
    pub fn group_biased(
        &self,
        grouping: Grouping,
        weights: Option<&[f64]>,
    ) -> Result<Vec<Histogram>, AutoSensError> {
        if let Some(w) = weights {
            if w.len() != self.cells.len() {
                return Err(AutoSensError::Internal(format!(
                    "{} cell weights for {} cells",
                    w.len(),
                    self.cells.len()
                )));
            }
        }
        let binner = self.cells[0].binner();
        let mut out = Vec::with_capacity(grouping.n_groups());
        for g in 0..grouping.n_groups() {
            let mut h = Histogram::new(binner.clone());
            for (cell, ch) in self.cells.iter().enumerate() {
                if !GroupPartition::cell_in_group(grouping, cell, g) {
                    continue;
                }
                match weights.map(|w| w[cell]) {
                    Some(w) if w != 1.0 => {
                        let mut scaled = ch.clone();
                        scaled.scale(w).map_err(AutoSensError::from)?;
                        h.merge(&scaled).map_err(AutoSensError::from)?;
                    }
                    _ => h.merge(ch).map_err(AutoSensError::from)?,
                }
            }
            out.push(h);
        }
        Ok(out)
    }

    /// The pooled biased histogram over *all* cells, in cell order
    /// (optionally loss-weighted). This is the no-α-correction counterpart
    /// of [`GroupPartition::group_biased`]; with unit weights it is
    /// bit-identical to recording every row directly.
    pub fn pooled_biased(&self, weights: Option<&[f64]>) -> Result<Histogram, AutoSensError> {
        if let Some(w) = weights {
            if w.len() != self.cells.len() {
                return Err(AutoSensError::Internal(format!(
                    "{} cell weights for {} cells",
                    w.len(),
                    self.cells.len()
                )));
            }
        }
        let mut h = Histogram::new(self.cells[0].binner().clone());
        for (cell, ch) in self.cells.iter().enumerate() {
            match weights.map(|w| w[cell]) {
                Some(w) if w != 1.0 => {
                    let mut scaled = ch.clone();
                    scaled.scale(w).map_err(AutoSensError::from)?;
                    h.merge(&scaled).map_err(AutoSensError::from)?;
                }
                _ => h.merge(ch).map_err(AutoSensError::from)?,
            }
        }
        Ok(h)
    }

    /// Per-group action counts under a grouping (always the raw, unweighted
    /// counts — reference selection and draw skipping key off these).
    pub fn group_actions(&self, grouping: Grouping) -> Vec<u64> {
        let mut out = vec![0u64; grouping.n_groups()];
        for (g, total) in out.iter_mut().enumerate() {
            for (cell, &n) in self.cell_actions.iter().enumerate() {
                if GroupPartition::cell_in_group(grouping, cell, g) {
                    *total += n;
                }
            }
        }
        out
    }
}

/// Partition a view's actions by loss cell as a chunked map-reduce (each
/// chunk builds its own per-cell histograms and counters, merged in chunk
/// order). This is the batch producer of [`GroupPartition`]; rows are read
/// straight off the view's columns, no records are copied.
pub fn partition_by_group(
    log: &LogView<'_>,
    binner: &Binner,
    threads: usize,
) -> Result<(GroupPartition, ExecReport), AutoSensError> {
    let (partial, report) = autosens_exec::map_reduce(
        "alpha_partition",
        log.len(),
        autosens_exec::scan_chunk_size_for(log.len()),
        threads,
        |_, range| {
            let mut part = GroupPartition::empty(binner);
            for i in range {
                part.record(&log.get(i));
            }
            (part.cells, part.cell_actions)
        },
    )?;
    let (cells, cell_actions) = partial.unwrap_or_else(|| {
        let empty = GroupPartition::empty(binner);
        (empty.cells, empty.cell_actions)
    });
    Ok((
        GroupPartition {
            cells,
            cell_actions,
        },
        report,
    ))
}

/// [`partition_by_group`] with per-record loss-correction weights: each
/// record's histogram contribution is scaled by [`LossModel::weight_for`]
/// on its (local day, hour, day kind, class). Chunk boundaries and the
/// chunk-order merge are identical to the unit-weight build, so the
/// weighted partition is bit-identical for every thread count.
pub fn partition_by_group_weighted(
    log: &LogView<'_>,
    binner: &Binner,
    model: &LossModel,
    threads: usize,
) -> Result<(GroupPartition, ExecReport), AutoSensError> {
    let (partial, report) = autosens_exec::map_reduce(
        "alpha_partition_weighted",
        log.len(),
        autosens_exec::scan_chunk_size_for(log.len()),
        threads,
        |_, range| {
            let mut part = GroupPartition::empty(binner);
            for i in range {
                let r = log.get(i);
                let day = r.time.day_local(r.tz_offset_ms);
                let weekend = r.time.is_weekend_local(r.tz_offset_ms);
                let w = model.weight_for(day, r.hour_slot().0, weekend, r.class.code());
                part.record_weighted(&r, w);
            }
            (part.cells, part.cell_actions)
        },
    )?;
    let (cells, cell_actions) = partial.unwrap_or_else(|| {
        let empty = GroupPartition::empty(binner);
        (empty.cells, empty.cell_actions)
    });
    Ok((
        GroupPartition {
            cells,
            cell_actions,
        },
        report,
    ))
}

/// Estimate α over a log.
///
/// The log must be sorted and non-empty. `n_days` bounds the day windows
/// used for the group-conditional unbiased draws; it is derived from the
/// log's span.
pub fn estimate_alpha<R: Rng>(
    log: &LogView<'_>,
    binner: &Binner,
    grouping: Grouping,
    cfg: &AutoSensConfig,
    rng: &mut R,
) -> Result<AlphaEstimate, AutoSensError> {
    estimate_alpha_with_partition(log, binner, grouping, cfg, rng, None)
}

/// [`estimate_alpha`] with an optional precomputed [`GroupPartition`].
///
/// When `partition` is `Some`, the per-group rescan of the log is skipped
/// and the supplied partials are used directly — this is how the streaming
/// engine turns its incrementally maintained shard state into an α
/// estimate without re-walking history. The partition must cover exactly
/// the records of `log` under the same `binner` and `grouping`; the RNG-
/// bearing stages (group-conditional unbiased draws) always run over the
/// full log, so the caller's RNG consumption is identical either way.
pub fn estimate_alpha_with_partition<R: Rng>(
    log: &LogView<'_>,
    binner: &Binner,
    grouping: Grouping,
    cfg: &AutoSensConfig,
    rng: &mut R,
    partition: Option<GroupPartition>,
) -> Result<AlphaEstimate, AutoSensError> {
    let (part, mut inputs) = build_alpha_inputs(log, binner, grouping, cfg, rng, partition)?;
    let biased = part.group_biased(grouping, None)?;
    let exec_reports = std::mem::take(&mut inputs.exec_reports);
    Ok(solve_alpha(
        grouping,
        &inputs,
        binner,
        cfg,
        biased,
        exec_reports,
    ))
}

/// [`estimate_alpha`] solved twice from one set of inputs: once with the
/// raw per-group counts (the naive estimate — bit-identical to
/// [`estimate_alpha_with_partition`] on the same log and RNG state) and
/// once with the loss `model`'s per-record weights (cell × day factor,
/// [`LossModel::weight_for`]) baked into the biased histograms of *both*
/// the group and the reference via a weighted rescan of the log
/// ([`partition_by_group_weighted`]). The RNG-bearing stage
/// (group-conditional unbiased draws) runs exactly once, so the caller's
/// RNG consumption matches the plain estimator's.
///
/// Reference selection, draw skipping, and the reported `n_actions` use
/// the raw counts in both solves; only the biased masses differ.
#[allow(clippy::too_many_arguments)]
pub fn estimate_alpha_corrected<R: Rng>(
    log: &LogView<'_>,
    binner: &Binner,
    grouping: Grouping,
    cfg: &AutoSensConfig,
    rng: &mut R,
    partition: Option<GroupPartition>,
    model: &LossModel,
) -> Result<(AlphaEstimate, AlphaEstimate), AutoSensError> {
    let (part, mut inputs) = build_alpha_inputs(log, binner, grouping, cfg, rng, partition)?;
    let naive_biased = part.group_biased(grouping, None)?;
    let (weighted, weighted_report) = partition_by_group_weighted(log, binner, model, cfg.threads)?;
    inputs.exec_reports.push(weighted_report);
    let corrected_biased = weighted.group_biased(grouping, None)?;
    let exec_reports = std::mem::take(&mut inputs.exec_reports);
    let naive = solve_alpha(grouping, &inputs, binner, cfg, naive_biased, exec_reports);
    let corrected = solve_alpha(grouping, &inputs, binner, cfg, corrected_biased, Vec::new());
    Ok((naive, corrected))
}

/// Everything α estimation derives from the log besides the per-group
/// biased histograms: raw group counts, group-conditional unbiased
/// histograms (the only RNG consumer), time-share target masses, and the
/// reference choice. Built once, then solved against one or more biased
/// regroupings.
struct AlphaInputs {
    n_actions: Vec<u64>,
    unbiased: Vec<Histogram>,
    target_mass: Vec<f64>,
    references: Vec<usize>,
    primary: usize,
    exec_reports: Vec<ExecReport>,
}

fn build_alpha_inputs<R: Rng>(
    log: &LogView<'_>,
    binner: &Binner,
    grouping: Grouping,
    cfg: &AutoSensConfig,
    rng: &mut R,
    partition: Option<GroupPartition>,
) -> Result<(GroupPartition, AlphaInputs), AutoSensError> {
    if log.is_empty() {
        return Err(AutoSensError::EmptySlice("alpha estimation".into()));
    }
    let n_groups = grouping.n_groups();
    let mut exec_reports: Vec<ExecReport> = Vec::new();

    // Partition counts by loss cell (records' own local hour, day kind and
    // class), either precomputed by an incremental caller or rebuilt here
    // as a chunked map-reduce.
    let part = match partition {
        Some(part) => {
            if part.cells.len() != N_LOSS_CELLS || part.cell_actions.len() != N_LOSS_CELLS {
                return Err(AutoSensError::Internal(format!(
                    "group partition has {} cells, expected {N_LOSS_CELLS}",
                    part.cells.len()
                )));
            }
            if part.cells.iter().any(|h| h.binner() != binner) {
                return Err(AutoSensError::Internal(
                    "group partition binner does not match the analysis binner".into(),
                ));
            }
            let partitioned = part.n_records();
            if partitioned != log.len() as u64 {
                return Err(AutoSensError::Internal(format!(
                    "group partition covers {partitioned} actions, log has {}",
                    log.len()
                )));
            }
            part
        }
        None => {
            let (part, report) = partition_by_group(log, binner, cfg.threads)?;
            exec_reports.push(report);
            part
        }
    };
    let n_actions = part.group_actions(grouping);

    // Group-conditional unbiased histograms: draws restricted to each
    // group's hour windows across every day the log spans. Draws are
    // allocated in proportion to each group's total window time, so the
    // pooled U (a plain merge) stays time-weighted even for groupings
    // whose groups cover unequal time (weekday vs weekend slots).
    // Invariant: the is_empty() guard above makes these Some.
    let start = log.start_time().expect("non-empty").millis();
    let end = log.end_time().expect("non-empty").millis();
    // The timezone defining the slot windows: when the slice is
    // tz-homogeneous (the paper's per-region setting, and what the
    // pipeline should always feed in), the records' own offset is
    // authoritative; otherwise fall back to the configured offset.
    let tz = {
        let first = log.tz_offset_at(0);
        if (1..log.len()).all(|i| log.tz_offset_at(i) == first) {
            first
        } else {
            cfg.slot_tz_offset_ms
        }
    };
    // Local time = server time + tz, so local (day, hour) covers server
    // times [day*DAY + hour*HOUR - tz, ... + 1h).
    let first_day = (start + tz).div_euclid(MS_PER_DAY);
    let last_day = (end + tz).div_euclid(MS_PER_DAY);

    let mut group_windows: Vec<Vec<(i64, i64)>> = vec![Vec::new(); n_groups];
    for day in first_day..=last_day {
        // The day kind is evaluated in the slot timezone, consistently with
        // the simulated calendar (epoch Jan 1 = Friday).
        let weekend = ((day + 4).rem_euclid(7)) >= 5;
        for hour in 0..24u8 {
            let g = grouping.group_of(hour, weekend);
            let lo = day * MS_PER_DAY + hour as i64 * MS_PER_HOUR - tz;
            let hi = lo + MS_PER_HOUR - 1;
            // Clip to the log span so nearest-sample lookups stay local.
            let lo = lo.max(start);
            let hi = hi.min(end);
            if lo <= hi {
                group_windows[g].push((lo, hi));
            }
        }
    }
    let group_time: Vec<i64> = group_windows
        .iter()
        .map(|ws| ws.iter().map(|&(lo, hi)| hi - lo + 1).sum())
        .collect();
    let total_time: i64 = group_time.iter().sum::<i64>().max(1);

    let mut unbiased: Vec<Histogram> = Vec::with_capacity(n_groups);
    let mut target_mass = vec![0.0f64; n_groups];
    for g in 0..n_groups {
        let ideal = cfg.unbiased_draws as f64 * group_time[g] as f64 / total_time as f64;
        target_mass[g] = ideal;
        // Sparse groups get a floor of extra draws so their α is not pure
        // noise; the pooled U rescales back to `ideal` (see
        // [`AlphaEstimate::pooled_unbiased`]).
        let draws = (ideal.round() as usize).max(1_000);
        let h = if group_windows[g].is_empty() || n_actions[g] == 0 {
            Histogram::new(binner.clone())
        } else {
            let (h, report) = unbiased_histogram_in_windows_par(
                log,
                binner,
                &group_windows[g],
                draws,
                cfg.threads,
                rng,
            )?;
            exec_reports.push(report);
            h
        };
        unbiased.push(h);
    }

    // Reference groups: the highest-volume ones.
    let mut order: Vec<usize> = (0..n_groups).collect();
    order.sort_by_key(|&g| std::cmp::Reverse(n_actions[g]));
    let references: Vec<usize> = order
        .iter()
        .copied()
        .take(cfg.alpha_references)
        .filter(|&g| n_actions[g] > 0)
        .collect();
    if references.is_empty() {
        return Err(AutoSensError::EmptySlice(
            "alpha estimation found no populated reference group".into(),
        ));
    }
    let primary = references[0];

    Ok((
        part,
        AlphaInputs {
            n_actions,
            unbiased,
            target_mass,
            references,
            primary,
            exec_reports,
        },
    ))
}

/// Solve the α system for one set of per-group biased histograms.
fn solve_alpha(
    grouping: Grouping,
    inputs: &AlphaInputs,
    binner: &Binner,
    cfg: &AutoSensConfig,
    biased: Vec<Histogram>,
    exec_reports: Vec<ExecReport>,
) -> AlphaEstimate {
    let n_groups = grouping.n_groups();
    let AlphaInputs {
        n_actions,
        unbiased,
        target_mass,
        references,
        primary,
        ..
    } = inputs;
    let primary = *primary;

    // α of every group against every reference, rescaled so the primary
    // group is 1 under each reference, then averaged across references.
    let mut alpha_sum = vec![0.0f64; n_groups];
    let mut alpha_n = vec![0usize; n_groups];
    let mut per_bin_primary: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_groups];

    // Paper behavior: uniform average over bins; extension: precision
    // weighting (see `alpha_vs_reference_weighted`).
    let estimate = |g: usize, r: usize| {
        let f = if cfg.alpha_precision_weighting {
            alpha_vs_reference_weighted
        } else {
            alpha_vs_reference
        };
        f(
            biased[g].counts(),
            unbiased[g].counts(),
            biased[r].counts(),
            unbiased[r].counts(),
            cfg.min_biased_count,
            cfg.min_unbiased_count,
        )
    };
    for &r in references {
        // α of the primary group under this reference (for rescaling).
        let (_, primary_alpha) = estimate(primary, r);
        let Some(primary_alpha) = primary_alpha else {
            continue;
        };
        for g in 0..n_groups {
            if n_actions[g] == 0 {
                continue;
            }
            let (per_bin, mean) = estimate(g, r);
            if let Some(mean) = mean {
                alpha_sum[g] += mean / primary_alpha;
                alpha_n[g] += 1;
            }
            // The Figure 8 per-bin series uses the primary reference only.
            if r == primary {
                per_bin_primary[g] = per_bin
                    .iter()
                    .enumerate()
                    .filter_map(|(i, a)| a.map(|a| (binner.center(i), a)))
                    .collect();
            }
        }
    }

    let groups = (0..n_groups)
        .map(|g| GroupAlpha {
            group: g,
            label: grouping.label(g),
            alpha: if alpha_n[g] > 0 {
                let a = alpha_sum[g] / alpha_n[g] as f64;
                // A non-finite or non-positive α would poison the 1/α count
                // scaling downstream; treat the group as having no usable α
                // (it is then excluded from pooling, with a degradation
                // warning at the pipeline level).
                (a.is_finite() && a > 0.0).then_some(a)
            } else {
                None
            },
            per_bin: std::mem::take(&mut per_bin_primary[g]),
            n_actions: n_actions[g],
            biased: biased[g].clone(),
            unbiased: unbiased[g].clone(),
            target_mass: target_mass[g],
        })
        .collect();

    AlphaEstimate {
        grouping,
        groups,
        primary_reference: primary,
        references: references.clone(),
        exec_reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_maps_hours() {
        assert_eq!(Grouping::HourSlots.n_groups(), 24);
        assert_eq!(Grouping::HourSlots.group_of_hour(17), 17);
        assert_eq!(Grouping::HourSlots.hours_of_group(3), vec![3]);
        assert_eq!(Grouping::DayPeriods.n_groups(), 4);
        assert_eq!(Grouping::DayPeriods.group_of_hour(9), 0);
        assert_eq!(Grouping::DayPeriods.group_of_hour(15), 1);
        assert_eq!(Grouping::DayPeriods.group_of_hour(23), 2);
        assert_eq!(Grouping::DayPeriods.group_of_hour(0), 2);
        assert_eq!(Grouping::DayPeriods.group_of_hour(5), 3);
        let evening = Grouping::DayPeriods.hours_of_group(2);
        assert_eq!(evening, vec![0, 1, 20, 21, 22, 23]);
        assert!(Grouping::HourSlots.label(7).contains("07:00"));
        assert_eq!(Grouping::DayPeriods.label(0), "8am-2pm");
    }

    #[test]
    fn day_kind_grouping_separates_weekends() {
        let g = Grouping::HourSlotsByDayKind;
        assert_eq!(g.n_groups(), 48);
        assert_eq!(g.group_of(9, false), 9);
        assert_eq!(g.group_of(9, true), 33);
        assert!(g.contains(9, 9, false));
        assert!(!g.contains(9, 9, true));
        assert!(g.contains(33, 9, true));
        assert_eq!(g.hours_of_group(33), vec![9]);
        assert!(g.label(9).contains("weekday 09:00"));
        assert!(g.label(33).contains("weekend 09:00"));
        // Every (hour, kind) cell maps to exactly one group.
        let mut seen = std::collections::HashSet::new();
        for h in 0..24u8 {
            for wk in [false, true] {
                assert!(seen.insert(g.group_of(h, wk)));
            }
        }
        assert_eq!(seen.len(), 48);
    }

    /// The paper's Table 1, reproduced digit for digit.
    #[test]
    fn table1_worked_example() {
        // Day (reference): 90 low-latency actions over 30% of the time,
        // 140 high-latency actions over 70% of the time.
        let c_day = [90.0, 140.0];
        let f_day = [0.3, 0.7];
        // Night: 26 low over 80%, 4 high over 20%.
        let c_night = [26.0, 4.0];
        let f_night = [0.8, 0.2];

        let (per_bin, mean) = alpha_vs_reference(&c_night, &f_night, &c_day, &f_day, 0.0, 0.0);
        let a_low = per_bin[0].unwrap();
        let a_high = per_bin[1].unwrap();
        // alpha_night,low = (26/0.8)/(90/0.3) = 0.108333...
        assert!((a_low - 0.108_333_333).abs() < 1e-6, "low = {a_low}");
        // alpha_night,high = (4/0.2)/(140/0.7) = 0.1
        assert!((a_high - 0.1).abs() < 1e-9, "high = {a_high}");
        // alpha_night = (0.1083 + 0.100)/2 = 0.104166...
        let alpha = mean.unwrap();
        assert!((alpha - 0.104_166_666).abs() < 1e-6, "alpha = {alpha}");

        // Normalized night counts: 26/alpha ~ 250, 4/alpha ~ 38 (the paper
        // prints the rounded integers).
        let norm_low = (c_night[0] / alpha).round();
        let norm_high = (c_night[1] / alpha).round();
        assert_eq!(norm_low, 250.0);
        assert_eq!(norm_high, 38.0);

        // Combined activity: low = (90 + 250)/(30 + 80), high = (140+38)/(70+20)
        // in the paper's per-%-time units -> 3.09 vs 1.97: low > high.
        let low_rate = (c_day[0] + norm_low) / (30.0 + 80.0);
        let high_rate = (c_day[1] + norm_high) / (70.0 + 20.0);
        assert!((low_rate - 3.09).abs() < 0.01, "low rate = {low_rate}");
        assert!((high_rate - 1.97).abs() < 0.01, "high rate = {high_rate}");
        assert!(low_rate > high_rate);

        // Without the correction the conclusion inverts (the paper's point):
        let naive_low = (c_day[0] + c_night[0]) / (30.0 + 80.0);
        let naive_high = (c_day[1] + c_night[1]) / (70.0 + 20.0);
        assert!((naive_low - 1.05).abs() < 0.01);
        assert!((naive_high - 1.6).abs() < 0.01);
        assert!(naive_low < naive_high);
    }

    #[test]
    fn alpha_min_counts_exclude_sparse_bins() {
        let c_g = [5.0, 100.0];
        let u_g = [0.5, 0.5];
        let c_r = [50.0, 100.0];
        let u_r = [0.5, 0.5];
        let (per_bin, mean) = alpha_vs_reference(&c_g, &u_g, &c_r, &u_r, 10.0, 0.0);
        assert!(per_bin[0].is_none());
        assert_eq!(per_bin[1], Some(1.0));
        assert_eq!(mean, Some(1.0));
    }

    #[test]
    fn alpha_undefined_when_nothing_supported() {
        let (per_bin, mean) =
            alpha_vs_reference(&[0.0, 0.0], &[0.5, 0.5], &[1.0, 1.0], &[0.5, 0.5], 1.0, 0.0);
        assert!(per_bin.iter().all(|b| b.is_none()));
        assert_eq!(mean, None);
        // Zero unbiased mass in a group -> undefined everywhere.
        let (_, mean) = alpha_vs_reference(
            &[10.0, 10.0],
            &[0.0, 0.0],
            &[10.0, 10.0],
            &[0.5, 0.5],
            1.0,
            0.0,
        );
        assert_eq!(mean, None);
    }

    #[test]
    fn precision_weighting_discounts_sparse_bins() {
        // Bin 0 is sparse (tiny counts, alpha badly off); bin 1 is dense
        // (huge counts, alpha correct at 0.5). The uniform mean is pulled
        // toward the sparse bin's value; the weighted mean is not.
        let c_g = [6.0, 5_000.0];
        let u_g = [100.0, 10_000.0];
        let c_r = [2.0, 10_000.0];
        let u_r = [100.0, 10_000.0];
        let (_, uniform) = alpha_vs_reference(&c_g, &u_g, &c_r, &u_r, 1.0, 1.0);
        let (_, weighted) = alpha_vs_reference_weighted(&c_g, &u_g, &c_r, &u_r, 1.0, 1.0);
        // True dense-bin alpha is 0.5; sparse bin says 3.0.
        let uniform = uniform.unwrap();
        let weighted = weighted.unwrap();
        assert!((uniform - 1.75).abs() < 1e-9, "uniform = {uniform}");
        assert!((weighted - 0.5).abs() < 0.01, "weighted = {weighted}");
    }

    #[test]
    fn precision_weighting_matches_uniform_on_balanced_bins() {
        let c = [500.0, 500.0, 500.0];
        let u = [300.0, 300.0, 300.0];
        let (_, a) = alpha_vs_reference(&c, &u, &c, &u, 1.0, 1.0);
        let (_, b) = alpha_vs_reference_weighted(&c, &u, &c, &u, 1.0, 1.0);
        assert!((a.unwrap() - b.unwrap()).abs() < 1e-12);
    }

    #[test]
    fn identical_groups_have_alpha_one() {
        let c = [40.0, 60.0, 80.0];
        let u = [10.0, 20.0, 30.0];
        let (per_bin, mean) = alpha_vs_reference(&c, &u, &c, &u, 1.0, 1.0);
        for b in per_bin {
            assert!((b.unwrap() - 1.0).abs() < 1e-12);
        }
        assert!((mean.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn mismatched_lengths_panic() {
        alpha_vs_reference(&[1.0], &[1.0, 2.0], &[1.0], &[1.0], 0.0, 0.0);
    }
}
