//! Deterministic fault injection over [`autosens_telemetry::TelemetryLog`].

pub mod plan;

pub use plan::{FaultOp, FaultPlan};
