//! Deterministic fault injection over [`autosens_telemetry::TelemetryLog`].

pub mod plan;
pub mod stream;

pub use plan::{FaultOp, FaultPlan};
pub use stream::FaultStream;
