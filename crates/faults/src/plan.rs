//! Composable, seed-deterministic corruption operators over telemetry logs.
//!
//! Each [`FaultOp`] models one failure mode real telemetry pipelines
//! exhibit: record loss (uniform MCAR and bursty latency-correlated MNAR,
//! the failure mode sensor-network studies such as Gupchup et al. document
//! for congested collection paths), duplication from at-least-once
//! delivery, reordering from shard merges, per-device clock skew and
//! drift, latency quantization ("heaping") from coarse client timers, and
//! metadata nulling from enrichment-join failures.
//!
//! A [`FaultPlan`] is a seed plus an ordered list of operators. Applying
//! the same plan to the same log always produces the *byte-identical*
//! corrupted log: every operator draws from its own RNG stream derived
//! from the plan seed and the operator's position, so editing one operator
//! never perturbs the randomness of the others.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use autosens_telemetry::log::TelemetryLog;
use autosens_telemetry::record::{ActionRecord, UserClass};
use autosens_telemetry::time::SimTime;
use autosens_telemetry::TelemetryError;

/// One corruption operator. All probabilities are in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultOp {
    /// Drop each record independently with probability `rate` (MCAR loss).
    DropUniform {
        /// Per-record drop probability.
        rate: f64,
    },
    /// Bursty, latency-correlated loss (MNAR): drop whole runs of
    /// consecutive records, with burst onset more likely when latency is
    /// high — the collection path itself degrades when the service is
    /// slow, so slow-period records are preferentially lost. The expected
    /// overall loss fraction is approximately `rate`.
    DropBursty {
        /// Target expected fraction of records lost.
        rate: f64,
        /// Mean burst length in records (>= 1).
        mean_burst: u32,
    },
    /// Emit each record a second time with probability `rate`
    /// (at-least-once delivery).
    Duplicate {
        /// Per-record duplication probability.
        rate: f64,
    },
    /// Jitter the timestamps of a `rate` fraction of records uniformly in
    /// `[-max_shift_ms, +max_shift_ms]`, producing local reordering such
    /// as a merge of unaligned shards would.
    Reorder {
        /// Fraction of records jittered.
        rate: f64,
        /// Maximum absolute timestamp shift in ms.
        max_shift_ms: i64,
    },
    /// Per-user clock error: each user's records are shifted by a fixed
    /// offset drawn uniformly in `[-max_offset_ms, +max_offset_ms]` plus a
    /// per-user linear drift of up to `±drift_ms_per_day` per elapsed day.
    ClockSkew {
        /// Maximum absolute fixed offset per user, ms.
        max_offset_ms: i64,
        /// Maximum absolute drift per user, ms per day.
        drift_ms_per_day: i64,
    },
    /// Round every latency to the nearest multiple of `grain_ms`
    /// (timer-resolution heaping).
    QuantizeLatency {
        /// Quantization grain in ms (> 0).
        grain_ms: f64,
    },
    /// With probability `rate`, null a record's metadata: the user class
    /// collapses to the default (`Consumer`) and the timezone offset to 0,
    /// as when an enrichment join fails.
    NullMetadata {
        /// Per-record nulling probability.
        rate: f64,
    },
}

impl FaultOp {
    /// Validate the operator's parameter domains.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, p: f64| {
            if (0.0..=1.0).contains(&p) && p.is_finite() {
                Ok(())
            } else {
                Err(format!("{name} must be a probability in [0,1], got {p}"))
            }
        };
        match *self {
            FaultOp::DropUniform { rate } => prob("DropUniform.rate", rate),
            FaultOp::DropBursty { rate, mean_burst } => {
                prob("DropBursty.rate", rate)?;
                if mean_burst == 0 {
                    return Err("DropBursty.mean_burst must be >= 1".into());
                }
                Ok(())
            }
            FaultOp::Duplicate { rate } => prob("Duplicate.rate", rate),
            FaultOp::Reorder { rate, max_shift_ms } => {
                prob("Reorder.rate", rate)?;
                if max_shift_ms < 0 {
                    return Err("Reorder.max_shift_ms must be >= 0".into());
                }
                Ok(())
            }
            FaultOp::ClockSkew {
                max_offset_ms,
                drift_ms_per_day,
            } => {
                if max_offset_ms < 0 || drift_ms_per_day < 0 {
                    return Err("ClockSkew parameters must be >= 0".into());
                }
                Ok(())
            }
            FaultOp::QuantizeLatency { grain_ms } => {
                if grain_ms > 0.0 && grain_ms.is_finite() {
                    Ok(())
                } else {
                    Err(format!(
                        "QuantizeLatency.grain_ms must be > 0, got {grain_ms}"
                    ))
                }
            }
            FaultOp::NullMetadata { rate } => prob("NullMetadata.rate", rate),
        }
    }

    /// Apply the operator to a record vector, drawing from `rng`.
    fn apply(&self, records: Vec<ActionRecord>, rng: &mut StdRng) -> Vec<ActionRecord> {
        match *self {
            FaultOp::DropUniform { rate } => records
                .into_iter()
                .filter(|_| !rng.gen_bool(rate))
                .collect(),
            FaultOp::DropBursty { rate, mean_burst } => {
                drop_bursty(records, rate, mean_burst.max(1) as f64, rng)
            }
            FaultOp::Duplicate { rate } => {
                let mut out = Vec::with_capacity(records.len());
                for r in records {
                    out.push(r);
                    if rng.gen_bool(rate) {
                        out.push(r);
                    }
                }
                out
            }
            FaultOp::Reorder { rate, max_shift_ms } => {
                let mut out = records;
                for r in &mut out {
                    if rng.gen_bool(rate) {
                        let shift = if max_shift_ms == 0 {
                            0
                        } else {
                            rng.gen_range(-max_shift_ms..=max_shift_ms)
                        };
                        r.time = SimTime(r.time.millis() + shift);
                    }
                }
                out
            }
            FaultOp::ClockSkew {
                max_offset_ms,
                drift_ms_per_day,
            } => clock_skew(records, max_offset_ms, drift_ms_per_day, rng),
            FaultOp::QuantizeLatency { grain_ms } => {
                let mut out = records;
                for r in &mut out {
                    r.latency_ms = (r.latency_ms / grain_ms).round() * grain_ms;
                    // Rounding cannot go negative for grain > 0, but keep the
                    // log invariant airtight against float edge cases.
                    r.latency_ms = r.latency_ms.max(0.0);
                }
                out
            }
            FaultOp::NullMetadata { rate } => {
                let mut out = records;
                for r in &mut out {
                    if rng.gen_bool(rate) {
                        r.class = UserClass::Consumer;
                        r.tz_offset_ms = 0;
                    }
                }
                out
            }
        }
    }

    /// Short human-readable description.
    pub fn describe(&self) -> String {
        match *self {
            FaultOp::DropUniform { rate } => format!("drop {:.1}% uniformly", rate * 100.0),
            FaultOp::DropBursty { rate, mean_burst } => format!(
                "drop ~{:.1}% in latency-correlated bursts (mean length {mean_burst})",
                rate * 100.0
            ),
            FaultOp::Duplicate { rate } => format!("duplicate {:.1}%", rate * 100.0),
            FaultOp::Reorder { rate, max_shift_ms } => {
                format!("jitter {:.1}% by up to {max_shift_ms} ms", rate * 100.0)
            }
            FaultOp::ClockSkew {
                max_offset_ms,
                drift_ms_per_day,
            } => format!(
                "per-user clock skew up to {max_offset_ms} ms, drift up to {drift_ms_per_day} ms/day"
            ),
            FaultOp::QuantizeLatency { grain_ms } => {
                format!("quantize latency to {grain_ms} ms grain")
            }
            FaultOp::NullMetadata { rate } => format!("null metadata on {:.1}%", rate * 100.0),
        }
    }
}

/// Bursty MNAR loss: walk the records in order; outside a burst, enter one
/// with a probability proportional to the record's latency (relative to the
/// mean), scaled so the expected overall loss is ~`rate`; inside a burst,
/// drop the record and exit with probability `1/mean_burst`.
fn drop_bursty(
    records: Vec<ActionRecord>,
    rate: f64,
    mean_burst: f64,
    rng: &mut StdRng,
) -> Vec<ActionRecord> {
    if records.is_empty() || rate <= 0.0 {
        return records;
    }
    if rate >= 1.0 {
        return Vec::new();
    }
    let mean_latency = records.iter().map(|r| r.latency_ms).sum::<f64>() / records.len() as f64;
    let base = rate / mean_burst;
    let mut in_burst = false;
    let mut out = Vec::with_capacity(records.len());
    for r in records {
        if in_burst {
            // Exit check happens after the drop so bursts average
            // `mean_burst` records.
            if rng.gen_bool(1.0 / mean_burst) {
                in_burst = false;
            }
            continue;
        }
        // Latency weight with mean ~1 over the log makes the expected loss
        // track `rate` while concentrating it on slow periods.
        let weight = if mean_latency > 0.0 {
            r.latency_ms / mean_latency
        } else {
            1.0
        };
        let p = (base * weight).clamp(0.0, 1.0);
        if rng.gen_bool(p) {
            in_burst = true;
            continue;
        }
        out.push(r);
    }
    out
}

/// Per-user clock error. The offset and drift are derived from a hash of
/// (stream seed, user id), not from consumption order, so the result is
/// independent of record order and reproducible.
fn clock_skew(
    records: Vec<ActionRecord>,
    max_offset_ms: i64,
    drift_ms_per_day: i64,
    rng: &mut StdRng,
) -> Vec<ActionRecord> {
    const MS_PER_DAY: f64 = 86_400_000.0;
    let stream: u64 = rng.gen();
    let t0 = records
        .iter()
        .map(|r| r.time.millis())
        .min()
        .unwrap_or_default();
    let mut out = records;
    for r in &mut out {
        let h = splitmix64(stream ^ r.user.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Two independent uniforms in [-1, 1) from the hash halves.
        let u_off = ((h >> 32) as f64 / f64::powi(2.0, 31)) - 1.0;
        let u_drift = ((h & 0xFFFF_FFFF) as f64 / f64::powi(2.0, 31)) - 1.0;
        let offset = (u_off * max_offset_ms as f64).round() as i64;
        let elapsed_days = (r.time.millis() - t0) as f64 / MS_PER_DAY;
        let drift = (u_drift * drift_ms_per_day as f64 * elapsed_days).round() as i64;
        r.time = SimTime(r.time.millis() + offset + drift);
    }
    out
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A reproducible corruption recipe: a seed plus an ordered operator list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed; each operator derives its own stream from it.
    pub seed: u64,
    /// Operators, applied in order.
    pub ops: Vec<FaultOp>,
}

impl FaultPlan {
    /// A plan with no operators (identity).
    pub fn identity(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ops: Vec::new(),
        }
    }

    /// Validate every operator.
    pub fn validate(&self) -> Result<(), String> {
        for (i, op) in self.ops.iter().enumerate() {
            op.validate().map_err(|e| format!("op {i}: {e}"))?;
        }
        Ok(())
    }

    /// Apply the plan to a log, returning the corrupted log.
    ///
    /// The output preserves the corrupted record order (it may be
    /// unsorted — that is the point of the reordering and skew operators);
    /// callers that need time order must `ensure_sorted` themselves, as
    /// the analysis pipeline's sanitization stage does. Fails only if the
    /// plan is invalid; the operators never produce records that violate
    /// the log's semantic invariants.
    pub fn apply(&self, log: &TelemetryLog) -> Result<TelemetryLog, TelemetryError> {
        self.validate().map_err(TelemetryError::InvalidRecord)?;
        let mut records: Vec<ActionRecord> = log.to_records();
        for (i, op) in self.ops.iter().enumerate() {
            // One independent stream per operator position: editing op k
            // cannot perturb the randomness of ops != k.
            let mut rng = StdRng::seed_from_u64(splitmix64(self.seed ^ (i as u64 + 1)));
            records = op.apply(records, &mut rng);
        }
        let mut out = TelemetryLog::new();
        for r in records {
            // Operators preserve record validity (finite latency >= 0,
            // sane tz offsets), so push cannot fail.
            out.push(r)?;
        }
        Ok(out)
    }

    /// Serialize to pretty JSON (the `autosens inject --plan` file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plan serialization is infallible")
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let plan: FaultPlan = serde_json::from_str(text).map_err(|e| e.to_string())?;
        plan.validate()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_telemetry::record::{ActionType, Outcome, UserId};

    fn rec(t: i64, latency: f64, user: u64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t),
            action: ActionType::SelectMail,
            latency_ms: latency,
            user: UserId(user),
            class: UserClass::Business,
            tz_offset_ms: 3_600_000,
            outcome: Outcome::Success,
        }
    }

    /// A log with a slow stretch in the middle (records 400..600).
    fn sample_log() -> TelemetryLog {
        let records: Vec<ActionRecord> = (0..1000)
            .map(|i| {
                let latency = if (400..600).contains(&i) {
                    900.0
                } else {
                    100.0
                };
                rec(i * 1000, latency, i as u64 % 50)
            })
            .collect();
        TelemetryLog::from_records(records).unwrap()
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let log = sample_log();
        let plan = FaultPlan {
            seed: 42,
            ops: vec![
                FaultOp::DropBursty {
                    rate: 0.3,
                    mean_burst: 10,
                },
                FaultOp::Duplicate { rate: 0.05 },
                FaultOp::Reorder {
                    rate: 0.1,
                    max_shift_ms: 5_000,
                },
                FaultOp::ClockSkew {
                    max_offset_ms: 2_000,
                    drift_ms_per_day: 500,
                },
                FaultOp::QuantizeLatency { grain_ms: 50.0 },
                FaultOp::NullMetadata { rate: 0.2 },
            ],
        };
        let a = plan.apply(&log).unwrap();
        let b = plan.apply(&log).unwrap();
        assert_eq!(a.to_records(), b.to_records());
        // A different seed produces a different corruption.
        let plan2 = FaultPlan { seed: 43, ..plan };
        let c = plan2.apply(&log).unwrap();
        assert_ne!(a.to_records(), c.to_records());
    }

    #[test]
    fn op_streams_are_independent_of_earlier_edits() {
        // Changing op 0's parameters must not change op 1's draws: the
        // surviving-record *choices* of Duplicate are positional, so probe
        // with an identity-like first op swap instead.
        let log = sample_log();
        let with_noop_first = FaultPlan {
            seed: 7,
            ops: vec![
                FaultOp::DropUniform { rate: 0.0 },
                FaultOp::NullMetadata { rate: 0.3 },
            ],
        };
        let with_other_noop = FaultPlan {
            seed: 7,
            ops: vec![
                FaultOp::QuantizeLatency { grain_ms: 1e-9 },
                FaultOp::NullMetadata { rate: 0.3 },
            ],
        };
        let a = with_noop_first.apply(&log).unwrap();
        let b = with_other_noop.apply(&log).unwrap();
        let nulled =
            |l: &TelemetryLog| -> Vec<bool> { l.iter().map(|r| r.tz_offset_ms == 0).collect() };
        assert_eq!(nulled(&a), nulled(&b));
    }

    #[test]
    fn drop_uniform_hits_the_target_rate() {
        let log = sample_log();
        let plan = FaultPlan {
            seed: 1,
            ops: vec![FaultOp::DropUniform { rate: 0.3 }],
        };
        let out = plan.apply(&log).unwrap();
        let kept = out.len() as f64 / log.len() as f64;
        assert!((kept - 0.7).abs() < 0.05, "kept {kept}");
    }

    #[test]
    fn drop_bursty_is_latency_correlated() {
        let log = sample_log();
        let plan = FaultPlan {
            seed: 2,
            ops: vec![FaultOp::DropBursty {
                rate: 0.3,
                mean_burst: 10,
            }],
        };
        let out = plan.apply(&log).unwrap();
        let lost = 1.0 - out.len() as f64 / log.len() as f64;
        assert!((lost - 0.3).abs() < 0.12, "lost {lost}");
        // Slow records (latency 900) are lost preferentially.
        let slow_before = log.iter().filter(|r| r.latency_ms > 500.0).count() as f64;
        let slow_after = out.iter().filter(|r| r.latency_ms > 500.0).count() as f64;
        let fast_before = log.len() as f64 - slow_before;
        let fast_after = out.len() as f64 - slow_after;
        let slow_loss = 1.0 - slow_after / slow_before;
        let fast_loss = 1.0 - fast_after / fast_before;
        assert!(
            slow_loss > fast_loss + 0.1,
            "slow loss {slow_loss} vs fast loss {fast_loss}"
        );
    }

    #[test]
    fn drop_bursty_extremes() {
        let log = sample_log();
        let none = FaultPlan {
            seed: 3,
            ops: vec![FaultOp::DropBursty {
                rate: 0.0,
                mean_burst: 5,
            }],
        };
        assert_eq!(none.apply(&log).unwrap().len(), log.len());
        let all = FaultPlan {
            seed: 3,
            ops: vec![FaultOp::DropBursty {
                rate: 1.0,
                mean_burst: 5,
            }],
        };
        assert_eq!(all.apply(&log).unwrap().len(), 0);
    }

    #[test]
    fn duplicate_adds_exact_copies() {
        let log = sample_log();
        let plan = FaultPlan {
            seed: 4,
            ops: vec![FaultOp::Duplicate { rate: 0.2 }],
        };
        let out = plan.apply(&log).unwrap();
        let added = out.len() - log.len();
        assert!(
            (added as f64 / log.len() as f64 - 0.2).abs() < 0.05,
            "added {added}"
        );
        // Duplicates are adjacent and field-for-field identical.
        let dups = out.to_records().windows(2).filter(|w| w[0] == w[1]).count();
        assert_eq!(dups, added);
    }

    #[test]
    fn reorder_unsorts_the_log() {
        let log = sample_log();
        let plan = FaultPlan {
            seed: 5,
            ops: vec![FaultOp::Reorder {
                rate: 0.3,
                max_shift_ms: 10_000,
            }],
        };
        let out = plan.apply(&log).unwrap();
        assert_eq!(out.len(), log.len());
        assert!(!out.is_sorted());
    }

    #[test]
    fn clock_skew_is_per_user_and_order_independent() {
        let log = sample_log();
        let plan = FaultPlan {
            seed: 6,
            ops: vec![FaultOp::ClockSkew {
                max_offset_ms: 60_000,
                drift_ms_per_day: 0,
            }],
        };
        let out = plan.apply(&log).unwrap();
        // With zero drift, every record of a user shifts by one constant.
        let mut shift_of_user: std::collections::HashMap<u64, i64> = Default::default();
        for (orig, skewed) in log.iter().zip(out.iter()) {
            let d = skewed.time.millis() - orig.time.millis();
            let prev = shift_of_user.entry(orig.user.0).or_insert(d);
            assert_eq!(*prev, d, "user {} shift changed", orig.user.0);
        }
        // Different users get different shifts (with 50 users, collisions
        // of *all* of them on one value are impossible).
        let distinct: std::collections::HashSet<i64> = shift_of_user.values().copied().collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn quantize_heaps_latencies() {
        let log = sample_log();
        let plan = FaultPlan {
            seed: 7,
            ops: vec![FaultOp::QuantizeLatency { grain_ms: 100.0 }],
        };
        let out = plan.apply(&log).unwrap();
        for r in out.iter() {
            assert_eq!(r.latency_ms % 100.0, 0.0, "latency {}", r.latency_ms);
        }
    }

    #[test]
    fn null_metadata_resets_class_and_tz() {
        let log = sample_log();
        let plan = FaultPlan {
            seed: 8,
            ops: vec![FaultOp::NullMetadata { rate: 0.5 }],
        };
        let out = plan.apply(&log).unwrap();
        let nulled = out
            .iter()
            .filter(|r| r.tz_offset_ms == 0 && r.class == UserClass::Consumer)
            .count();
        assert!(
            (nulled as f64 / out.len() as f64 - 0.5).abs() < 0.06,
            "nulled {nulled}"
        );
        // Untouched records keep their metadata.
        assert!(out.iter().any(|r| r.tz_offset_ms == 3_600_000));
    }

    #[test]
    fn json_roundtrip_preserves_the_plan() {
        let plan = FaultPlan {
            seed: 0xDEADBEEF,
            ops: vec![
                FaultOp::DropBursty {
                    rate: 0.25,
                    mean_burst: 20,
                },
                FaultOp::QuantizeLatency { grain_ms: 10.0 },
            ],
        };
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(plan, back);
        // And the corruption it produces is identical.
        let log = sample_log();
        assert_eq!(
            plan.apply(&log).unwrap().to_records(),
            back.apply(&log).unwrap().to_records()
        );
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let log = sample_log();
        let bad = FaultPlan {
            seed: 0,
            ops: vec![FaultOp::DropUniform { rate: 1.5 }],
        };
        assert!(bad.apply(&log).is_err());
        assert!(FaultPlan::from_json(
            "{\"seed\": 0, \"ops\": [{\"DropUniform\": {\"rate\": -0.1}}]}"
        )
        .is_err());
        assert!(FaultPlan::from_json("not json").is_err());
        for bad_op in [
            FaultOp::DropBursty {
                rate: 0.1,
                mean_burst: 0,
            },
            FaultOp::Reorder {
                rate: 0.1,
                max_shift_ms: -1,
            },
            FaultOp::ClockSkew {
                max_offset_ms: -1,
                drift_ms_per_day: 0,
            },
            FaultOp::QuantizeLatency { grain_ms: 0.0 },
            FaultOp::NullMetadata { rate: f64::NAN },
        ] {
            assert!(bad_op.validate().is_err(), "{bad_op:?}");
        }
    }

    #[test]
    fn identity_plan_is_identity() {
        let log = sample_log();
        let out = FaultPlan::identity(9).apply(&log).unwrap();
        assert_eq!(out.to_records(), log.to_records());
    }

    #[test]
    fn corrupted_records_always_validate() {
        // Whatever the plan does, the output records must satisfy the
        // telemetry invariants (finite latency >= 0, sane tz).
        let log = sample_log();
        let plan = FaultPlan {
            seed: 10,
            ops: vec![
                FaultOp::ClockSkew {
                    max_offset_ms: 10_000_000,
                    drift_ms_per_day: 100_000,
                },
                FaultOp::QuantizeLatency { grain_ms: 333.0 },
                FaultOp::NullMetadata { rate: 1.0 },
            ],
        };
        let out = plan.apply(&log).unwrap();
        for r in out.iter() {
            assert!(r.validate().is_ok());
        }
    }
}
