//! Record-at-a-time fault injection for streaming ingest boundaries.
//!
//! [`FaultPlan::apply`](crate::FaultPlan::apply) corrupts a complete log in
//! one pass per operator. A streaming pipeline never holds the complete
//! log, so [`FaultStream`] applies the same operator chain record by
//! record, keeping one persistent RNG stream per operator (derived exactly
//! as the batch path derives them) plus whatever little state an operator
//! carries across records (burst flags, running means).
//!
//! For operators whose batch randomness is consumed strictly per record in
//! input order — `DropUniform`, `Duplicate`, `Reorder`, `QuantizeLatency`,
//! `NullMetadata` — feeding a log through a `FaultStream` produces output
//! **byte-identical** to `FaultPlan::apply` on the same log. The two
//! whole-log operators approximate their batch statistics causally:
//! `DropBursty` weights burst onset by a running latency mean instead of
//! the global mean, and `ClockSkew` anchors drift at the first record seen
//! instead of the global minimum time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use autosens_telemetry::record::{ActionRecord, UserClass};
use autosens_telemetry::time::SimTime;

use crate::plan::{splitmix64, FaultOp, FaultPlan};

const MS_PER_DAY: f64 = 86_400_000.0;

/// Per-operator streaming state.
#[derive(Debug)]
struct OpState {
    op: FaultOp,
    rng: StdRng,
    /// `DropBursty`: currently inside a drop burst.
    in_burst: bool,
    /// `DropBursty`: running latency sum / count for the onset weight.
    latency_sum: f64,
    latency_count: u64,
    /// `ClockSkew`: the per-plan stream value (drawn on first record, as
    /// the batch path draws it before its pass) and the drift anchor.
    skew_stream: Option<u64>,
    t0: Option<i64>,
}

impl OpState {
    fn new(op: FaultOp, seed: u64, position: usize) -> OpState {
        OpState {
            op,
            rng: StdRng::seed_from_u64(splitmix64(seed ^ (position as u64 + 1))),
            in_burst: false,
            latency_sum: 0.0,
            latency_count: 0,
            skew_stream: None,
            t0: None,
        }
    }

    /// Apply the operator to one record: zero, one, or two output records.
    fn push(&mut self, r: ActionRecord, out: &mut Vec<ActionRecord>) {
        match self.op {
            FaultOp::DropUniform { rate } => {
                if !self.rng.gen_bool(rate) {
                    out.push(r);
                }
            }
            FaultOp::DropBursty { rate, mean_burst } => {
                let mean_burst = mean_burst.max(1) as f64;
                if rate >= 1.0 {
                    return;
                }
                self.latency_sum += r.latency_ms;
                self.latency_count += 1;
                if rate <= 0.0 {
                    out.push(r);
                    return;
                }
                if self.in_burst {
                    if self.rng.gen_bool(1.0 / mean_burst) {
                        self.in_burst = false;
                    }
                    return;
                }
                let mean_latency = self.latency_sum / self.latency_count as f64;
                let weight = if mean_latency > 0.0 {
                    r.latency_ms / mean_latency
                } else {
                    1.0
                };
                let p = (rate / mean_burst * weight).clamp(0.0, 1.0);
                if self.rng.gen_bool(p) {
                    self.in_burst = true;
                    return;
                }
                out.push(r);
            }
            FaultOp::Duplicate { rate } => {
                out.push(r);
                if self.rng.gen_bool(rate) {
                    out.push(r);
                }
            }
            FaultOp::Reorder { rate, max_shift_ms } => {
                let mut r = r;
                if self.rng.gen_bool(rate) {
                    let shift = if max_shift_ms == 0 {
                        0
                    } else {
                        self.rng.gen_range(-max_shift_ms..=max_shift_ms)
                    };
                    r.time = SimTime(r.time.millis() + shift);
                }
                out.push(r);
            }
            FaultOp::ClockSkew {
                max_offset_ms,
                drift_ms_per_day,
            } => {
                let stream = *self.skew_stream.get_or_insert_with(|| self.rng.gen());
                let t0 = *self.t0.get_or_insert(r.time.millis());
                let h = splitmix64(stream ^ r.user.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let u_off = ((h >> 32) as f64 / f64::powi(2.0, 31)) - 1.0;
                let u_drift = ((h & 0xFFFF_FFFF) as f64 / f64::powi(2.0, 31)) - 1.0;
                let offset = (u_off * max_offset_ms as f64).round() as i64;
                let elapsed_days = (r.time.millis() - t0) as f64 / MS_PER_DAY;
                let drift = (u_drift * drift_ms_per_day as f64 * elapsed_days).round() as i64;
                let mut r = r;
                r.time = SimTime(r.time.millis() + offset + drift);
                out.push(r);
            }
            FaultOp::QuantizeLatency { grain_ms } => {
                let mut r = r;
                r.latency_ms = ((r.latency_ms / grain_ms).round() * grain_ms).max(0.0);
                out.push(r);
            }
            FaultOp::NullMetadata { rate } => {
                let mut r = r;
                if self.rng.gen_bool(rate) {
                    r.class = UserClass::Consumer;
                    r.tz_offset_ms = 0;
                }
                out.push(r);
            }
        }
    }
}

/// A [`FaultPlan`] unrolled for record-at-a-time application at an ingest
/// boundary. Feed records in arrival order with [`FaultStream::push`];
/// each call returns the (possibly empty) corrupted records the chain
/// emits for that input.
#[derive(Debug)]
pub struct FaultStream {
    ops: Vec<OpState>,
}

impl FaultStream {
    /// Build the streaming form of a plan. Fails if the plan is invalid.
    pub fn new(plan: &FaultPlan) -> Result<FaultStream, String> {
        plan.validate()?;
        Ok(FaultStream {
            ops: plan
                .ops
                .iter()
                .enumerate()
                .map(|(i, op)| OpState::new(op.clone(), plan.seed, i))
                .collect(),
        })
    }

    /// Run one arriving record through the operator chain, returning the
    /// records that survive (possibly duplicated, jittered, or nulled).
    pub fn push(&mut self, record: ActionRecord) -> Vec<ActionRecord> {
        let mut current = vec![record];
        for op in &mut self.ops {
            let mut next = Vec::with_capacity(current.len());
            for r in current {
                op.push(r, &mut next);
            }
            current = next;
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_telemetry::record::{ActionType, Outcome, UserId};
    use autosens_telemetry::TelemetryLog;

    fn sample_log() -> TelemetryLog {
        let records: Vec<ActionRecord> = (0..1000)
            .map(|i| ActionRecord {
                time: SimTime(i * 1000),
                action: ActionType::SelectMail,
                latency_ms: if (400..600).contains(&i) {
                    900.0
                } else {
                    100.0
                },
                user: UserId(i as u64 % 50),
                class: UserClass::Business,
                tz_offset_ms: 3_600_000,
                outcome: Outcome::Success,
            })
            .collect();
        TelemetryLog::from_records(records).unwrap()
    }

    #[test]
    fn per_record_ops_match_the_batch_path_exactly() {
        // Every operator whose batch RNG use is per-record-in-order must
        // stream byte-identically to FaultPlan::apply.
        let log = sample_log();
        let plan = FaultPlan {
            seed: 0x57AE,
            ops: vec![
                FaultOp::DropUniform { rate: 0.1 },
                FaultOp::Duplicate { rate: 0.1 },
                FaultOp::Reorder {
                    rate: 0.2,
                    max_shift_ms: 30_000,
                },
                FaultOp::QuantizeLatency { grain_ms: 25.0 },
                FaultOp::NullMetadata { rate: 0.15 },
            ],
        };
        let batch = plan.apply(&log).unwrap();
        let mut stream = FaultStream::new(&plan).unwrap();
        let streamed: Vec<ActionRecord> = log.iter().flat_map(|r| stream.push(r)).collect();
        assert_eq!(streamed, batch.to_records());
    }

    #[test]
    fn bursty_loss_tracks_the_target_rate_online() {
        let log = sample_log();
        let plan = FaultPlan {
            seed: 2,
            ops: vec![FaultOp::DropBursty {
                rate: 0.3,
                mean_burst: 10,
            }],
        };
        let mut stream = FaultStream::new(&plan).unwrap();
        let kept: usize = log.iter().map(|r| stream.push(r).len()).sum();
        let lost = 1.0 - kept as f64 / log.len() as f64;
        assert!((lost - 0.3).abs() < 0.15, "lost {lost}");
    }

    #[test]
    fn clock_skew_streams_with_constant_per_user_offsets() {
        let log = sample_log();
        let plan = FaultPlan {
            seed: 6,
            ops: vec![FaultOp::ClockSkew {
                max_offset_ms: 60_000,
                drift_ms_per_day: 0,
            }],
        };
        let mut stream = FaultStream::new(&plan).unwrap();
        let mut shift_of_user: std::collections::HashMap<u64, i64> = Default::default();
        for r in log.iter() {
            let out = stream.push(r);
            assert_eq!(out.len(), 1);
            let d = out[0].time.millis() - r.time.millis();
            let prev = shift_of_user.entry(r.user.0).or_insert(d);
            assert_eq!(*prev, d, "user {} shift changed", r.user.0);
        }
        assert!(
            shift_of_user
                .values()
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1
        );
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let bad = FaultPlan {
            seed: 0,
            ops: vec![FaultOp::DropUniform { rate: 1.5 }],
        };
        assert!(FaultStream::new(&bad).is_err());
    }
}
