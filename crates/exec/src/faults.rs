//! Fault injection for the scheduler, in the spirit of `autosens-faults`:
//! tests arm a panic on one `(job label, chunk index)` pair to prove that
//! a chunk dying mid-map surfaces as a typed error — never a hang, never
//! a partially merged result.
//!
//! The hook is process-global (the scheduler runs on worker threads, so a
//! thread-local could not reach it); tests that arm it must target a job
//! label no concurrently running test executes, and disarm when done.

use std::sync::Mutex;

static ARMED: Mutex<Option<(String, usize)>> = Mutex::new(None);

/// Arm a panic: the next time a job labeled `label` executes chunk
/// `chunk`, that chunk panics. Stays armed (affecting every matching run)
/// until [`disarm_chunk_panic`] is called.
pub fn arm_chunk_panic(label: &str, chunk: usize) {
    *ARMED.lock().expect("fault hook lock") = Some((label.to_string(), chunk));
}

/// Disarm the injected panic.
pub fn disarm_chunk_panic() {
    *ARMED.lock().expect("fault hook lock") = None;
}

/// Called by the scheduler before running a chunk; panics iff armed for
/// this exact `(label, chunk)`.
pub(crate) fn check(label: &str, chunk: usize) {
    let armed = ARMED.lock().expect("fault hook lock");
    let hit = matches!(&*armed, Some((l, c)) if l == label && *c == chunk);
    // Release the lock before unwinding so the hook is not poisoned for
    // the rest of the process.
    drop(armed);
    if hit {
        panic!("injected fault: chunk {chunk} of job '{label}'");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::run_chunks;

    #[test]
    fn armed_fault_fires_and_disarms_cleanly() {
        arm_chunk_panic("faults_test_job", 2);
        let err = run_chunks("faults_test_job", 40, 10, 2, |c, _| c).unwrap_err();
        assert_eq!(err.chunk, 2);
        assert!(err.message.contains("injected fault"), "{}", err.message);
        // Other labels are unaffected while armed.
        assert!(run_chunks("faults_other_job", 40, 10, 2, |c, _| c).is_ok());
        disarm_chunk_panic();
        assert!(run_chunks("faults_test_job", 40, 10, 2, |c, _| c).is_ok());
    }
}
