//! The work-stealing chunk scheduler.
//!
//! A job over `n_items` is cut into fixed-size chunks (boundaries depend
//! only on `n_items` and `chunk_size`, never on the worker count). Chunk
//! indices are dealt round-robin onto per-worker deques; each worker
//! drains its own queue and steals from its peers when idle. Results are
//! collected **by chunk index**, so downstream merges always happen in
//! chunk order and the job's output is bit-identical for 1..N threads.
//!
//! A chunk that panics is caught ([`std::panic::catch_unwind`]) and the
//! whole job fails with a typed [`ExecError`] naming the lowest-indexed
//! panicked chunk — deterministic even when several chunks fail — and no
//! partial result ever escapes.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use crossbeam::deque::{Steal, Stealer, Worker};

use crate::faults;
use crate::merge::Mergeable;
use crate::resolve_threads;

/// A chunk of a job panicked; the job was abandoned with no partial merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// The job label (e.g. the pipeline stage name).
    pub label: String,
    /// The lowest-indexed chunk that panicked.
    pub chunk: usize,
    /// The captured panic message.
    pub message: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chunk {} of job '{}' panicked: {}",
            self.chunk, self.label, self.message
        )
    }
}

impl std::error::Error for ExecError {}

/// Per-worker scheduling statistics, for observability spans.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStats {
    /// Worker index within the job (0-based).
    pub worker: usize,
    /// Chunks this worker executed.
    pub chunks: u64,
    /// How many of those chunks were stolen from a peer's queue.
    pub steals: u64,
    /// Worker wall-clock time in milliseconds.
    pub wall_ms: f64,
}

/// What a job did: chunk geometry plus per-worker statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// The job label.
    pub label: String,
    /// Items covered by the job.
    pub n_items: usize,
    /// Number of chunks the job was cut into.
    pub n_chunks: usize,
    /// The (fixed) chunk size; the last chunk may be shorter.
    pub chunk_size: usize,
    /// Workers that ran the job (after clamping to the chunk count).
    pub threads: usize,
    /// Per-worker statistics.
    pub workers: Vec<WorkerStats>,
}

/// Run `map` over every chunk of `0..n_items` and return the per-chunk
/// results **in chunk order**, plus a scheduling report.
///
/// `threads == 0` means "all available cores"; the worker count is
/// clamped to the chunk count. The output is independent of `threads`.
pub fn run_chunks<T, F>(
    label: &str,
    n_items: usize,
    chunk_size: usize,
    threads: usize,
    map: F,
) -> Result<(Vec<T>, ExecReport), ExecError>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let chunk_size = chunk_size.max(1);
    let n_chunks = n_items.div_ceil(chunk_size);
    let threads = resolve_threads(threads).min(n_chunks.max(1));
    let mut report = ExecReport {
        label: label.to_string(),
        n_items,
        n_chunks,
        chunk_size,
        threads,
        workers: Vec::new(),
    };
    if n_chunks == 0 {
        return Ok((Vec::new(), report));
    }

    let run_one = |chunk: usize| -> std::thread::Result<T> {
        let range = chunk * chunk_size..((chunk + 1) * chunk_size).min(n_items);
        catch_unwind(AssertUnwindSafe(|| {
            faults::check(label, chunk);
            map(chunk, range)
        }))
    };

    // Collected as (chunk index, result) pairs per worker, reassembled in
    // chunk order below — the scheduler's only source of nondeterminism
    // (which worker ran a chunk) is erased here.
    let mut collected: Vec<(usize, std::thread::Result<T>)> = Vec::with_capacity(n_chunks);

    if threads == 1 {
        let t0 = Instant::now();
        for chunk in 0..n_chunks {
            collected.push((chunk, run_one(chunk)));
        }
        report.workers.push(WorkerStats {
            worker: 0,
            chunks: n_chunks as u64,
            steals: 0,
            wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
        });
    } else {
        let queues: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        for chunk in 0..n_chunks {
            queues[chunk % threads].push(chunk);
        }
        let stealers: Vec<Stealer<usize>> = queues.iter().map(|q| q.stealer()).collect();
        let joined = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = queues
                .iter()
                .enumerate()
                .map(|(w, queue)| {
                    let stealers = &stealers;
                    let run_one = &run_one;
                    scope.spawn(move |_| {
                        let t0 = Instant::now();
                        let mut out: Vec<(usize, std::thread::Result<T>)> = Vec::new();
                        let mut stats = WorkerStats {
                            worker: w,
                            chunks: 0,
                            steals: 0,
                            wall_ms: 0.0,
                        };
                        loop {
                            let mut next = queue.pop();
                            if next.is_none() {
                                // Steal from peers in a fixed ring order.
                                for i in 1..stealers.len() {
                                    match stealers[(w + i) % stealers.len()].steal() {
                                        Steal::Success(c) => {
                                            stats.steals += 1;
                                            next = Some(c);
                                            break;
                                        }
                                        Steal::Empty | Steal::Retry => {}
                                    }
                                }
                            }
                            let Some(chunk) = next else { break };
                            stats.chunks += 1;
                            out.push((chunk, run_one(chunk)));
                        }
                        stats.wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
                        (stats, out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("exec worker catches its own unwinds"))
                .collect::<Vec<_>>()
        })
        .expect("exec scope failed");
        for (stats, mut out) in joined {
            report.workers.push(stats);
            collected.append(&mut out);
        }
    }

    // Reassemble in chunk order; surface the lowest-indexed panic.
    let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
    let mut first_panic: Option<(usize, String)> = None;
    for (chunk, result) in collected {
        match result {
            Ok(value) => slots[chunk] = Some(value),
            Err(payload) => {
                let message = panic_message(payload);
                if first_panic.as_ref().is_none_or(|(c, _)| chunk < *c) {
                    first_panic = Some((chunk, message));
                }
            }
        }
    }
    if let Some((chunk, message)) = first_panic {
        return Err(ExecError {
            label: label.to_string(),
            chunk,
            message,
        });
    }
    let results = slots
        .into_iter()
        // Invariant: every chunk index was dealt exactly once and either
        // produced a value or a panic (handled above).
        .map(|s| s.expect("every chunk ran"))
        .collect();
    Ok((results, report))
}

/// Chunked map-reduce: run `map` over every chunk and fold the partial
/// aggregates **in chunk order**. Returns `None` for an empty job.
pub fn map_reduce<M, F>(
    label: &str,
    n_items: usize,
    chunk_size: usize,
    threads: usize,
    map: F,
) -> Result<(Option<M>, ExecReport), ExecError>
where
    M: Mergeable + Send,
    F: Fn(usize, Range<usize>) -> M + Sync,
{
    let (parts, report) = run_chunks(label, n_items, chunk_size, threads, map)?;
    let mut parts = parts.into_iter();
    let mut acc = parts.next();
    if let Some(acc) = acc.as_mut() {
        for p in parts {
            acc.merge(p);
        }
    }
    Ok((acc, report))
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_chunk_order() {
        for threads in [1, 2, 4, 8] {
            let (out, report) =
                run_chunks("order", 1000, 7, threads, |chunk, range| (chunk, range)).unwrap();
            assert_eq!(out.len(), 1000usize.div_ceil(7));
            for (i, (chunk, range)) in out.iter().enumerate() {
                assert_eq!(*chunk, i);
                assert_eq!(range.start, i * 7);
                assert_eq!(range.end, ((i + 1) * 7).min(1000));
            }
            let total: u64 = report.workers.iter().map(|w| w.chunks).sum();
            assert_eq!(total, report.n_chunks as u64);
        }
    }

    #[test]
    fn float_reduce_is_bit_identical_across_thread_counts() {
        // A sum whose value depends on association order: identical chunk
        // boundaries + ordered merge must give bit-identical results.
        let f = |_, range: Range<usize>| {
            let mut s = 0.0f64;
            for i in range {
                s += 1.0 / (1.0 + i as f64).sqrt();
            }
            s
        };
        let (baseline, _) = map_reduce("sum", 100_000, 1_234, 1, f).unwrap();
        for threads in [2, 4, 8] {
            let (sum, _) = map_reduce("sum", 100_000, 1_234, threads, f).unwrap();
            assert_eq!(baseline.unwrap().to_bits(), sum.unwrap().to_bits());
        }
    }

    #[test]
    fn empty_job_is_ok() {
        let (out, report) = run_chunks("empty", 0, 8, 4, |_, _| 1u64).unwrap();
        assert!(out.is_empty());
        assert_eq!(report.n_chunks, 0);
        let (agg, _) = map_reduce::<u64, _>("empty", 0, 8, 4, |_, _| 1).unwrap();
        assert_eq!(agg, None);
    }

    #[test]
    fn panicking_chunk_fails_typed_with_lowest_index() {
        for threads in [1, 3] {
            let err = run_chunks("boom", 100, 10, threads, |chunk, _| {
                if chunk >= 4 {
                    panic!("chunk {chunk} exploded");
                }
                chunk
            })
            .unwrap_err();
            assert_eq!(err.chunk, 4);
            assert_eq!(err.label, "boom");
            assert!(err.message.contains("exploded"), "{}", err.message);
            assert!(err.to_string().contains("job 'boom'"));
        }
    }

    #[test]
    fn threads_are_clamped_to_chunks() {
        let (_, report) = run_chunks("small", 10, 100, 8, |_, r| r.len()).unwrap();
        assert_eq!(report.n_chunks, 1);
        assert_eq!(report.threads, 1);
    }
}
