//! The [`Mergeable`] partial-aggregate trait.
//!
//! A chunked map produces one partial aggregate per chunk; the scheduler
//! folds them **in chunk order** into the final result. `merge` therefore
//! only needs to be associative — the fold order is fixed by the chunking,
//! so even floating-point aggregates come out bit-identical for any
//! worker count.

/// A partial aggregate that can absorb another partial of the same shape.
pub trait Mergeable {
    /// Fold `other` into `self`. Called in chunk order by
    /// [`crate::scheduler::map_reduce`].
    fn merge(&mut self, other: Self);
}

impl Mergeable for () {
    fn merge(&mut self, _other: Self) {}
}

/// Counters merge by summation.
impl Mergeable for u64 {
    fn merge(&mut self, other: Self) {
        *self += other;
    }
}

/// Weighted totals merge by summation (fold order is fixed, so the
/// floating-point result is still deterministic).
impl Mergeable for f64 {
    fn merge(&mut self, other: Self) {
        *self += other;
    }
}

/// Fixed-shape vectors of partials (e.g. one histogram per α slot) merge
/// element-wise. Panics on a length mismatch — chunk partials of one job
/// always share a shape, so a mismatch is a programming error.
impl<T: Mergeable> Mergeable for Vec<T> {
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot merge partial vectors of different lengths"
        );
        for (a, b) in self.iter_mut().zip(other) {
            a.merge(b);
        }
    }
}

/// Fixed-size arrays of partials (e.g. one counter per hour slot) merge
/// element-wise; the shape is enforced by the type.
impl<T: Mergeable, const N: usize> Mergeable for [T; N] {
    fn merge(&mut self, other: Self) {
        for (a, b) in self.iter_mut().zip(other) {
            a.merge(b);
        }
    }
}

impl<A: Mergeable, B: Mergeable> Mergeable for (A, B) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
}

impl<A: Mergeable, B: Mergeable, C: Mergeable> Mergeable for (A, B, C) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
        self.2.merge(other.2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_sum() {
        let mut a = 3u64;
        a.merge(4);
        assert_eq!(a, 7);
        let mut x = 1.5f64;
        x.merge(0.25);
        assert_eq!(x, 1.75);
    }

    #[test]
    fn vectors_merge_elementwise() {
        let mut a = vec![1u64, 2, 3];
        a.merge(vec![10, 20, 30]);
        assert_eq!(a, vec![11, 22, 33]);
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn vector_length_mismatch_panics() {
        let mut a = vec![1u64];
        a.merge(vec![1, 2]);
    }

    #[test]
    fn arrays_merge_elementwise() {
        let mut a = [1u64, 2, 3];
        a.merge([10, 20, 30]);
        assert_eq!(a, [11, 22, 33]);
    }

    #[test]
    fn tuples_merge_componentwise() {
        let mut a = (1u64, vec![1.0f64, 2.0]);
        a.merge((2, vec![0.5, 0.5]));
        assert_eq!(a, (3, vec![1.5, 2.5]));
        let mut b = (1u64, 2u64, 3.0f64);
        b.merge((1, 1, 1.0));
        assert_eq!(b, (2, 3, 4.0));
    }
}
