//! # `autosens-exec` — deterministic data-parallel execution
//!
//! The AutoSens hot path is shard → map → **ordered** reduce: every stage
//! that walks millions of telemetry records (sanitize, the α slot
//! partition, unbiased draw accumulation, bootstrap replicates, sim record
//! generation) is expressed as a chunked map over fixed-size record ranges
//! whose per-chunk partial results are merged **in chunk order**.
//!
//! Determinism contract: the output of [`scheduler::run_chunks`] and
//! [`scheduler::map_reduce`] is a pure function of `(n_items, chunk_size,
//! map)` — the worker count only changes *which thread* computes a chunk,
//! never the chunk boundaries, the per-chunk computation, or the merge
//! order. Callers that need randomness seed an independent RNG stream per
//! chunk (never per worker), so results are bit-identical for 1..N
//! threads. Chunk sizes come from [`chunk_size_for`], which depends only
//! on the item count.
//!
//! Scheduling is work-stealing over the vendored crossbeam deques: chunks
//! are dealt round-robin onto per-worker queues, an idle worker steals
//! from its peers, and a chunk that panics is captured and surfaced as a
//! typed [`scheduler::ExecError`] (smallest chunk index wins, so even the
//! error is deterministic) — never a hang and never a partial merge.

pub mod faults;
pub mod merge;
pub mod scheduler;

pub use merge::Mergeable;
pub use scheduler::{map_reduce, run_chunks, ExecError, ExecReport, WorkerStats};

/// Resolve a configured thread count: `0` means "all available cores".
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// The chunk size used for record-range jobs over `n` items.
///
/// Deliberately a function of `n` only — never of the thread count — so
/// chunk boundaries (and therefore merge order and per-chunk RNG streams)
/// are identical no matter how many workers run the job. The policy aims
/// for ~64 chunks on large inputs, floored so tiny chunks don't drown the
/// job in scheduling overhead and capped so one chunk cannot monopolize a
/// worker.
pub fn chunk_size_for(n: usize) -> usize {
    (n / 64).clamp(4_096, 131_072).min(n.max(1))
}

/// The chunk size for pure *scan* jobs — chunked maps that carry no
/// per-chunk RNG stream (slice filtering, deduplication, the α loss-cell
/// partition, loss counting).
///
/// Scan partials are often heavyweight (the α partition allocates 96
/// histograms per chunk), so fine chunking taxes the job twice: once in
/// per-chunk allocation and once in the ordered merge. This policy aims
/// for ~16 large chunks instead of [`chunk_size_for`]'s ~64, and its floor
/// means small inputs run as a single chunk (one worker, no spawn
/// overhead). Like `chunk_size_for` it depends only on `n`, never on the
/// thread count, so chunk boundaries and merge order are identical for
/// 1..N workers. RNG-bearing jobs must keep using [`chunk_size_for`]:
/// their per-chunk seed streams are part of the pinned output.
pub fn scan_chunk_size_for(n: usize) -> usize {
    (n / 16).clamp(65_536, 2_097_152).min(n.max(1))
}

/// Derive the RNG seed of one chunk from a job's base seed.
///
/// Jobs that draw random numbers seed one independent stream per *chunk*
/// (never per worker) with this function, so the draws a chunk makes are a
/// pure function of `(base, chunk)` and the job's output does not depend
/// on which worker ran the chunk. The mixer is SplitMix64: consecutive
/// chunk indices land far apart in seed space.
pub fn chunk_seed(base: u64, chunk: u64) -> u64 {
    let mut z = base ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_depends_only_on_n() {
        assert_eq!(chunk_size_for(0), 1);
        assert_eq!(chunk_size_for(100), 100);
        assert_eq!(chunk_size_for(10_000), 4_096);
        assert_eq!(chunk_size_for(1 << 20), 16_384);
        assert_eq!(chunk_size_for(100_000_000), 131_072);
    }

    #[test]
    fn scan_chunk_size_depends_only_on_n() {
        assert_eq!(scan_chunk_size_for(0), 1);
        assert_eq!(scan_chunk_size_for(100), 100);
        // Below the floor the whole scan is one chunk.
        assert_eq!(scan_chunk_size_for(60_000), 60_000);
        assert_eq!(scan_chunk_size_for(1 << 20), 65_536);
        assert_eq!(scan_chunk_size_for(8_000_000), 500_000);
        assert_eq!(scan_chunk_size_for(100_000_000), 2_097_152);
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn chunk_seeds_are_stable_and_distinct() {
        assert_eq!(chunk_seed(42, 7), chunk_seed(42, 7));
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|c| chunk_seed(0xABCD, c)).collect();
        assert_eq!(seeds.len(), 1000);
    }
}
