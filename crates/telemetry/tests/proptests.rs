//! Property-based tests for the telemetry substrate.

use autosens_telemetry::codec;
use autosens_telemetry::log::TelemetryLog;
use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use autosens_telemetry::time::{DayPeriod, SimTime, MS_PER_HOUR};
use autosens_telemetry::users;
use proptest::prelude::*;

fn arb_action() -> impl Strategy<Value = ActionType> {
    prop_oneof![
        Just(ActionType::SelectMail),
        Just(ActionType::SwitchFolder),
        Just(ActionType::Search),
        Just(ActionType::ComposeSend),
        Just(ActionType::Other),
    ]
}

fn arb_record() -> impl Strategy<Value = ActionRecord> {
    (
        -1_000_000_000i64..1_000_000_000,
        arb_action(),
        0.0f64..10_000.0,
        0u64..50,
        prop::bool::ANY,
        -12i64..=12,
        prop::bool::ANY,
    )
        .prop_map(
            |(t, action, latency, user, business, tz_h, ok)| ActionRecord {
                time: SimTime(t),
                action,
                latency_ms: latency,
                user: UserId(user),
                class: if business {
                    UserClass::Business
                } else {
                    UserClass::Consumer
                },
                tz_offset_ms: tz_h * MS_PER_HOUR,
                outcome: if ok { Outcome::Success } else { Outcome::Error },
            },
        )
}

proptest! {
    #[test]
    fn log_sorting_preserves_multiset(records in prop::collection::vec(arb_record(), 0..100)) {
        let log = TelemetryLog::from_records(records.clone()).unwrap();
        prop_assert_eq!(log.len(), records.len());
        prop_assert!(log.is_sorted());
        let mut orig_times: Vec<i64> = records.iter().map(|r| r.time.millis()).collect();
        orig_times.sort();
        let log_times: Vec<i64> = log.iter().map(|r| r.time.millis()).collect();
        prop_assert_eq!(orig_times, log_times);
    }

    #[test]
    fn nearest_in_time_is_truly_nearest(
        records in prop::collection::vec(arb_record(), 1..60),
        query in -1_000_000_000i64..1_000_000_000,
    ) {
        let log = TelemetryLog::from_records(records).unwrap();
        let (lo, hi) = log.nearest_in_time(SimTime(query)).unwrap();
        prop_assert!(lo < hi);
        let best = (log.get(lo).time.millis() - query).abs();
        // Every record in [lo, hi) is at the same (minimal) distance...
        for i in lo..hi {
            prop_assert_eq!((log.get(i).time.millis() - query).abs(), best);
        }
        // ...and no record anywhere is closer.
        for r in log.iter() {
            prop_assert!((r.time.millis() - query).abs() >= best);
        }
        // And the range covers ALL records at the minimal distance.
        let count_at_best = log
            .iter()
            .filter(|r| (r.time.millis() - query).abs() == best)
            .count();
        prop_assert_eq!(hi - lo, count_at_best);
    }

    #[test]
    fn range_matches_linear_scan(
        records in prop::collection::vec(arb_record(), 0..80),
        a in -1_000_000_000i64..1_000_000_000,
        b in -1_000_000_000i64..1_000_000_000,
    ) {
        let (from, to) = if a <= b { (a, b) } else { (b, a) };
        let log = TelemetryLog::from_records(records).unwrap();
        let via_range = log.range(SimTime(from), SimTime(to)).unwrap().len();
        let via_scan = log
            .iter()
            .filter(|r| r.time.millis() >= from && r.time.millis() < to)
            .count();
        prop_assert_eq!(via_range, via_scan);
    }

    #[test]
    fn csv_roundtrip_is_identity(records in prop::collection::vec(arb_record(), 0..60)) {
        let log = TelemetryLog::from_records(records).unwrap();
        let mut buf = Vec::new();
        codec::write_csv(&log, &mut buf).unwrap();
        let back = codec::read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), log.len());
        for (a, b) in back.iter().zip(log.iter()) {
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(a.action, b.action);
            prop_assert!((a.latency_ms - b.latency_ms).abs() < 1e-9);
            prop_assert_eq!(a.user, b.user);
            prop_assert_eq!(a.class, b.class);
            prop_assert_eq!(a.tz_offset_ms, b.tz_offset_ms);
            prop_assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn jsonl_roundtrip_is_identity(records in prop::collection::vec(arb_record(), 0..60)) {
        let log = TelemetryLog::from_records(records).unwrap();
        let mut buf = Vec::new();
        codec::write_jsonl(&log, &mut buf).unwrap();
        let back = codec::read_jsonl(buf.as_slice()).unwrap();
        prop_assert_eq!(back.to_records(), log.to_records());
    }

    #[test]
    fn day_period_partition_is_total(hour in 0u8..24) {
        // of_hour never panics and every hour maps to a period whose label
        // is one of the four known labels.
        let p = DayPeriod::of_hour(hour);
        prop_assert!(DayPeriod::all().contains(&p));
    }

    #[test]
    fn quartiles_partition_eligible_users(
        records in prop::collection::vec(arb_record(), 20..200),
    ) {
        let log = TelemetryLog::from_records(records).unwrap();
        if let Some(q) = users::latency_quartiles(&log.view(), 1) {
            // Groups are disjoint and cover all eligible users.
            let stats = users::per_user_stats(&log.view(), 1);
            let total: usize = q.groups.iter().map(|g| g.len()).sum();
            prop_assert_eq!(total, stats.len());
            for (i, g1) in q.groups.iter().enumerate() {
                for g2 in q.groups.iter().skip(i + 1) {
                    prop_assert!(g1.is_disjoint(g2));
                }
            }
            // Group sizes differ by at most 1 from one another... actually by
            // construction floor(4i/n) gives sizes within 1 of n/4.
            let sizes: Vec<usize> = q.groups.iter().map(|g| g.len()).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1, "sizes = {:?}", sizes);
        }
    }

    #[test]
    fn local_time_arithmetic_is_consistent(
        t in -2_000_000_000i64..2_000_000_000,
        tz_h in -14i64..=14,
    ) {
        use autosens_telemetry::time::{Month, MS_PER_DAY};
        let tz = tz_h * MS_PER_HOUR;
        let st = SimTime(t);
        let hour = st.hour_of_day_local(tz);
        prop_assert!(hour < 24);
        // Reconstructing the local instant from (day, hour) brackets t.
        let day = st.day_local(tz);
        let local_ms = t + tz;
        prop_assert!(local_ms >= day * MS_PER_DAY);
        prop_assert!(local_ms < (day + 1) * MS_PER_DAY);
        prop_assert_eq!(((local_ms - day * MS_PER_DAY) / MS_PER_HOUR) as u8, hour);
        // Period and slot derive from the same hour.
        prop_assert_eq!(st.day_period_local(tz), DayPeriod::of_hour(hour));
        prop_assert_eq!(st.hour_slot_local(tz).0, hour);
        // Weekday cycles with period 7 days.
        let next_week = st.plus_millis(7 * MS_PER_DAY);
        prop_assert_eq!(st.weekday_local(tz), next_week.weekday_local(tz));
        // Months are monotone within the simulated year.
        if (0..365).contains(&day) {
            let m1 = Month::of_day(day);
            let m2 = Month::of_day(day + 1);
            prop_assert!(m2 >= m1);
        }
    }

    #[test]
    fn shifting_by_whole_days_preserves_hour(
        t in -1_000_000_000i64..1_000_000_000,
        days in -100i64..100,
        tz_h in -14i64..=14,
    ) {
        use autosens_telemetry::time::MS_PER_DAY;
        let tz = tz_h * MS_PER_HOUR;
        let a = SimTime(t);
        let b = a.plus_millis(days * MS_PER_DAY);
        prop_assert_eq!(a.hour_of_day_local(tz), b.hour_of_day_local(tz));
        prop_assert_eq!(a.day_local(tz) + days, b.day_local(tz));
    }

    #[test]
    fn successes_only_removes_exactly_errors(records in prop::collection::vec(arb_record(), 0..100)) {
        let log = TelemetryLog::from_records(records).unwrap();
        let ok = log.successes_only();
        let n_err = log.iter().filter(|r| r.outcome == Outcome::Error).count();
        prop_assert_eq!(ok.len() + n_err, log.len());
        prop_assert!(ok.iter().all(|r| r.outcome == Outcome::Success));
    }
}
