//! Error type for telemetry parsing and validation.

use std::fmt;

/// Errors arising from telemetry ingestion and validation.
#[derive(Debug)]
pub enum TelemetryError {
    /// An I/O failure while reading or writing a log.
    Io(std::io::Error),
    /// A malformed row in a CSV/JSONL input, with its 1-based line number.
    Malformed {
        /// 1-based line number of the offending row.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A record failed semantic validation (e.g. negative latency).
    InvalidRecord(String),
    /// The log was required to be time-sorted but was not.
    Unsorted {
        /// Index of the first out-of-order record.
        index: usize,
    },
    /// A binary container file failed structural or semantic validation
    /// (bad magic, truncated footer, checksum mismatch, invalid column
    /// values, ...). Corruption is always reported through this variant,
    /// never a panic.
    Container {
        /// What failed, phrased for an operator.
        reason: String,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::Io(e) => write!(f, "telemetry I/O error: {e}"),
            TelemetryError::Malformed { line, reason } => {
                write!(f, "malformed telemetry at line {line}: {reason}")
            }
            TelemetryError::InvalidRecord(reason) => {
                write!(f, "invalid telemetry record: {reason}")
            }
            TelemetryError::Unsorted { index } => {
                write!(f, "telemetry log unsorted at record index {index}")
            }
            TelemetryError::Container { reason } => {
                write!(f, "corrupt telemetry container: {reason}")
            }
        }
    }
}

impl std::error::Error for TelemetryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TelemetryError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TelemetryError {
    fn from(e: std::io::Error) -> Self {
        TelemetryError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = TelemetryError::Malformed {
            line: 7,
            reason: "missing latency".into(),
        };
        assert_eq!(
            e.to_string(),
            "malformed telemetry at line 7: missing latency"
        );
        assert_eq!(
            TelemetryError::Unsorted { index: 3 }.to_string(),
            "telemetry log unsorted at record index 3"
        );
        assert!(TelemetryError::InvalidRecord("x".into())
            .to_string()
            .contains("x"));
        assert_eq!(
            TelemetryError::Container {
                reason: "bad magic".into()
            }
            .to_string(),
            "corrupt telemetry container: bad magic"
        );
    }

    #[test]
    fn io_error_wraps_with_source() {
        use std::error::Error;
        let e: TelemetryError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(e.source().is_some());
    }
}
