//! Data-quality auditing: estimate how damaged a telemetry log is.
//!
//! Real telemetry arrives lossy, duplicated, out of order, clock-skewed, and
//! heaped (client clocks quantize latencies onto coarse grains). The analysis
//! pipeline degrades gracefully, but operators need to *see* the damage. This
//! module computes a [`QualityReport`] — estimated loss and duplicate rates,
//! ordering violations, latency heaping, and metadata null rates — each with
//! a [`Severity`] grade, without mutating the log.
//!
//! ## What the loss estimator can and cannot see
//!
//! Loss is estimated from hourly volume: records are bucketed per (day,
//! hour-of-day), a per-hour baseline is taken as the *median* count across
//! days, and the shortfall of the observed total against the baselined total
//! is reported. This catches bursty, time-localized loss (outages, lossy
//! uploads during slow periods) because unaffected days anchor the median.
//! Uniform record-level loss (classic MCAR) lowers every bucket equally and
//! is therefore invisible to this estimator — the reported rate is a lower
//! bound on true loss, not an unbiased estimate.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::log::TelemetryLog;
use crate::loss::{estimate_cell_loss, CellLossEvidence, LossCounts};
use crate::query::Slice;
use crate::time::{SimTime, MS_PER_DAY, MS_PER_HOUR};

/// Graded severity of a quality metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Within normal operating bounds.
    Ok,
    /// Degraded: analysis remains possible but results may be biased.
    Warn,
    /// Severely damaged: treat downstream results with suspicion.
    Critical,
}

impl Severity {
    fn grade(value: f64, warn: f64, critical: f64) -> Severity {
        if value > critical {
            Severity::Critical
        } else if value > warn {
            Severity::Warn
        } else {
            Severity::Ok
        }
    }

    /// Stable string name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Ok => "ok",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }
}

/// One audited metric: its value and its severity grade.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// The measured value (a rate in [0, 1] unless noted on the field).
    pub value: f64,
    /// Severity grade of the value against the metric's thresholds.
    pub severity: Severity,
}

impl Metric {
    fn graded(value: f64, warn: f64, critical: f64) -> Metric {
        Metric {
            value,
            severity: Severity::grade(value, warn, critical),
        }
    }
}

/// The result of auditing a [`TelemetryLog`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// Total records audited.
    pub n_records: u64,
    /// Estimated record loss rate via the hourly-median-baseline method
    /// (lower bound; uniform loss is invisible — see module docs).
    pub estimated_loss_rate: Metric,
    /// Fraction of records that are exact field-for-field duplicates of an
    /// earlier record.
    pub duplicate_rate: Metric,
    /// Fraction of adjacent record pairs (in storage order) whose timestamps
    /// run backwards.
    pub monotonicity_violation_rate: Metric,
    /// Count behind `monotonicity_violation_rate`.
    pub monotonicity_violations: u64,
    /// Largest fraction of latencies sitting exactly on one candidate grain
    /// (10/25/50/100 ms) — near 1.0 means client-side quantization.
    pub heaping_score: Metric,
    /// The grain (ms) that maximized `heaping_score`, if any latency hit one.
    pub heaping_grain_ms: Option<f64>,
    /// Fraction of records whose metadata equals the null sentinel
    /// (consumer class with a zero timezone offset) — anomalously high
    /// values indicate metadata stripping upstream.
    pub metadata_null_rate: Metric,
    /// Per-cell (local hour × day kind × user class) loss evidence from
    /// the [`crate::loss`] estimator — only cells with a nonzero estimated
    /// rate appear, so clean telemetry reports an empty list. Unlike the
    /// global `estimated_loss_rate`, these localize *where* records went
    /// missing, and they feed the pipeline's loss-aware correction.
    #[serde(default)]
    pub loss_cells: Vec<CellLossEvidence>,
}

impl QualityReport {
    /// The worst severity across all metrics.
    pub fn overall(&self) -> Severity {
        [
            self.estimated_loss_rate.severity,
            self.duplicate_rate.severity,
            self.monotonicity_violation_rate.severity,
            self.heaping_score.severity,
            self.metadata_null_rate.severity,
        ]
        .into_iter()
        .max()
        .unwrap_or(Severity::Ok)
    }

    /// Human-readable rendering, one metric per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("records            {}\n", self.n_records));
        let line = |name: &str, m: &Metric| {
            format!("{name:<19}{:>8.4}  [{}]\n", m.value, m.severity.name())
        };
        out.push_str(&line("est. loss rate", &self.estimated_loss_rate));
        out.push_str(&line("duplicate rate", &self.duplicate_rate));
        out.push_str(&line("unordered pairs", &self.monotonicity_violation_rate));
        out.push_str(&line("heaping score", &self.heaping_score));
        if let Some(g) = self.heaping_grain_ms {
            out.push_str(&format!("heaping grain      {g:>8.1} ms\n"));
        }
        out.push_str(&line("metadata nulls", &self.metadata_null_rate));
        out.push_str(&format!(
            "loss cells flagged {:>8}\n",
            self.loss_cells.len()
        ));
        for c in &self.loss_cells {
            out.push_str(&format!(
                "  {:<17}{:>8.4}  (observed {})\n",
                c.label(),
                c.rate,
                c.observed
            ));
        }
        out.push_str(&format!(
            "overall            {:>8}\n",
            self.overall().name()
        ));
        out
    }
}

/// Candidate quantization grains probed by the heaping detector, in ms.
const HEAPING_GRAINS: [f64; 4] = [10.0, 25.0, 50.0, 100.0];

/// Audit a log and grade each quality metric. Never mutates or fails: an
/// empty log yields an all-zero, all-`Ok` report.
pub fn audit(log: &TelemetryLog) -> QualityReport {
    audit_slice(log, &Slice::all())
}

/// Audit the records of a log matching a [`Slice`], without materializing
/// the sub-log: every pass walks [`Slice::iter`] in storage order, so
/// slicing an audit costs no full-log copy. `audit_slice(log,
/// &Slice::all())` is exactly [`audit`].
pub fn audit_slice(log: &TelemetryLog, slice: &Slice) -> QualityReport {
    let mut span = autosens_obs::Recorder::global().root("quality.audit");
    autosens_obs::MetricsRegistry::global()
        .counter("autosens_telemetry_quality_audits_total")
        .inc();

    // Build the selection once — every pass below walks the view's
    // columns directly; no sub-log is materialized and no row is copied.
    let view = slice.select(log);
    let n = view.len() as u64;

    // Duplicates: exact repeats of a full record key seen earlier. This
    // pass also counts the ordering violations (backward steps between
    // adjacent matching rows in storage order) and tallies the per-cell
    // loss counts over first occurrences only — a re-delivered record is
    // not evidence of presence twice.
    let mut seen: HashSet<(i64, u8, u64, u64, u8, i64, u8)> = HashSet::new();
    let mut duplicates = 0u64;
    let mut monotonicity_violations = 0u64;
    let mut loss_counts = LossCounts::new();
    for i in 0..view.len() {
        let key = (
            view.time_at(i),
            view.action_at(i),
            view.latency_at(i).to_bits(),
            view.user_at(i),
            view.class_at(i),
            view.tz_offset_at(i),
            view.outcome_at(i),
        );
        if !seen.insert(key) {
            duplicates += 1;
        } else {
            loss_counts.record(
                SimTime(view.time_at(i)),
                view.tz_offset_at(i),
                view.class_at(i),
            );
        }
        if i > 0 && view.time_at(i) < view.time_at(i - 1) {
            monotonicity_violations += 1;
        }
    }
    span.field("records", n);
    let pairs = n.saturating_sub(1).max(1);

    // Heaping: share of latencies landing exactly on each candidate grain.
    let (heaping_score, heaping_grain_ms) = HEAPING_GRAINS
        .iter()
        .map(|&g| {
            let hits = (0..view.len())
                .filter(|&i| view.latency_at(i) % g == 0.0)
                .count();
            (hits as f64 / n.max(1) as f64, g)
        })
        .filter(|&(frac, _)| frac > 0.0)
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .map(|(frac, g)| (frac, Some(g)))
        .unwrap_or((0.0, None));

    // Metadata nulls: the sentinel an upstream stripper leaves behind.
    let nulls = (0..view.len())
        .filter(|&i| {
            view.tz_offset_at(i) == 0
                && view.class_at(i) == crate::record::UserClass::Consumer.code()
        })
        .count() as u64;

    // Per-cell loss evidence: localized rates the global estimator (below)
    // cannot provide. Duplicate timestamps contribute zero-length gaps,
    // which the gap estimator skips, so the raw view is safe to scan.
    let loss_cells: Vec<CellLossEvidence> = estimate_cell_loss(&view, &loss_counts)
        .cells
        .into_iter()
        .filter(|c| c.rate > 0.0)
        .collect();
    let metrics = autosens_obs::MetricsRegistry::global();
    metrics
        .gauge("autosens_quality_loss_cells_flagged")
        .set(loss_cells.len() as f64);
    for c in &loss_cells {
        let label = c.label();
        metrics
            .counter(&format!("autosens_quality_cell_observed_{label}"))
            .add(c.observed);
        metrics
            .gauge(&format!("autosens_quality_cell_loss_rate_{label}"))
            .set(c.rate);
    }

    QualityReport {
        n_records: n,
        estimated_loss_rate: Metric::graded(estimate_loss(&view), 0.05, 0.25),
        duplicate_rate: Metric::graded(duplicates as f64 / n.max(1) as f64, 0.01, 0.10),
        monotonicity_violation_rate: Metric::graded(
            monotonicity_violations as f64 / pairs as f64,
            0.0,
            0.10,
        ),
        monotonicity_violations,
        heaping_score: Metric::graded(heaping_score, 0.5, 0.9),
        heaping_grain_ms,
        metadata_null_rate: Metric::graded(nulls as f64 / n.max(1) as f64, 0.5, 0.9),
        loss_cells,
    }
}

/// Hourly-median-baseline loss estimate (see module docs for blind spots),
/// over one pass of the viewed rows' timestamp column.
fn estimate_loss(view: &crate::log::LogView<'_>) -> f64 {
    let n = view.len() as u64;
    // Count records per (day, hour-of-day) cell, in shared simulation time,
    // tracking the span as we go.
    let mut cell: HashMap<(i64, u8), u64> = HashMap::new();
    let mut first_day = i64::MAX;
    let mut last_day = i64::MIN;
    for i in 0..view.len() {
        let t = view.time_at(i);
        let day = t.div_euclid(MS_PER_DAY);
        let hour = t.div_euclid(MS_PER_HOUR).rem_euclid(24) as u8;
        *cell.entry((day, hour)).or_insert(0) += 1;
        first_day = first_day.min(day);
        last_day = last_day.max(day);
    }
    if cell.is_empty() {
        return 0.0;
    }
    let n_days = (last_day - first_day + 1) as usize;
    // Fewer than 3 days gives the median no anchor; report no loss rather
    // than a noise-driven estimate.
    if n_days < 3 {
        return 0.0;
    }

    let mut expected = 0.0;
    for hour in 0u8..24 {
        let mut counts: Vec<u64> = (first_day..=last_day)
            .map(|d| cell.get(&(d, hour)).copied().unwrap_or(0))
            .collect();
        counts.sort_unstable();
        let baseline = if counts.len() % 2 == 1 {
            counts[counts.len() / 2] as f64
        } else {
            (counts[counts.len() / 2 - 1] + counts[counts.len() / 2]) as f64 / 2.0
        };
        expected += baseline * n_days as f64;
    }
    if expected <= 0.0 {
        return 0.0;
    }
    (1.0 - n as f64 / expected).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
    use crate::time::SimTime;

    fn rec(t: i64, latency: f64, user: u64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t),
            action: ActionType::SelectMail,
            latency_ms: latency,
            user: UserId(user),
            class: UserClass::Business,
            tz_offset_ms: 3_600_000,
            outcome: Outcome::Success,
        }
    }

    /// Seven days, ten records per hour, latencies off any grain.
    fn steady_log() -> TelemetryLog {
        let mut records = Vec::new();
        for day in 0..7i64 {
            for hour in 0..24i64 {
                for k in 0..10i64 {
                    let t = day * MS_PER_DAY + hour * MS_PER_HOUR + k * 300_000;
                    records.push(rec(t, 101.3 + k as f64 * 0.7, (k + hour * 10) as u64));
                }
            }
        }
        TelemetryLog::from_records(records).unwrap()
    }

    #[test]
    fn clean_log_grades_ok() {
        let report = audit(&steady_log());
        assert_eq!(report.overall(), Severity::Ok);
        assert_eq!(report.estimated_loss_rate.value, 0.0);
        assert_eq!(report.duplicate_rate.value, 0.0);
        assert_eq!(report.monotonicity_violations, 0);
        assert!(report.heaping_score.value < 0.01);
        assert_eq!(report.metadata_null_rate.value, 0.0);
    }

    #[test]
    fn empty_log_is_all_zero_ok() {
        let report = audit(&TelemetryLog::new());
        assert_eq!(report.n_records, 0);
        assert_eq!(report.overall(), Severity::Ok);
    }

    #[test]
    fn bursty_loss_is_detected() {
        // Drop all records of days 2 and 3 between 08:00 and 20:00 — a
        // time-localized outage. ~14% of total volume disappears.
        let log = steady_log();
        let kept: Vec<ActionRecord> = log
            .iter()
            .filter(|r| {
                let day = r.time.millis().div_euclid(MS_PER_DAY);
                let hour = r.time.millis().div_euclid(MS_PER_HOUR).rem_euclid(24);
                !((2..=3).contains(&day) && (8..20).contains(&hour))
            })
            .collect();
        let true_loss = 1.0 - kept.len() as f64 / log.len() as f64;
        let damaged = TelemetryLog::from_records(kept).unwrap();
        let report = audit(&damaged);
        assert!(
            (report.estimated_loss_rate.value - true_loss).abs() < 0.03,
            "estimated {} vs true {}",
            report.estimated_loss_rate.value,
            true_loss
        );
        assert_eq!(report.estimated_loss_rate.severity, Severity::Warn);
    }

    #[test]
    fn loss_cells_localize_a_sustained_outage() {
        // A two-weekday outage between 08:00 and 20:00 (server time; +1h
        // local) is strong enough for the per-cell volume estimator. The
        // clean log must flag nothing.
        let mut records = Vec::new();
        for day in 0..14i64 {
            for hour in 0..24i64 {
                for k in 0..40i64 {
                    let t = day * MS_PER_DAY + hour * MS_PER_HOUR + k * 90_000;
                    records.push(rec(t, 101.3 + k as f64 * 0.7, (k + hour * 40) as u64));
                }
            }
        }
        let clean = TelemetryLog::from_records(records.clone()).unwrap();
        assert!(audit(&clean).loss_cells.is_empty());

        let kept: Vec<ActionRecord> = records
            .into_iter()
            .filter(|r| {
                let day = r.time.millis().div_euclid(MS_PER_DAY);
                let hour = r.time.millis().div_euclid(MS_PER_HOUR).rem_euclid(24);
                !((3..=4).contains(&day) && (8..20).contains(&hour))
            })
            .collect();
        let report = audit(&TelemetryLog::from_records(kept).unwrap());
        assert!(!report.loss_cells.is_empty(), "outage cells not flagged");
        // All flagged cells are weekday local hours 9..21 (+1h tz).
        for c in &report.loss_cells {
            assert!(!c.weekend, "weekend cell flagged: {}", c.label());
            assert!(
                (9..21).contains(&c.hour),
                "cell outside outage: {}",
                c.label()
            );
            assert!(c.rate > 0.05 && c.rate < 0.4, "rate {}", c.rate);
        }
        assert!(report.render().contains("loss cells flagged"));
    }

    #[test]
    fn duplicates_are_counted() {
        let log = steady_log();
        let mut records: Vec<ActionRecord> = log.to_records();
        let n = records.len();
        // Duplicate every 20th record.
        for i in (0..n).step_by(20) {
            records.push(records[i]);
        }
        let damaged = TelemetryLog::from_records(records).unwrap();
        let report = audit(&damaged);
        assert!(report.duplicate_rate.value > 0.04);
        assert!(report.duplicate_rate.severity >= Severity::Warn);
    }

    #[test]
    fn unordered_log_is_flagged() {
        let mut log = TelemetryLog::new();
        log.push(rec(1_000, 5.0, 1)).unwrap();
        log.push(rec(500, 5.0, 2)).unwrap();
        log.push(rec(2_000, 5.0, 3)).unwrap();
        let report = audit(&log);
        assert_eq!(report.monotonicity_violations, 1);
        assert!(report.monotonicity_violation_rate.severity >= Severity::Warn);
    }

    #[test]
    fn heaped_latencies_are_detected_with_grain() {
        let records: Vec<ActionRecord> = (0..500)
            .map(|i| rec(i * 60_000, ((i % 7) * 50) as f64, i as u64))
            .collect();
        let report = audit(&TelemetryLog::from_records(records).unwrap());
        assert!(report.heaping_score.value > 0.9);
        assert_eq!(report.heaping_grain_ms, Some(50.0));
        assert_eq!(report.heaping_score.severity, Severity::Critical);
    }

    #[test]
    fn stripped_metadata_is_flagged() {
        let records: Vec<ActionRecord> = (0..100)
            .map(|i| {
                let mut r = rec(i * 60_000, 100.5, i as u64);
                if i % 10 != 0 {
                    r.class = UserClass::Consumer;
                    r.tz_offset_ms = 0;
                }
                r
            })
            .collect();
        let report = audit(&TelemetryLog::from_records(records).unwrap());
        assert!((report.metadata_null_rate.value - 0.9).abs() < 1e-9);
        assert_eq!(report.metadata_null_rate.severity, Severity::Warn);
    }

    #[test]
    fn audit_slice_matches_audit_of_the_materialized_sublog() {
        // The borrowed path must grade exactly like auditing the copy.
        let log = steady_log();
        let slice = Slice::all().class(UserClass::Business).successes();
        assert_eq!(audit_slice(&log, &slice), audit(&slice.apply(&log)));
        // And the match-everything slice is the plain audit.
        assert_eq!(audit_slice(&log, &Slice::all()), audit(&log));
    }

    #[test]
    fn report_serializes_and_renders() {
        let report = audit(&steady_log());
        let json = serde_json::to_string(&report).unwrap();
        let back: QualityReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        let text = report.render();
        assert!(text.contains("est. loss rate"));
        assert!(text.contains("overall"));
    }

    #[test]
    fn severity_ordering_and_grading() {
        assert!(Severity::Ok < Severity::Warn && Severity::Warn < Severity::Critical);
        assert_eq!(Severity::grade(0.0, 0.05, 0.25), Severity::Ok);
        assert_eq!(Severity::grade(0.10, 0.05, 0.25), Severity::Warn);
        assert_eq!(Severity::grade(0.30, 0.05, 0.25), Severity::Critical);
    }
}
