//! Per-user aggregates and the §3.4 conditioning quartiles.
//!
//! The paper groups users into quartiles by their per-user *median* latency
//! (computed from an anonymized identifier, never analyzing individuals) and
//! compares latency sensitivity across the quartiles. This module computes
//! per-user summaries and quartile assignments from a log.

use std::collections::{HashMap, HashSet};

use autosens_stats::descriptive;

use crate::log::LogView;
use crate::record::UserId;

/// Aggregate statistics for one user.
#[derive(Debug, Clone, PartialEq)]
pub struct UserStats {
    /// The anonymized user id.
    pub user: UserId,
    /// Number of (matching) actions.
    pub n_actions: usize,
    /// Median latency over the user's actions.
    pub median_latency_ms: f64,
    /// Mean latency over the user's actions.
    pub mean_latency_ms: f64,
}

/// Compute per-user statistics over a view (or any pre-sliced selection).
/// Users with fewer than `min_actions` records are excluded — medians of a
/// handful of samples are too noisy to condition on.
pub fn per_user_stats(log: &LogView<'_>, min_actions: usize) -> Vec<UserStats> {
    let mut latencies: HashMap<UserId, Vec<f64>> = HashMap::new();
    for i in 0..log.len() {
        latencies
            .entry(UserId(log.user_at(i)))
            .or_default()
            .push(log.latency_at(i));
    }
    let mut out: Vec<UserStats> = latencies
        .into_iter()
        .filter(|(_, v)| v.len() >= min_actions.max(1))
        .map(|(user, v)| {
            let median = descriptive::median(&v).expect("non-empty by filter");
            let mean = descriptive::mean(&v).expect("non-empty by filter");
            UserStats {
                user,
                n_actions: v.len(),
                median_latency_ms: median,
                mean_latency_ms: mean,
            }
        })
        .collect();
    // Deterministic order for reproducible downstream grouping.
    out.sort_by_key(|s| s.user);
    out
}

/// Like [`per_user_stats`], but with O(1) memory per user: medians come
/// from a P² streaming estimator instead of a stored latency vector. Use
/// for logs too large to buffer per-user samples (the paper's dataset had
/// billions of actions); estimates are within a few percent of exact for
/// realistic latency distributions.
pub fn per_user_stats_streaming(log: &LogView<'_>, min_actions: usize) -> Vec<UserStats> {
    use autosens_stats::quantile_stream::P2Quantile;
    struct Acc {
        median: P2Quantile,
        sum: f64,
        n: usize,
    }
    let mut accs: HashMap<UserId, Acc> = HashMap::new();
    for i in 0..log.len() {
        let latency = log.latency_at(i);
        let acc = accs.entry(UserId(log.user_at(i))).or_insert_with(|| Acc {
            median: P2Quantile::median(),
            sum: 0.0,
            n: 0,
        });
        acc.median
            .observe(latency)
            .expect("latencies validated finite on log entry");
        acc.sum += latency;
        acc.n += 1;
    }
    let mut out: Vec<UserStats> = accs
        .into_iter()
        .filter(|(_, a)| a.n >= min_actions.max(1))
        .map(|(user, a)| UserStats {
            user,
            n_actions: a.n,
            median_latency_ms: a.median.estimate().expect("n >= 1"),
            mean_latency_ms: a.sum / a.n as f64,
        })
        .collect();
    out.sort_by_key(|s| s.user);
    out
}

/// Quartile groups of users by median latency: `groups[0]` = Q1 (fastest)
/// through `groups[3]` = Q4 (slowest).
#[derive(Debug, Clone)]
pub struct LatencyQuartiles {
    /// User sets for Q1..Q4.
    pub groups: [HashSet<UserId>; 4],
    /// The three median-latency cut points between the quartiles.
    pub cuts: [f64; 3],
}

impl LatencyQuartiles {
    /// Which quartile (0..4) a user belongs to, if any.
    pub fn quartile_of(&self, user: UserId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&user))
    }

    /// Paper-style label for quartile index 0..4.
    pub fn label(q: usize) -> &'static str {
        ["Q1 (fastest)", "Q2", "Q3", "Q4 (slowest)"][q]
    }
}

/// Split users into quartiles by per-user median latency (§3.4).
///
/// Users are sorted by median latency and cut into four equal-count groups
/// (the last group absorbs the remainder). Returns `None` when fewer than 4
/// eligible users exist.
pub fn latency_quartiles(log: &LogView<'_>, min_actions: usize) -> Option<LatencyQuartiles> {
    let mut stats = per_user_stats(log, min_actions);
    if stats.len() < 4 {
        return None;
    }
    stats.sort_by(|a, b| {
        a.median_latency_ms
            .partial_cmp(&b.median_latency_ms)
            .expect("latencies validated finite")
            .then(a.user.cmp(&b.user))
    });
    let n = stats.len();
    let mut groups: [HashSet<UserId>; 4] = Default::default();
    for (i, s) in stats.iter().enumerate() {
        // Equal-count split: index i belongs to quartile floor(4i/n).
        let q = (4 * i / n).min(3);
        groups[q].insert(s.user);
    }
    let cut = |k: usize| stats[(n * k / 4).min(n - 1)].median_latency_ms;
    Some(LatencyQuartiles {
        groups,
        cuts: [cut(1), cut(2), cut(3)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::TelemetryLog;
    use crate::record::{ActionRecord, ActionType, Outcome, UserClass};
    use crate::time::SimTime;

    fn rec(t_ms: i64, user: u64, latency: f64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t_ms),
            action: ActionType::SelectMail,
            latency_ms: latency,
            user: UserId(user),
            class: UserClass::Consumer,
            tz_offset_ms: 0,
            outcome: Outcome::Success,
        }
    }

    /// A log where user u's latencies are all `100 * u`.
    fn log_with_users(n_users: u64, actions_each: usize) -> TelemetryLog {
        let mut records = Vec::new();
        let mut t = 0;
        for u in 1..=n_users {
            for _ in 0..actions_each {
                records.push(rec(t, u, 100.0 * u as f64));
                t += 1000;
            }
        }
        TelemetryLog::from_records(records).unwrap()
    }

    #[test]
    fn per_user_stats_computes_medians() {
        let log = TelemetryLog::from_records(vec![
            rec(0, 1, 100.0),
            rec(1, 1, 300.0),
            rec(2, 1, 200.0),
            rec(3, 2, 50.0),
        ])
        .unwrap();
        let stats = per_user_stats(&log.view(), 1);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].user, UserId(1));
        assert_eq!(stats[0].n_actions, 3);
        assert_eq!(stats[0].median_latency_ms, 200.0);
        assert_eq!(stats[0].mean_latency_ms, 200.0);
        assert_eq!(stats[1].median_latency_ms, 50.0);
    }

    #[test]
    fn per_user_stats_respects_min_actions() {
        let log =
            TelemetryLog::from_records(vec![rec(0, 1, 100.0), rec(1, 1, 100.0), rec(2, 2, 50.0)])
                .unwrap();
        let stats = per_user_stats(&log.view(), 2);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].user, UserId(1));
        // min_actions = 0 is treated as 1.
        assert_eq!(per_user_stats(&log.view(), 0).len(), 2);
    }

    #[test]
    fn quartiles_split_evenly() {
        let log = log_with_users(8, 3);
        let q = latency_quartiles(&log.view(), 1).unwrap();
        for g in &q.groups {
            assert_eq!(g.len(), 2);
        }
        // Users 1,2 (fastest) in Q1; users 7,8 in Q4.
        assert_eq!(q.quartile_of(UserId(1)), Some(0));
        assert_eq!(q.quartile_of(UserId(2)), Some(0));
        assert_eq!(q.quartile_of(UserId(7)), Some(3));
        assert_eq!(q.quartile_of(UserId(8)), Some(3));
        assert_eq!(q.quartile_of(UserId(99)), None);
        // Cut points are increasing.
        assert!(q.cuts[0] < q.cuts[1] && q.cuts[1] < q.cuts[2]);
    }

    #[test]
    fn quartiles_handle_remainders() {
        let log = log_with_users(10, 1);
        let q = latency_quartiles(&log.view(), 1).unwrap();
        let sizes: Vec<usize> = q.groups.iter().map(|g| g.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        // floor(4i/10) splits as 3/2/3/2.
        assert_eq!(sizes, vec![3, 2, 3, 2]);
    }

    #[test]
    fn quartiles_need_at_least_four_users() {
        let log = log_with_users(3, 5);
        assert!(latency_quartiles(&log.view(), 1).is_none());
        // Enough users, but the min-actions filter removes them.
        let log = log_with_users(8, 1);
        assert!(latency_quartiles(&log.view(), 2).is_none());
    }

    #[test]
    fn quartile_labels() {
        assert_eq!(LatencyQuartiles::label(0), "Q1 (fastest)");
        assert_eq!(LatencyQuartiles::label(3), "Q4 (slowest)");
    }

    #[test]
    fn streaming_stats_match_exact_stats() {
        // Varied latencies per user: streaming medians should track exact
        // ones closely, and means exactly.
        let mut records = Vec::new();
        let mut t = 0;
        for u in 1..=6u64 {
            for i in 0..400 {
                // A skewed, user-dependent latency pattern.
                let latency = 50.0 * u as f64 + ((i * 37 + u as usize * 11) % 200) as f64;
                records.push(rec(t, u, latency));
                t += 1000;
            }
        }
        let log = TelemetryLog::from_records(records).unwrap();
        let exact = per_user_stats(&log.view(), 1);
        let streaming = per_user_stats_streaming(&log.view(), 1);
        assert_eq!(exact.len(), streaming.len());
        for (e, s) in exact.iter().zip(&streaming) {
            assert_eq!(e.user, s.user);
            assert_eq!(e.n_actions, s.n_actions);
            assert!((e.mean_latency_ms - s.mean_latency_ms).abs() < 1e-9);
            let rel = (e.median_latency_ms - s.median_latency_ms).abs() / e.median_latency_ms;
            assert!(
                rel < 0.05,
                "user {:?}: exact {} vs stream {}",
                e.user,
                e.median_latency_ms,
                s.median_latency_ms
            );
        }
        // min_actions filter behaves identically.
        assert_eq!(
            per_user_stats_streaming(&log.view(), 401).len(),
            per_user_stats(&log.view(), 401).len()
        );
    }

    #[test]
    fn deterministic_tie_breaking() {
        // All users share a median: grouping must still be deterministic
        // (ordered by user id).
        let mut records = Vec::new();
        for u in 1..=8 {
            records.push(rec(u as i64, u, 100.0));
        }
        let log = TelemetryLog::from_records(records).unwrap();
        let q1 = latency_quartiles(&log.view(), 1).unwrap();
        let q2 = latency_quartiles(&log.view(), 1).unwrap();
        for (a, b) in q1.groups.iter().zip(q2.groups.iter()) {
            assert_eq!(a, b);
        }
        assert_eq!(q1.quartile_of(UserId(1)), Some(0));
        assert_eq!(q1.quartile_of(UserId(8)), Some(3));
    }
}
