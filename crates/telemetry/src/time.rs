//! Time handling for telemetry and analysis.
//!
//! The reproduction runs on a simulated calendar: time is milliseconds since
//! a simulation epoch that is defined to be **00:00 local standard time on
//! Friday, January 1** of the simulated year. Per-user timezones are modeled
//! as fixed offsets applied before local-time arithmetic; all of the paper's
//! time machinery (hour-of-day, the four 6-hour day periods, months,
//! weekends) only needs that much.

use serde::{Deserialize, Serialize};

/// Milliseconds per second.
pub const MS_PER_SEC: i64 = 1_000;
/// Milliseconds per minute.
pub const MS_PER_MIN: i64 = 60 * MS_PER_SEC;
/// Milliseconds per hour.
pub const MS_PER_HOUR: i64 = 60 * MS_PER_MIN;
/// Milliseconds per day.
pub const MS_PER_DAY: i64 = 24 * MS_PER_HOUR;

/// A point in simulated time: milliseconds since the simulation epoch
/// (00:00 on January 1 of the simulated year, a Friday — as in 2021,
/// the year of the paper's dataset).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(pub i64);

impl SimTime {
    /// The epoch itself.
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from whole days, hours, minutes since the epoch.
    pub fn from_dhm(days: i64, hours: i64, minutes: i64) -> SimTime {
        SimTime(days * MS_PER_DAY + hours * MS_PER_HOUR + minutes * MS_PER_MIN)
    }

    /// Milliseconds since the epoch.
    pub fn millis(self) -> i64 {
        self.0
    }

    /// Shift by a number of milliseconds.
    pub fn plus_millis(self, ms: i64) -> SimTime {
        SimTime(self.0 + ms)
    }

    /// Whole days since the epoch (floor), in the given timezone offset.
    pub fn day_local(self, tz_offset_ms: i64) -> i64 {
        (self.0 + tz_offset_ms).div_euclid(MS_PER_DAY)
    }

    /// Local hour of day `0..24` under the given timezone offset.
    pub fn hour_of_day_local(self, tz_offset_ms: i64) -> u8 {
        ((self.0 + tz_offset_ms).rem_euclid(MS_PER_DAY) / MS_PER_HOUR) as u8
    }

    /// Day of week, `0 = Monday .. 6 = Sunday`, under the given offset.
    /// The epoch (Jan 1) is a Friday (= 4), matching 2021.
    pub fn weekday_local(self, tz_offset_ms: i64) -> u8 {
        let day = self.day_local(tz_offset_ms);
        ((day + 4).rem_euclid(7)) as u8
    }

    /// True on Saturday or Sunday local time.
    pub fn is_weekend_local(self, tz_offset_ms: i64) -> bool {
        self.weekday_local(tz_offset_ms) >= 5
    }

    /// Calendar month under the given offset, using the real (non-leap)
    /// month lengths of the simulated year.
    pub fn month_local(self, tz_offset_ms: i64) -> Month {
        Month::of_day(self.day_local(tz_offset_ms))
    }

    /// The paper's four 6-hour local-time periods (§3.6).
    pub fn day_period_local(self, tz_offset_ms: i64) -> DayPeriod {
        DayPeriod::of_hour(self.hour_of_day_local(tz_offset_ms))
    }

    /// The 1-hour confounder slot this instant falls into: the slot index is
    /// the *local* hour-of-day (0..24), so data from the same local hour on
    /// different days pools into the same slot, as in the paper's §2.4.1.
    pub fn hour_slot_local(self, tz_offset_ms: i64) -> HourSlot {
        HourSlot(self.hour_of_day_local(tz_offset_ms))
    }
}

/// A 1-hour local-time slot (hour-of-day, 0..24), the discretization used by
/// the time-confounder correction in §2.4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HourSlot(pub u8);

impl HourSlot {
    /// All 24 slots in order.
    pub fn all() -> impl Iterator<Item = HourSlot> {
        (0..24).map(HourSlot)
    }
}

/// The four 6-hour local-time periods used in the paper's §3.6 analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DayPeriod {
    /// 8am–2pm local time (the paper's reference period).
    Morning8to14,
    /// 2pm–8pm local time.
    Afternoon14to20,
    /// 8pm–2am local time.
    Evening20to2,
    /// 2am–8am local time.
    Night2to8,
}

impl DayPeriod {
    /// Period containing a local hour of day.
    pub fn of_hour(hour: u8) -> DayPeriod {
        match hour {
            8..=13 => DayPeriod::Morning8to14,
            14..=19 => DayPeriod::Afternoon14to20,
            20..=23 | 0..=1 => DayPeriod::Evening20to2,
            _ => DayPeriod::Night2to8,
        }
    }

    /// All four periods, reference (8am–2pm) first.
    pub fn all() -> [DayPeriod; 4] {
        [
            DayPeriod::Morning8to14,
            DayPeriod::Afternoon14to20,
            DayPeriod::Evening20to2,
            DayPeriod::Night2to8,
        ]
    }

    /// Human-readable label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            DayPeriod::Morning8to14 => "8am-2pm",
            DayPeriod::Afternoon14to20 => "2pm-8pm",
            DayPeriod::Evening20to2 => "8pm-2am",
            DayPeriod::Night2to8 => "2am-8am",
        }
    }

    /// Whether this is one of the two daytime periods.
    pub fn is_daytime(self) -> bool {
        matches!(self, DayPeriod::Morning8to14 | DayPeriod::Afternoon14to20)
    }
}

/// A calendar month of the simulated (non-leap) year.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Month {
    /// January (days 0..31).
    Jan,
    /// February (days 31..59).
    Feb,
    /// March.
    Mar,
    /// April.
    Apr,
    /// May.
    May,
    /// June.
    Jun,
    /// July.
    Jul,
    /// August.
    Aug,
    /// September.
    Sep,
    /// October.
    Oct,
    /// November.
    Nov,
    /// December (and any overflow past the simulated year).
    Dec,
}

/// Cumulative day-of-year at which each month starts (non-leap year).
const MONTH_STARTS: [i64; 12] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];

impl Month {
    /// Month containing a (0-based) day of the simulated year. Days beyond
    /// day 364 are clamped into December; negative days into January.
    pub fn of_day(day: i64) -> Month {
        let months = [
            Month::Jan,
            Month::Feb,
            Month::Mar,
            Month::Apr,
            Month::May,
            Month::Jun,
            Month::Jul,
            Month::Aug,
            Month::Sep,
            Month::Oct,
            Month::Nov,
            Month::Dec,
        ];
        if day < 0 {
            return Month::Jan;
        }
        for i in (0..12).rev() {
            if day >= MONTH_STARTS[i] {
                return months[i];
            }
        }
        Month::Jan
    }

    /// Short label ("Jan", "Feb", ...).
    pub fn label(self) -> &'static str {
        match self {
            Month::Jan => "Jan",
            Month::Feb => "Feb",
            Month::Mar => "Mar",
            Month::Apr => "Apr",
            Month::May => "May",
            Month::Jun => "Jun",
            Month::Jul => "Jul",
            Month::Aug => "Aug",
            Month::Sep => "Sep",
            Month::Oct => "Oct",
            Month::Nov => "Nov",
            Month::Dec => "Dec",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(MS_PER_DAY, 86_400_000);
        assert_eq!(MS_PER_HOUR, 3_600_000);
    }

    #[test]
    fn from_dhm_and_accessors() {
        let t = SimTime::from_dhm(2, 3, 30);
        assert_eq!(
            t.millis(),
            2 * MS_PER_DAY + 3 * MS_PER_HOUR + 30 * MS_PER_MIN
        );
        assert_eq!(t.day_local(0), 2);
        assert_eq!(t.hour_of_day_local(0), 3);
        assert_eq!(t.plus_millis(MS_PER_HOUR).hour_of_day_local(0), 4);
    }

    #[test]
    fn timezone_offsets_shift_local_time() {
        let t = SimTime::from_dhm(0, 23, 0);
        assert_eq!(t.hour_of_day_local(0), 23);
        // +2h offset rolls into the next local day.
        assert_eq!(t.hour_of_day_local(2 * MS_PER_HOUR), 1);
        assert_eq!(t.day_local(2 * MS_PER_HOUR), 1);
        // -5h offset (US East relative to the epoch zone).
        assert_eq!(t.hour_of_day_local(-5 * MS_PER_HOUR), 18);
        assert_eq!(t.day_local(-5 * MS_PER_HOUR), 0);
    }

    #[test]
    fn negative_times_use_euclidean_arithmetic() {
        let t = SimTime(-1);
        assert_eq!(t.day_local(0), -1);
        assert_eq!(t.hour_of_day_local(0), 23);
    }

    #[test]
    fn weekday_epoch_is_friday() {
        // Jan 1 of the simulated year is a Friday (like 2021).
        assert_eq!(SimTime::EPOCH.weekday_local(0), 4);
        // Jan 2 = Saturday, Jan 3 = Sunday, Jan 4 = Monday.
        assert_eq!(SimTime::from_dhm(1, 0, 0).weekday_local(0), 5);
        assert!(SimTime::from_dhm(1, 0, 0).is_weekend_local(0));
        assert!(SimTime::from_dhm(2, 0, 0).is_weekend_local(0));
        assert_eq!(SimTime::from_dhm(3, 0, 0).weekday_local(0), 0);
        assert!(!SimTime::from_dhm(3, 0, 0).is_weekend_local(0));
    }

    #[test]
    fn day_periods_partition_the_day() {
        assert_eq!(DayPeriod::of_hour(8), DayPeriod::Morning8to14);
        assert_eq!(DayPeriod::of_hour(13), DayPeriod::Morning8to14);
        assert_eq!(DayPeriod::of_hour(14), DayPeriod::Afternoon14to20);
        assert_eq!(DayPeriod::of_hour(19), DayPeriod::Afternoon14to20);
        assert_eq!(DayPeriod::of_hour(20), DayPeriod::Evening20to2);
        assert_eq!(DayPeriod::of_hour(23), DayPeriod::Evening20to2);
        assert_eq!(DayPeriod::of_hour(0), DayPeriod::Evening20to2);
        assert_eq!(DayPeriod::of_hour(1), DayPeriod::Evening20to2);
        assert_eq!(DayPeriod::of_hour(2), DayPeriod::Night2to8);
        assert_eq!(DayPeriod::of_hour(7), DayPeriod::Night2to8);
        // Every hour belongs to exactly one period.
        let mut counts = std::collections::HashMap::new();
        for h in 0..24 {
            *counts.entry(DayPeriod::of_hour(h)).or_insert(0) += 1;
        }
        assert!(counts.values().all(|&c| c == 6));
    }

    #[test]
    fn day_period_metadata() {
        assert!(DayPeriod::Morning8to14.is_daytime());
        assert!(DayPeriod::Afternoon14to20.is_daytime());
        assert!(!DayPeriod::Evening20to2.is_daytime());
        assert!(!DayPeriod::Night2to8.is_daytime());
        assert_eq!(DayPeriod::all()[0], DayPeriod::Morning8to14);
        assert_eq!(DayPeriod::Morning8to14.label(), "8am-2pm");
    }

    #[test]
    fn months_follow_calendar() {
        assert_eq!(Month::of_day(0), Month::Jan);
        assert_eq!(Month::of_day(30), Month::Jan);
        assert_eq!(Month::of_day(31), Month::Feb);
        assert_eq!(Month::of_day(58), Month::Feb);
        assert_eq!(Month::of_day(59), Month::Mar);
        assert_eq!(Month::of_day(364), Month::Dec);
        assert_eq!(Month::of_day(1000), Month::Dec);
        assert_eq!(Month::of_day(-1), Month::Jan);
        assert_eq!(Month::Feb.label(), "Feb");
    }

    #[test]
    fn month_local_respects_timezone() {
        // Last millisecond of Jan 31 in epoch zone...
        let t = SimTime(31 * MS_PER_DAY - 1);
        assert_eq!(t.month_local(0), Month::Jan);
        // ...is already February for a +1h user.
        assert_eq!(t.month_local(MS_PER_HOUR), Month::Feb);
    }

    #[test]
    fn hour_slots_enumerate_24() {
        let all: Vec<HourSlot> = HourSlot::all().collect();
        assert_eq!(all.len(), 24);
        assert_eq!(all[0], HourSlot(0));
        assert_eq!(all[23], HourSlot(23));
        let t = SimTime::from_dhm(5, 17, 12);
        assert_eq!(t.hour_slot_local(0), HourSlot(17));
    }
}
