//! Per-slot / per-class telemetry-loss evidence.
//!
//! The quality audit's headline loss number ([`crate::quality`]) is global:
//! one rate for the whole log. Loss-aware inference needs to know *where*
//! records went missing — which local hour-of-day, day kind (weekday vs
//! weekend) and user class lost how much — because missing-not-at-random
//! loss concentrated in slow hours biases the pooled preference curve.
//! This module estimates an observation probability per **loss cell**
//! (local hour × day kind × user class, 96 cells) from two independent,
//! in-band natural experiments:
//!
//! * **Volume evidence** — per-cell daily counts across days of the same
//!   kind; the median count of unaffected days anchors a baseline, and a
//!   statistically significant shortfall of the observed total against
//!   `median × days` marks day-localized loss (outages, lossy uploads).
//! * **Sequence-gap evidence** — inter-arrival gaps within each (local
//!   day, hour) micro-cell, pooled across classes. A gap many times the
//!   cell's median step indicates a dropped run of records; for
//!   heartbeat-regular telemetry (gap dispersion ≲ 5%) every multi-step
//!   gap is counted, which makes even uniform (MCAR) thinning visible.
//!   Missing records detected at the slot level are allocated to classes
//!   in proportion to the classes' observed volume.
//!
//! Both estimators are deliberately conservative: every trigger is gated
//! by a significance test against its own noise floor, and rates below
//! [`MIN_CELL_RATE`] are rounded to zero, so clean telemetry yields an
//! all-zero [`LossEvidence`] and the downstream correction is a provable
//! no-op. Blind spots (documented, inherent to in-band estimation): purely
//! uniform thinning of *irregular* (Poisson-like) arrivals preserves both
//! the gap shape and the day-to-day volume profile and is invisible here —
//! but MCAR loss does not bias the preference curve, so the correction
//! being a no-op there is the right answer.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::log::LogView;
use crate::time::{SimTime, MS_PER_DAY, MS_PER_HOUR};

/// User classes tracked per loss cell (Business = 0, Consumer = 1).
pub const N_LOSS_CLASSES: usize = 2;
/// Time slots: 24 local hours × {weekday, weekend}.
pub const N_LOSS_SLOTS: usize = 48;
/// Loss cells: slot × class.
pub const N_LOSS_CELLS: usize = N_LOSS_SLOTS * N_LOSS_CLASSES;

/// Minimum days of one kind (weekday/weekend) for a volume baseline.
const MIN_DAYS_OF_KIND: usize = 3;
/// Minimum records in a (day, hour) micro-cell for gap evidence.
const MIN_GAP_RECORDS: usize = 8;
/// Gap MAD/median at or below this marks heartbeat-regular arrivals.
const REGULAR_MAD_RATIO: f64 = 0.05;
/// Irregular arrivals: a gap above `factor × median` flags a dropped run.
const GAP_FLAG_FACTOR: f64 = 16.0;
/// Irregular gap evidence needs at least this many flagged gaps per slot
/// (a single monster gap in thousands of exponential arrivals can be
/// chance; two independent ones in the same slot essentially cannot).
const MIN_IRREGULAR_FLAGS: usize = 2;
/// Significance multiple on the volume noise floor.
const VOL_SIGMA_FACTOR: f64 = 3.0;
/// Consistency constant of the median absolute deviation vs σ.
const MAD_TO_SIGMA: f64 = 1.4826;
/// Estimated per-cell rates below this are rounded to zero so noise never
/// activates the downstream correction.
pub const MIN_CELL_RATE: f64 = 0.05;
/// Minimum per-day shortfall fraction (vs the hour's median same-kind
/// day) for a day-localized rate. Single-day counts carry the full
/// session-level overdispersion of real arrivals — organic slow days run
/// 15–18% below the median with z-scores far past any Poisson bound — so
/// the day gate is a hard rate floor well above that band, much stricter
/// than [`MIN_CELL_RATE`].
pub const MIN_DAY_RATE: f64 = 0.25;
/// Corroboration gate for day-localized rates: a flagged (day, hour)'s
/// quiet time — the sum of its [`TOP_QUIET_GAPS`] largest contiguous
/// quiet intervals — must be at least this multiple of the median
/// same-kind day's quiet time at the same hour. Burst loss removes
/// contiguous runs of records, and a heavily damaged hour loses its
/// mass across *several* bursts, so the statistic sums the top few
/// holes rather than requiring any single hole to dominate. An
/// organically slow day (fewer sessions, the very behavioral signal the
/// pipeline measures) thins traffic without changing its gap scale
/// much: its top gaps stay near the same-kind median's, and measured
/// ratios on clean overdispersed data top out near 1.7. The reference
/// is relative, not a fraction of the claimed missing time, because
/// sessionful traffic has large inter-session holes on every day that
/// an absolute threshold would misread. The threshold sits just above
/// 2.0, the exact signature of diffuse thinning on regular traffic
/// (removing isolated records doubles each top gap from one step to
/// two), and just below the measured burst band (≥ 2.1 on injected
/// runs). Without this gate a hard rate floor alone still flags the
/// extreme tail of clean session-overdispersed days, and "correcting"
/// those cancels real activity dips.
const DAY_QUIET_RATIO: f64 = 2.1;
/// How many of the largest quiet intervals the day-gate statistic sums.
const TOP_QUIET_GAPS: usize = 3;

/// Whether a local day index falls on a weekend (epoch day 0 = Friday,
/// matching [`SimTime::is_weekend_local`] and the α slot windows).
pub fn is_weekend_day(day: i64) -> bool {
    ((day + 4).rem_euclid(7)) >= 5
}

/// Index of the loss cell for (local hour, weekend flag, class code).
/// Class codes ≥ [`N_LOSS_CLASSES`] clamp into the last class.
pub fn loss_cell_index(hour: u8, weekend: bool, class_code: u8) -> usize {
    let slot = hour as usize * 2 + usize::from(weekend);
    slot * N_LOSS_CLASSES + (class_code as usize).min(N_LOSS_CLASSES - 1)
}

/// Stable, metric-name-safe label of a loss cell
/// (`h{hour}_{wd|we}_{business|consumer}`).
pub fn loss_cell_label(cell: usize) -> String {
    let slot = cell / N_LOSS_CLASSES;
    let class = cell % N_LOSS_CLASSES;
    let hour = slot / 2;
    let kind = if slot.is_multiple_of(2) { "wd" } else { "we" };
    let class = if class == 0 { "business" } else { "consumer" };
    format!("h{hour:02}_{kind}_{class}")
}

/// Per-local-day record counts by (hour, class): the incremental substrate
/// of the volume evidence.
///
/// Counts are unit `u64` additions, so partials maintained per stream
/// shard merge exactly in any order and match a batch rescan of the same
/// records bit for bit. The day kind is derived from the day index, so
/// one 48-wide row per day suffices for all 96 cells.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LossCounts {
    /// Per-local-day rows, kept sorted by day (ascending, unique).
    pub days: Vec<DayCounts>,
}

/// One local day's `[hour * N_LOSS_CLASSES + class]` record counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DayCounts {
    /// Local day index (milliseconds since epoch / [`MS_PER_DAY`]).
    pub day: i64,
    /// 48 counts: `hour * N_LOSS_CLASSES + class`.
    pub counts: Vec<u64>,
}

impl LossCounts {
    /// An empty counter.
    pub fn new() -> LossCounts {
        LossCounts::default()
    }

    fn row_mut(&mut self, day: i64) -> &mut Vec<u64> {
        let idx = match self.days.binary_search_by_key(&day, |d| d.day) {
            Ok(i) => i,
            Err(i) => {
                self.days.insert(
                    i,
                    DayCounts {
                        day,
                        counts: vec![0u64; 24 * N_LOSS_CLASSES],
                    },
                );
                i
            }
        };
        &mut self.days[idx].counts
    }

    fn row(&self, day: i64) -> Option<&[u64]> {
        self.days
            .binary_search_by_key(&day, |d| d.day)
            .ok()
            .map(|i| self.days[i].counts.as_slice())
    }

    /// Fold one record in (its own timezone defines the local day/hour).
    pub fn record(&mut self, time: SimTime, tz_offset_ms: i64, class_code: u8) {
        let local = time.millis() + tz_offset_ms;
        let day = local.div_euclid(MS_PER_DAY);
        let hour = local.div_euclid(MS_PER_HOUR).rem_euclid(24) as usize;
        self.row_mut(day)[hour * N_LOSS_CLASSES + (class_code as usize).min(N_LOSS_CLASSES - 1)] +=
            1;
    }

    /// Fold another counter into this one.
    pub fn merge(&mut self, other: &LossCounts) {
        for day in &other.days {
            let row = self.row_mut(day.day);
            for (a, b) in row.iter_mut().zip(&day.counts) {
                *a += b;
            }
        }
    }

    /// Build from a view in one pass (the batch counterpart of the
    /// incremental `record` path; identical result for the same rows).
    pub fn from_view(view: &LogView<'_>) -> LossCounts {
        let mut counts = LossCounts::new();
        for i in 0..view.len() {
            counts.record(
                SimTime(view.time_at(i)),
                view.tz_offset_at(i),
                view.class_at(i),
            );
        }
        counts
    }

    /// Chunked [`LossCounts::from_view`]: per-chunk counters merged in
    /// chunk order. Counts are unit `u64` additions, so the result is
    /// bit-identical to the serial pass for every thread count.
    pub fn from_view_par(view: &LogView<'_>, threads: usize) -> LossCounts {
        struct Part(LossCounts);
        impl autosens_exec::Mergeable for Part {
            fn merge(&mut self, other: Self) {
                self.0.merge(&other.0);
            }
        }
        let n = view.len();
        let v = view.borrowed();
        let (part, _) = autosens_exec::map_reduce(
            "loss_counts",
            n,
            autosens_exec::scan_chunk_size_for(n),
            threads,
            |_, range| {
                let mut c = LossCounts::new();
                for i in range {
                    c.record(SimTime(v.time_at(i)), v.tz_offset_at(i), v.class_at(i));
                }
                Part(c)
            },
        )
        .expect("loss-count scan does not panic");
        part.map(|p| p.0).unwrap_or_default()
    }

    /// Total records counted.
    pub fn total(&self) -> u64 {
        self.days.iter().flat_map(|d| &d.counts).sum()
    }

    /// Observed records per loss cell.
    pub fn observed_cells(&self) -> [u64; N_LOSS_CELLS] {
        let mut observed = [0u64; N_LOSS_CELLS];
        for day in &self.days {
            let weekend = is_weekend_day(day.day);
            for hour in 0..24u8 {
                for class in 0..N_LOSS_CLASSES {
                    observed[loss_cell_index(hour, weekend, class as u8)] +=
                        day.counts[hour as usize * N_LOSS_CLASSES + class];
                }
            }
        }
        observed
    }
}

/// Loss evidence for one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLossEvidence {
    /// Cell index (see [`loss_cell_index`]).
    pub cell: usize,
    /// Local hour of day.
    pub hour: u8,
    /// Weekend flag.
    pub weekend: bool,
    /// User class code (0 = business, 1 = consumer).
    pub class_code: u8,
    /// Records observed in the cell.
    pub observed: u64,
    /// Estimated records the cell should have had (≥ `observed`).
    pub expected: f64,
    /// Estimated loss rate `1 - observed/expected` (0 when not flagged).
    pub rate: f64,
}

impl CellLossEvidence {
    /// Metric-name-safe label of the cell.
    pub fn label(&self) -> String {
        loss_cell_label(self.cell)
    }
}

/// Loss rates localized to one calendar day: per local hour, class-pooled
/// (loss inside a burst is class-blind, and pooling keeps the full
/// per-hour volume as signal).
///
/// Day-level evidence exists because cell-level rates are structurally
/// weak against the α correction: a constant reweighting of a whole cell
/// scales the group's biased histogram and its α estimate identically and
/// cancels out of the normalized pool. A rate tied to a *specific day*
/// reshapes the within-group mix across days — which is exactly where
/// bursty (MNAR) loss lives — and survives that cancellation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayLossRates {
    /// Local day index (milliseconds since epoch / [`MS_PER_DAY`]).
    pub day: i64,
    /// 24 per-hour loss rates vs the hour's median same-kind day
    /// (`0.0` for hours that pass the significance gates).
    pub rates: Vec<f64>,
}

/// The complete per-cell loss estimate of a log view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossEvidence {
    /// All [`N_LOSS_CELLS`] cells in index order.
    pub cells: Vec<CellLossEvidence>,
    /// Day-localized rates (sorted by day; only days with at least one
    /// flagged hour appear). Interior days only — the first and last day
    /// of the span are routinely partial and never flagged.
    #[serde(default)]
    pub day_rates: Vec<DayLossRates>,
    /// Volume-weighted overall loss rate across the cells.
    pub overall_rate: f64,
}

impl LossEvidence {
    /// The cells with a nonzero estimated loss rate.
    pub fn flagged(&self) -> impl Iterator<Item = &CellLossEvidence> {
        self.cells.iter().filter(|c| c.rate > 0.0)
    }

    /// True when no cell and no day was flagged (clean telemetry).
    pub fn is_zero(&self) -> bool {
        self.cells.iter().all(|c| c.rate == 0.0) && self.day_rates.is_empty()
    }
}

fn median_of_sorted(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn median(xs: &[f64]) -> f64 {
    let mut s = xs.to_vec();
    s.sort_unstable_by(f64::total_cmp);
    median_of_sorted(&s)
}

fn mad(xs: &[f64], med: f64) -> f64 {
    let devs: Vec<f64> = xs.iter().map(|&x| (x - med).abs()).collect();
    median(&devs)
}

/// Estimate the per-cell loss of a view.
///
/// `counts` must tally exactly the view's records (use
/// [`LossCounts::from_view`], or the incrementally maintained equivalent).
/// The estimator is deterministic and single-pass over the view; it never
/// reports a cell rate below [`MIN_CELL_RATE`].
pub fn estimate_cell_loss(view: &LogView<'_>, counts: &LossCounts) -> LossEvidence {
    estimate_cell_loss_par(view, counts, 1)
}

/// Chunked [`estimate_cell_loss`]: the micro-cell scan (the estimator's
/// only full pass over the view) runs as a chunked map whose per-chunk
/// maps merge in chunk order, so each micro-cell's pre-sort sequence is
/// exactly the serial pass's and the evidence is bit-identical for every
/// thread count.
pub fn estimate_cell_loss_par(
    view: &LogView<'_>,
    counts: &LossCounts,
    threads: usize,
) -> LossEvidence {
    let observed = counts.observed_cells();
    let mut expected: [f64; N_LOSS_CELLS] = [0.0; N_LOSS_CELLS];
    for (e, &o) in expected.iter_mut().zip(&observed) {
        *e = o as f64;
    }

    // --- Per-(local day, hour) record times, class-pooled. Shared by the
    // sequence-gap evidence below and, via the top-gap quiet statistic,
    // by the day-rate corroboration gate: burst loss leaves a few big
    // holes, organic slowness leaves evenly thinner traffic.
    struct MicroPart(BTreeMap<(i64, u8), Vec<i64>>);
    impl autosens_exec::Mergeable for MicroPart {
        fn merge(&mut self, other: Self) {
            for (k, mut v) in other.0 {
                self.0.entry(k).or_default().append(&mut v);
            }
        }
    }
    let n = view.len();
    let v = view.borrowed();
    let (part, _) = autosens_exec::map_reduce(
        "loss_micro_cells",
        n,
        autosens_exec::scan_chunk_size_for(n),
        threads,
        |_, range| {
            let mut micro: BTreeMap<(i64, u8), Vec<i64>> = BTreeMap::new();
            for i in range {
                let local = v.time_at(i) + v.tz_offset_at(i);
                let day = local.div_euclid(MS_PER_DAY);
                let hour = local.div_euclid(MS_PER_HOUR).rem_euclid(24) as u8;
                micro.entry((day, hour)).or_default().push(local);
            }
            MicroPart(micro)
        },
    )
    .expect("micro-cell scan does not panic");
    let mut micro = part.map(|p| p.0).unwrap_or_default();
    for ts in micro.values_mut() {
        ts.sort_unstable();
    }
    // Quiet time of each populated micro-cell: the sum of its
    // TOP_QUIET_GAPS largest quiet intervals, edges included (a burst
    // truncating the start or end of the hour is as real as an interior
    // one). Summing the top few gaps — not just the single largest —
    // keeps the statistic sensitive when an hour is hit by several
    // bursts. Unpopulated cells are simply absent — a day-rate candidate
    // with no records has the whole hour quiet.
    let quiet_ms = |day: i64, hour: u8| -> f64 {
        match micro.get(&(day, hour)) {
            None => MS_PER_HOUR as f64,
            Some(ts) => {
                let start = day * MS_PER_DAY + hour as i64 * MS_PER_HOUR;
                let mut gaps: Vec<i64> = Vec::with_capacity(ts.len() + 1);
                gaps.push(ts[0] - start);
                gaps.push(start + MS_PER_HOUR - ts[ts.len() - 1]);
                for w in ts.windows(2) {
                    gaps.push(w[1] - w[0]);
                }
                gaps.sort_unstable_by(|a, b| b.cmp(a));
                gaps.iter().take(TOP_QUIET_GAPS).sum::<i64>() as f64
            }
        }
    };

    // --- Volume evidence: per-cell daily counts vs the median baseline of
    // interior days of the same kind. The first and last local day of the
    // span are excluded (they are routinely partial) so boundary
    // truncation never masquerades as loss.
    let mut day_rate_rows: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
    if let (Some(first), Some(last)) = (
        counts.days.first().map(|d| d.day),
        counts.days.last().map(|d| d.day),
    ) {
        for weekend in [false, true] {
            let days: Vec<i64> = ((first + 1)..last)
                .filter(|&d| is_weekend_day(d) == weekend)
                .collect();
            if days.len() < MIN_DAYS_OF_KIND {
                continue;
            }
            for hour in 0..24u8 {
                for class in 0..N_LOSS_CLASSES {
                    let xs: Vec<f64> = days
                        .iter()
                        .map(|&d| {
                            counts
                                .row(d)
                                .map(|row| row[hour as usize * N_LOSS_CLASSES + class])
                                .unwrap_or(0) as f64
                        })
                        .collect();
                    let med = median(&xs);
                    let exp_vol = med * xs.len() as f64;
                    if exp_vol <= 0.0 {
                        continue;
                    }
                    let obs: f64 = xs.iter().sum();
                    let shortfall = exp_vol - obs;
                    // Noise floor: the larger of the empirical day-to-day
                    // spread (robust, MAD-based — the outage days
                    // themselves cannot inflate it) and the Poisson floor
                    // of the baselined total.
                    let sigma = (MAD_TO_SIGMA * mad(&xs, med) * (xs.len() as f64).sqrt())
                        .max(exp_vol.sqrt());
                    if shortfall > VOL_SIGMA_FACTOR * sigma && shortfall / exp_vol >= MIN_CELL_RATE
                    {
                        // The baseline covers interior days only, while the
                        // cell's observed total spans every day — so the
                        // evidence contributes the estimated *missing*
                        // count, not the interior-day expected volume.
                        let cell = loss_cell_index(hour, weekend, class as u8);
                        expected[cell] = expected[cell].max(observed[cell] as f64 + shortfall);
                    }
                }

                // Day-localized rates, class-pooled: how far each interior
                // day's count for this hour falls below the median day of
                // the same kind. The single-day gate combines the robust
                // day-to-day spread with the Poisson floor of one median
                // day, both at the same significance multiple as the cell
                // gate, plus a stricter minimum rate.
                let xs: Vec<f64> = days
                    .iter()
                    .map(|&d| {
                        counts
                            .row(d)
                            .map(|row| {
                                (0..N_LOSS_CLASSES)
                                    .map(|c| row[hour as usize * N_LOSS_CLASSES + c])
                                    .sum::<u64>()
                            })
                            .unwrap_or(0) as f64
                    })
                    .collect();
                let med = median(&xs);
                if med <= 0.0 {
                    continue;
                }
                let sigma = (MAD_TO_SIGMA * mad(&xs, med)).max(med.sqrt());
                // Contiguity reference: the median same-kind day's quiet
                // time (top-gap sum) at this hour. Sessionful traffic has
                // big inter-session holes on *every* day, so the median
                // absorbs whatever gap scale is organic here.
                let quiets: Vec<f64> = days.iter().map(|&d| quiet_ms(d, hour)).collect();
                let med_quiet = median(&quiets).max(1.0);
                for ((&d, &obs_d), &quiet_d) in days.iter().zip(&xs).zip(&quiets) {
                    let shortfall = med - obs_d;
                    let rate = shortfall / med;
                    if shortfall > VOL_SIGMA_FACTOR * sigma
                        && rate >= MIN_DAY_RATE
                        && quiet_d >= DAY_QUIET_RATIO * med_quiet
                    {
                        day_rate_rows.entry(d).or_insert_with(|| vec![0.0; 24])[hour as usize] =
                            rate;
                    }
                }
            }
        }
    }

    // --- Sequence-gap evidence, class-pooled per (local day, hour)
    // micro-cell. Pooling classes keeps the full arrival density, so a
    // dropped run of ~k records shows as one ~(k+1)-step gap instead of
    // two half-size (undetectable) per-class gaps.
    let mut slot_missing = [0.0f64; N_LOSS_SLOTS];
    let mut slot_flagged_missing = [0.0f64; N_LOSS_SLOTS];
    let mut slot_flags = [0usize; N_LOSS_SLOTS];
    for (&(day, hour), ts) in &micro {
        if ts.len() < MIN_GAP_RECORDS {
            continue;
        }
        // Zero gaps (duplicate or colliding timestamps) carry no loss
        // information and would only depress the step estimate.
        let gaps: Vec<f64> = ts
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64)
            .filter(|&g| g > 0.0)
            .collect();
        if gaps.len() < MIN_GAP_RECORDS - 1 {
            continue;
        }
        let med = median(&gaps);
        if med <= 0.0 {
            continue;
        }
        let slot = hour as usize * 2 + usize::from(is_weekend_day(day));
        if mad(&gaps, med) / med <= REGULAR_MAD_RATIO {
            // Heartbeat-regular arrivals: the step is unambiguous, so
            // every multi-step gap counts its missing beats — this is the
            // branch that sees even uniform thinning.
            for &g in &gaps {
                let steps = (g / med).round();
                if steps >= 2.0 {
                    slot_missing[slot] += steps - 1.0;
                }
            }
        } else {
            // Irregular (Poisson-like) arrivals: only extreme gaps are
            // evidence. Count missing records against the mean unflagged
            // gap (the robust stand-in for the true mean inter-arrival;
            // the median would overcount by ~1/ln 2 on exponential gaps).
            let threshold = GAP_FLAG_FACTOR * med;
            let (mut sum, mut n) = (0.0f64, 0usize);
            for &g in &gaps {
                if g <= threshold {
                    sum += g;
                    n += 1;
                }
            }
            if n == 0 {
                continue;
            }
            let step = sum / n as f64;
            if step <= 0.0 {
                continue;
            }
            for &g in &gaps {
                if g > threshold {
                    let missing = (g / step).round() - 1.0;
                    if missing >= 1.0 {
                        slot_flagged_missing[slot] += missing;
                        slot_flags[slot] += 1;
                    }
                }
            }
        }
    }
    for slot in 0..N_LOSS_SLOTS {
        let mut missing = slot_missing[slot];
        if slot_flags[slot] >= MIN_IRREGULAR_FLAGS {
            missing += slot_flagged_missing[slot];
        }
        if missing <= 0.0 {
            continue;
        }
        let obs_slot: u64 = (0..N_LOSS_CLASSES)
            .map(|c| observed[slot * N_LOSS_CLASSES + c])
            .sum();
        if obs_slot == 0 {
            continue;
        }
        // Allocate slot-level missing records to classes in proportion to
        // their observed share (loss inside a burst is class-blind).
        for class in 0..N_LOSS_CLASSES {
            let cell = slot * N_LOSS_CLASSES + class;
            let alloc = missing * observed[cell] as f64 / obs_slot as f64;
            expected[cell] = expected[cell].max(observed[cell] as f64 + alloc);
        }
    }

    // --- Combine, gating sub-threshold rates to exactly zero.
    let mut cells = Vec::with_capacity(N_LOSS_CELLS);
    let mut total_obs = 0.0f64;
    let mut total_exp = 0.0f64;
    for (cell, &obs_n) in observed.iter().enumerate() {
        let obs = obs_n as f64;
        let mut exp = expected[cell].max(obs);
        let mut rate = if exp > 0.0 {
            (1.0 - obs / exp).max(0.0)
        } else {
            0.0
        };
        if rate < MIN_CELL_RATE {
            rate = 0.0;
            exp = obs;
        }
        total_obs += obs;
        total_exp += exp;
        let slot = cell / N_LOSS_CLASSES;
        cells.push(CellLossEvidence {
            cell,
            hour: (slot / 2) as u8,
            weekend: slot % 2 == 1,
            class_code: (cell % N_LOSS_CLASSES) as u8,
            observed: obs_n,
            expected: exp,
            rate,
        });
    }
    let overall_rate = if total_exp > 0.0 {
        (1.0 - total_obs / total_exp).max(0.0)
    } else {
        0.0
    };
    let day_rates = day_rate_rows
        .into_iter()
        .map(|(day, rates)| DayLossRates { day, rates })
        .collect();
    LossEvidence {
        cells,
        day_rates,
        overall_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::TelemetryLog;
    use crate::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};

    fn rec(t: i64, class: UserClass, user: u64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t),
            action: ActionType::SelectMail,
            latency_ms: 101.5,
            user: UserId(user),
            class,
            tz_offset_ms: 0,
            outcome: Outcome::Success,
        }
    }

    /// 14 days, `per_hour` evenly spaced records per hour, both classes.
    fn steady(per_hour: i64) -> Vec<ActionRecord> {
        let mut records = Vec::new();
        let step = MS_PER_HOUR / per_hour;
        for day in 0..14i64 {
            for hour in 0..24i64 {
                for k in 0..per_hour {
                    let t = day * MS_PER_DAY + hour * MS_PER_HOUR + k * step;
                    let class = if k % 2 == 0 {
                        UserClass::Business
                    } else {
                        UserClass::Consumer
                    };
                    records.push(rec(t, class, (k + hour) as u64));
                }
            }
        }
        records
    }

    fn evidence_of(records: Vec<ActionRecord>) -> LossEvidence {
        let log = TelemetryLog::from_records(records).unwrap();
        let view = crate::query::Slice::all().select(&log);
        let counts = LossCounts::from_view(&view);
        assert_eq!(counts.total(), view.len() as u64);
        estimate_cell_loss(&view, &counts)
    }

    #[test]
    fn cell_index_is_a_bijection() {
        let mut seen = std::collections::HashSet::new();
        for hour in 0..24u8 {
            for weekend in [false, true] {
                for class in 0..N_LOSS_CLASSES as u8 {
                    let cell = loss_cell_index(hour, weekend, class);
                    assert!(cell < N_LOSS_CELLS);
                    assert!(seen.insert(cell));
                    let label = loss_cell_label(cell);
                    assert!(label
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
                }
            }
        }
        assert_eq!(seen.len(), N_LOSS_CELLS);
        assert_eq!(
            loss_cell_label(loss_cell_index(9, false, 0)),
            "h09_wd_business"
        );
        assert_eq!(
            loss_cell_label(loss_cell_index(23, true, 1)),
            "h23_we_consumer"
        );
    }

    #[test]
    fn counts_merge_matches_batch() {
        let records = steady(10);
        let log = TelemetryLog::from_records(records).unwrap();
        let view = crate::query::Slice::all().select(&log);
        let whole = LossCounts::from_view(&view);
        // Split at arbitrary points; merged partials must equal the batch.
        for cut in [1usize, 57, 1234, view.len() - 1] {
            let mut a = LossCounts::new();
            let mut b = LossCounts::new();
            for i in 0..view.len() {
                let target = if i < cut { &mut a } else { &mut b };
                target.record(
                    SimTime(view.time_at(i)),
                    view.tz_offset_at(i),
                    view.class_at(i),
                );
            }
            let mut merged = LossCounts::new();
            merged.merge(&b);
            merged.merge(&a);
            assert_eq!(merged, whole, "cut at {cut}");
        }
    }

    #[test]
    fn clean_steady_log_has_zero_evidence() {
        let ev = evidence_of(steady(10));
        assert!(
            ev.is_zero(),
            "flagged: {:?}",
            ev.flagged().collect::<Vec<_>>()
        );
        assert_eq!(ev.overall_rate, 0.0);
        assert_eq!(ev.cells.len(), N_LOSS_CELLS);
    }

    #[test]
    fn day_localized_outage_is_flagged_in_the_right_cells() {
        // Drop two full weekdays (local days 3 = Monday, 4 = Tuesday)
        // between 08:00 and 20:00: volume evidence territory.
        let records: Vec<ActionRecord> = steady(60)
            .into_iter()
            .filter(|r| {
                let day = r.time.millis().div_euclid(MS_PER_DAY);
                let hour = r.time.millis().div_euclid(MS_PER_HOUR).rem_euclid(24);
                !((3..=4).contains(&day) && (8..20).contains(&hour))
            })
            .collect();
        let ev = evidence_of(records);
        assert!(!ev.is_zero());
        for c in &ev.cells {
            let in_outage = !c.weekend && (8..20).contains(&c.hour);
            if in_outage {
                // 2 of 10 weekdays dropped -> rate ~0.20.
                assert!(
                    (c.rate - 0.20).abs() < 0.05,
                    "cell {} rate {}",
                    c.label(),
                    c.rate
                );
            } else {
                assert_eq!(c.rate, 0.0, "cell {} falsely flagged", c.label());
            }
        }
        assert!(ev.overall_rate > 0.05 && ev.overall_rate < 0.20);
    }

    #[test]
    fn uniform_thinning_of_regular_telemetry_is_recovered_from_gaps() {
        // Drop every 5th record (20% deterministic thinning) of a
        // heartbeat-regular log: the regular-branch gap estimator counts
        // the missing beats even though daily volume drops uniformly.
        let records: Vec<ActionRecord> = steady(30)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % 5 != 0)
            .map(|(_, r)| r)
            .collect();
        let ev = evidence_of(records);
        assert!(
            (ev.overall_rate - 0.20).abs() < 0.04,
            "overall {}",
            ev.overall_rate
        );
    }

    #[test]
    fn bursty_runs_in_irregular_telemetry_are_flagged() {
        // Pseudo-irregular arrivals (deterministic low-discrepancy jitter),
        // then remove two long runs inside hour 9 of two weekdays. The
        // irregular-branch gap estimator must flag the slot.
        let mut records = Vec::new();
        let mut u = 0.5f64;
        for day in 0..10i64 {
            for hour in 0..24i64 {
                let mut t = day * MS_PER_DAY + hour * MS_PER_HOUR;
                let end = t + MS_PER_HOUR;
                let mut k = 0u64;
                while t < end {
                    // Golden-ratio jitter: gaps spread 10s..110s, far from
                    // regular (MAD/median ~ 0.4).
                    u = (u + 0.618_033_988_749_895) % 1.0;
                    t += 10_000 + (u * 100_000.0) as i64;
                    if t < end {
                        let class = if k % 2 == 0 {
                            UserClass::Business
                        } else {
                            UserClass::Consumer
                        };
                        records.push(rec(t, class, k));
                        k += 1;
                    }
                }
            }
        }
        let clean_ev = evidence_of(records.clone());
        assert!(clean_ev.is_zero(), "clean irregular log must not flag");

        // Carve out two 18-minute runs (~60% of hour 9) on local days 3
        // and 4 — each run is ~18x the median gap, beyond the flag factor.
        let in_burst = |r: &ActionRecord| {
            let day = r.time.millis().div_euclid(MS_PER_DAY);
            let ms_in_day = r.time.millis().rem_euclid(MS_PER_DAY);
            let in_hour9 = (9 * MS_PER_HOUR..10 * MS_PER_HOUR).contains(&ms_in_day);
            let offset = ms_in_day - 9 * MS_PER_HOUR;
            (3..=4).contains(&day)
                && in_hour9
                && ((0..=(MS_PER_HOUR * 3 / 10)).contains(&offset)
                    || ((MS_PER_HOUR / 2)..=(MS_PER_HOUR * 8 / 10)).contains(&offset))
        };
        let damaged: Vec<ActionRecord> = records.into_iter().filter(|r| !in_burst(r)).collect();
        let ev = evidence_of(damaged);
        let flagged: Vec<&CellLossEvidence> = ev.flagged().collect();
        assert!(!flagged.is_empty(), "bursty loss not flagged");
        assert!(
            flagged.iter().all(|c| c.hour == 9 && !c.weekend),
            "wrong cells: {flagged:?}"
        );
        // ~40% of 2 of 8 interior weekdays -> ~10% of the slot.
        for c in &flagged {
            assert!(c.rate > 0.05 && c.rate < 0.25, "rate {}", c.rate);
        }
    }

    #[test]
    fn day_rates_need_contiguous_quiet_time() {
        // Remove the same 50% of one weekday hour (day 5, hour 10) two
        // ways. Contiguous (a 30-minute run): looks like a burst outage,
        // so the day gets a localized rate. Diffuse (every other record):
        // looks like an organically slow day — same volume shortfall,
        // same significance, but no quiet interval — and must NOT be
        // flagged, because reweighting real activity dips would cancel
        // the very signal the pipeline measures.
        let hit = |r: &ActionRecord| {
            r.time.millis().div_euclid(MS_PER_DAY) == 5
                && r.time.millis().div_euclid(MS_PER_HOUR).rem_euclid(24) == 10
        };
        let contiguous: Vec<ActionRecord> = steady(60)
            .into_iter()
            .filter(|r| !(hit(r) && r.time.millis().rem_euclid(MS_PER_HOUR) < MS_PER_HOUR / 2))
            .collect();
        let ev = evidence_of(contiguous);
        assert_eq!(ev.day_rates.len(), 1, "day rates: {:?}", ev.day_rates);
        assert_eq!(ev.day_rates[0].day, 5);
        assert!(
            (ev.day_rates[0].rates[10] - 0.5).abs() < 0.05,
            "rate {:?}",
            ev.day_rates[0].rates[10]
        );

        let mut parity = 0u64;
        let diffuse: Vec<ActionRecord> = steady(60)
            .into_iter()
            .filter(|r| {
                if hit(r) {
                    parity += 1;
                    parity % 2 == 0
                } else {
                    true
                }
            })
            .collect();
        let ev = evidence_of(diffuse);
        assert!(
            ev.day_rates.is_empty(),
            "diffusely slow day misread as burst loss: {:?}",
            ev.day_rates
        );
    }

    #[test]
    fn evidence_serializes() {
        let ev = evidence_of(steady(10));
        let json = serde_json::to_string(&ev).unwrap();
        let back: LossEvidence = serde_json::from_str(&json).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn empty_view_yields_zero_evidence() {
        let log = TelemetryLog::new();
        let view = crate::query::Slice::all().select(&log);
        let ev = estimate_cell_loss(&view, &LossCounts::from_view(&view));
        assert!(ev.is_zero());
        assert_eq!(ev.overall_rate, 0.0);
    }
}
