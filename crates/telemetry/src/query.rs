//! Composable record filters for the paper's analysis slices.
//!
//! The evaluation slices data by action type (§3.2), user class (§3.3),
//! per-user latency quartile (§3.4), local-time day period (§3.6), and
//! calendar month (§3.7). A [`Slice`] expresses any conjunction of these,
//! and [`Slice::apply`] materializes the matching sub-log.

use std::collections::HashSet;

use crate::log::{ColumnStore, LogView, TelemetryLog};
use crate::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use crate::time::{DayPeriod, Month, SimTime};

/// A conjunction of record predicates. Unset fields match everything.
///
/// ```
/// use autosens_telemetry::query::Slice;
/// use autosens_telemetry::record::{ActionType, UserClass};
/// use autosens_telemetry::time::Month;
///
/// // The slice behind the paper's Figure 4: business SelectMail in February.
/// let slice = Slice::all()
///     .action(ActionType::SelectMail)
///     .class(UserClass::Business)
///     .month(Month::Feb)
///     .successes();
/// # let _ = slice;
/// ```
#[derive(Debug, Clone, Default)]
pub struct Slice {
    action: Option<ActionType>,
    class: Option<UserClass>,
    period: Option<DayPeriod>,
    month: Option<Month>,
    users: Option<HashSet<UserId>>,
    tz_offset_ms: Option<i64>,
    successes_only: bool,
}

impl Slice {
    /// The match-everything slice.
    pub fn all() -> Slice {
        Slice::default()
    }

    /// Restrict to one action type.
    pub fn action(mut self, action: ActionType) -> Slice {
        self.action = Some(action);
        self
    }

    /// Restrict to one user class.
    pub fn class(mut self, class: UserClass) -> Slice {
        self.class = Some(class);
        self
    }

    /// Restrict to one local-time day period.
    pub fn period(mut self, period: DayPeriod) -> Slice {
        self.period = Some(period);
        self
    }

    /// Restrict to one local calendar month.
    pub fn month(mut self, month: Month) -> Slice {
        self.month = Some(month);
        self
    }

    /// Restrict to a set of users (e.g. one median-latency quartile).
    pub fn users(mut self, users: HashSet<UserId>) -> Slice {
        self.users = Some(users);
        self
    }

    /// Restrict to users in one timezone region (offset in whole hours) —
    /// the equivalent of the paper's per-country slices. Analyses that use
    /// the α-correction should always run on a single region so the
    /// confounder slots share a clock.
    pub fn tz_offset_hours(mut self, hours: i64) -> Slice {
        self.tz_offset_ms = Some(hours * crate::time::MS_PER_HOUR);
        self
    }

    /// Restrict to successful actions (the paper's default).
    pub fn successes(mut self) -> Slice {
        self.successes_only = true;
        self
    }

    /// Whether a record matches every set predicate.
    pub fn matches(&self, r: &ActionRecord) -> bool {
        if let Some(a) = self.action {
            if r.action != a {
                return false;
            }
        }
        if let Some(c) = self.class {
            if r.class != c {
                return false;
            }
        }
        if let Some(p) = self.period {
            if r.day_period() != p {
                return false;
            }
        }
        if let Some(m) = self.month {
            if r.month() != m {
                return false;
            }
        }
        if let Some(users) = &self.users {
            if !users.contains(&r.user) {
                return false;
            }
        }
        if let Some(tz) = self.tz_offset_ms {
            if r.tz_offset_ms != tz {
                return false;
            }
        }
        if self.successes_only && r.outcome != Outcome::Success {
            return false;
        }
        true
    }

    /// Column-wise [`Slice::matches`] against storage row `i` — the hot
    /// form: no record is materialized, and each unset predicate touches
    /// zero columns.
    pub fn matches_row(&self, cols: &ColumnStore, i: usize) -> bool {
        if let Some(a) = self.action {
            if cols.actions()[i] != a.code() {
                return false;
            }
        }
        if let Some(c) = self.class {
            if cols.classes()[i] != c.code() {
                return false;
            }
        }
        if let Some(p) = self.period {
            if SimTime(cols.times()[i]).day_period_local(cols.tz_offsets()[i]) != p {
                return false;
            }
        }
        if let Some(m) = self.month {
            if SimTime(cols.times()[i]).month_local(cols.tz_offsets()[i]) != m {
                return false;
            }
        }
        if let Some(users) = &self.users {
            if !users.contains(&UserId(cols.users()[i])) {
                return false;
            }
        }
        if let Some(tz) = self.tz_offset_ms {
            if cols.tz_offsets()[i] != tz {
                return false;
            }
        }
        if self.successes_only && cols.outcomes()[i] != Outcome::Success.code() {
            return false;
        }
        true
    }

    /// [`Slice::matches_row`] in *view* coordinates: tests view row `i`
    /// (which may sit behind a selection vector) without materializing a
    /// record. This is the form the zero-copy ingest path uses — mapped
    /// containers produce a [`LogView`] with no [`ColumnStore`] behind it.
    pub fn matches_view(&self, view: &LogView<'_>, i: usize) -> bool {
        if let Some(a) = self.action {
            if view.action_at(i) != a.code() {
                return false;
            }
        }
        if let Some(c) = self.class {
            if view.class_at(i) != c.code() {
                return false;
            }
        }
        if let Some(p) = self.period {
            if SimTime(view.time_at(i)).day_period_local(view.tz_offset_at(i)) != p {
                return false;
            }
        }
        if let Some(m) = self.month {
            if SimTime(view.time_at(i)).month_local(view.tz_offset_at(i)) != m {
                return false;
            }
        }
        if let Some(users) = &self.users {
            if !users.contains(&UserId(view.user_at(i))) {
                return false;
            }
        }
        if let Some(tz) = self.tz_offset_ms {
            if view.tz_offset_at(i) != tz {
                return false;
            }
        }
        if self.successes_only && view.outcome_at(i) != Outcome::Success.code() {
            return false;
        }
        true
    }

    /// Whether every predicate is unset (the slice matches all records).
    fn is_unrestricted(&self) -> bool {
        self.action.is_none()
            && self.class.is_none()
            && self.period.is_none()
            && self.month.is_none()
            && self.users.is_none()
            && self.tz_offset_ms.is_none()
            && !self.successes_only
    }

    /// The zero-copy view of the matching rows, in log order: builds a
    /// selection vector of row indices (or no vector at all for the
    /// match-everything slice) and copies no rows. This is the currency
    /// the analysis pipeline computes over; [`Slice::apply`] is the
    /// materializing escape hatch.
    pub fn select<'a>(&self, log: &'a TelemetryLog) -> LogView<'a> {
        let view = log.view();
        if self.is_unrestricted() {
            return view;
        }
        let cols = log.columns();
        let sel: Vec<u32> = (0..cols.len() as u32)
            .filter(|&i| self.matches_row(cols, i as usize))
            .collect();
        view.with_selection(sel)
    }

    /// Chunked [`Slice::select`]: build the selection vector as a
    /// data-parallel job and concatenate the per-chunk indices in chunk
    /// order (chunk boundaries depend only on the record count, so the
    /// view is identical to `select` for every thread count). Returns the
    /// view plus the scheduler's [`autosens_exec::ExecReport`] so callers
    /// can record per-worker spans.
    pub fn select_par<'a>(
        &self,
        log: &'a TelemetryLog,
        threads: usize,
    ) -> Result<(LogView<'a>, autosens_exec::ExecReport), autosens_exec::ExecError> {
        self.select_par_view(&log.view(), threads)
    }

    /// The zero-copy sub-view of `view`'s rows matching every predicate,
    /// in view order. Selection indices are *storage* indices (mapped
    /// through any existing selection), so the result composes with
    /// further narrowing exactly like [`Slice::select`]'s output.
    pub fn select_view<'a>(&self, view: &LogView<'a>) -> LogView<'a> {
        if self.is_unrestricted() {
            return view.clone();
        }
        let sel: Vec<u32> = (0..view.len())
            .filter(|&i| self.matches_view(view, i))
            .map(|i| view.row(i) as u32)
            .collect();
        view.with_selection(sel)
    }

    /// Chunked [`Slice::select_view`], and the engine behind
    /// [`Slice::select_par`]: chunk boundaries depend only on the view
    /// length and per-chunk indices concatenate in chunk order, so the
    /// result is identical for every thread count — and, on a full view,
    /// identical to the serial `select`.
    pub fn select_par_view<'a>(
        &self,
        view: &LogView<'a>,
        threads: usize,
    ) -> Result<(LogView<'a>, autosens_exec::ExecReport), autosens_exec::ExecError> {
        let n = view.len();
        let v = view.borrowed();
        let (parts, report) = autosens_exec::run_chunks(
            "slice_filter",
            n,
            autosens_exec::scan_chunk_size_for(n),
            threads,
            |_, range| -> Vec<u32> {
                range
                    .filter(|&i| self.matches_view(&v, i))
                    .map(|i| v.row(i) as u32)
                    .collect()
            },
        )?;
        Ok((view.with_selection(parts.concat()), report))
    }

    /// Materialize the matching sub-log (order preserved, so a sorted input
    /// yields a sorted output). Copies every matching row — analyses should
    /// prefer [`Slice::select`].
    pub fn apply(&self, log: &TelemetryLog) -> TelemetryLog {
        self.select(log).materialize()
    }

    /// Iterate the matching records (materialized per row), in log order,
    /// without building a sub-log. Read-only consumers (quality audits,
    /// single-pass statistics) use this; index-aware consumers should use
    /// [`Slice::select`].
    pub fn iter<'a>(&'a self, log: &'a TelemetryLog) -> impl Iterator<Item = ActionRecord> + 'a {
        log.iter().filter(|r| self.matches(r))
    }

    /// Chunked [`Slice::apply`]: [`Slice::select_par`] followed by one
    /// materialize. The result is identical to `apply` for every thread
    /// count.
    pub fn apply_par(
        &self,
        log: &TelemetryLog,
        threads: usize,
    ) -> Result<(TelemetryLog, autosens_exec::ExecReport), autosens_exec::ExecError> {
        let (view, report) = self.select_par(log, threads)?;
        Ok((view.materialize(), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn rec(
        t_ms: i64,
        action: ActionType,
        class: UserClass,
        user: u64,
        outcome: Outcome,
    ) -> ActionRecord {
        ActionRecord {
            time: SimTime(t_ms),
            action,
            latency_ms: 100.0,
            user: UserId(user),
            class,
            tz_offset_ms: 0,
            outcome,
        }
    }

    fn sample_log() -> TelemetryLog {
        use crate::time::{MS_PER_DAY, MS_PER_HOUR};
        TelemetryLog::from_records(vec![
            // Jan, 10:00 (Morning), business SelectMail success.
            rec(
                10 * MS_PER_HOUR,
                ActionType::SelectMail,
                UserClass::Business,
                1,
                Outcome::Success,
            ),
            // Jan, 03:00 (Night), consumer Search success.
            rec(
                MS_PER_DAY + 3 * MS_PER_HOUR,
                ActionType::Search,
                UserClass::Consumer,
                2,
                Outcome::Success,
            ),
            // Feb (day 35), 15:00 (Afternoon), business SelectMail error.
            rec(
                35 * MS_PER_DAY + 15 * MS_PER_HOUR,
                ActionType::SelectMail,
                UserClass::Business,
                1,
                Outcome::Error,
            ),
            // Feb, 21:00 (Evening), consumer SelectMail success.
            rec(
                40 * MS_PER_DAY + 21 * MS_PER_HOUR,
                ActionType::SelectMail,
                UserClass::Consumer,
                3,
                Outcome::Success,
            ),
        ])
        .unwrap()
    }

    #[test]
    fn all_matches_everything() {
        let log = sample_log();
        assert_eq!(Slice::all().apply(&log).len(), 4);
    }

    #[test]
    fn filter_by_action() {
        let log = sample_log();
        let s = Slice::all().action(ActionType::SelectMail).apply(&log);
        assert_eq!(s.len(), 3);
        let s = Slice::all().action(ActionType::ComposeSend).apply(&log);
        assert!(s.is_empty());
    }

    #[test]
    fn filter_by_class_and_success() {
        let log = sample_log();
        let s = Slice::all().class(UserClass::Business).apply(&log);
        assert_eq!(s.len(), 2);
        let s = Slice::all()
            .class(UserClass::Business)
            .successes()
            .apply(&log);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn filter_by_period_and_month() {
        let log = sample_log();
        let s = Slice::all().period(DayPeriod::Night2to8).apply(&log);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0).action, ActionType::Search);
        let s = Slice::all().month(Month::Feb).apply(&log);
        assert_eq!(s.len(), 2);
        let s = Slice::all()
            .month(Month::Feb)
            .period(DayPeriod::Evening20to2)
            .apply(&log);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn filter_by_user_set() {
        let log = sample_log();
        let mut users = HashSet::new();
        users.insert(UserId(1));
        users.insert(UserId(3));
        let s = Slice::all().users(users).apply(&log);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn conjunction_of_everything() {
        let log = sample_log();
        let mut users = HashSet::new();
        users.insert(UserId(1));
        let s = Slice::all()
            .action(ActionType::SelectMail)
            .class(UserClass::Business)
            .month(Month::Jan)
            .period(DayPeriod::Morning8to14)
            .users(users)
            .successes()
            .apply(&log);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0).time.millis(), 10 * crate::time::MS_PER_HOUR);
    }

    #[test]
    fn filter_by_timezone_region() {
        use crate::time::MS_PER_HOUR;
        let mut east = rec(
            0,
            ActionType::SelectMail,
            UserClass::Business,
            1,
            Outcome::Success,
        );
        east.tz_offset_ms = -5 * MS_PER_HOUR;
        let west = rec(
            1000,
            ActionType::SelectMail,
            UserClass::Business,
            2,
            Outcome::Success,
        );
        let log = TelemetryLog::from_records(vec![east, west]).unwrap();
        let s = Slice::all().tz_offset_hours(-5).apply(&log);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0).user.0, 1);
        let s = Slice::all().tz_offset_hours(0).apply(&log);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0).user.0, 2);
        assert!(Slice::all().tz_offset_hours(3).apply(&log).is_empty());
    }

    #[test]
    fn apply_par_matches_apply_for_any_thread_count() {
        let log = sample_log();
        let slice = Slice::all().action(ActionType::SelectMail).successes();
        let serial = slice.apply(&log);
        for threads in [1, 2, 4, 8] {
            let (par, report) = slice.apply_par(&log, threads).unwrap();
            assert_eq!(par.to_records(), serial.to_records(), "threads={threads}");
            assert_eq!(report.n_items, log.len());
        }
    }

    #[test]
    fn iter_matches_apply_without_copying() {
        let log = sample_log();
        let slice = Slice::all().action(ActionType::SelectMail).successes();
        let borrowed: Vec<ActionRecord> = slice.iter(&log).collect();
        assert_eq!(borrowed, slice.apply(&log).to_records());
        assert_eq!(Slice::all().iter(&log).count(), log.len());
    }

    #[test]
    fn select_view_matches_apply_and_iter() {
        let log = sample_log();
        let slices = [
            Slice::all(),
            Slice::all().action(ActionType::SelectMail).successes(),
            Slice::all().class(UserClass::Consumer),
            Slice::all()
                .month(Month::Feb)
                .period(DayPeriod::Evening20to2),
        ];
        for slice in &slices {
            let view = slice.select(&log);
            let via_iter: Vec<ActionRecord> = slice.iter(&log).collect();
            let via_view: Vec<ActionRecord> = view.iter().collect();
            assert_eq!(via_view, via_iter);
            assert_eq!(
                view.materialize().to_records(),
                slice.apply(&log).to_records()
            );
            for threads in [1, 2, 4, 8] {
                let (par, report) = slice.select_par(&log, threads).unwrap();
                let via_par: Vec<ActionRecord> = par.iter().collect();
                assert_eq!(via_par, via_iter, "threads={threads}");
                assert_eq!(report.n_items, log.len());
            }
        }
    }

    #[test]
    fn select_view_composes_with_existing_selection() {
        let log = sample_log();
        let full = log.view();
        let slice = Slice::all().action(ActionType::SelectMail);
        // Narrow a pre-selected view; indices stay in storage coordinates.
        let pre = full.with_selection(vec![0, 2, 3]);
        let expect: Vec<ActionRecord> = pre.iter().filter(|r| slice.matches(r)).collect();
        let narrowed = slice.select_view(&pre);
        assert_eq!(narrowed.iter().collect::<Vec<_>>(), expect);
        assert_eq!(narrowed.row(0), 0);
        for threads in [1, 4] {
            let (par, _) = slice.select_par_view(&pre, threads).unwrap();
            assert_eq!(par.iter().collect::<Vec<_>>(), expect, "threads={threads}");
        }
        // Unrestricted slice returns the view unchanged.
        assert_eq!(Slice::all().select_view(&pre).len(), pre.len());
    }

    #[test]
    fn apply_preserves_order_and_sortedness() {
        let log = sample_log();
        let s = Slice::all().action(ActionType::SelectMail).apply(&log);
        assert!(s.is_sorted());
        let times: Vec<i64> = s.iter().map(|r| r.time.millis()).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }
}
