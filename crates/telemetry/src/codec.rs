//! CSV and JSONL import/export for telemetry logs.
//!
//! These codecs are the bring-your-own-data surface of the library: a
//! downstream operator exports their web-access logs into either format and
//! feeds them to the analysis CLI. Parsing is strict — a malformed row is an
//! error carrying its line number, not a silent skip — with an explicit
//! lenient mode that collects per-row errors instead of failing fast.

use std::io::{BufRead, BufReader, Read, Write};

use crate::error::TelemetryError;
use crate::log::TelemetryLog;
use crate::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use crate::time::SimTime;

/// The CSV header written and expected by this codec.
pub const CSV_HEADER: &str = "time_ms,action,latency_ms,user,class,tz_offset_ms,outcome";

/// Write a log as CSV (with header).
pub fn write_csv<W: Write>(log: &TelemetryLog, out: &mut W) -> Result<(), TelemetryError> {
    writeln!(out, "{CSV_HEADER}")?;
    for r in log.iter() {
        writeln!(
            out,
            "{},{},{},{},{},{},{}",
            r.time.millis(),
            r.action.name(),
            r.latency_ms,
            r.user.0,
            r.class.name(),
            r.tz_offset_ms,
            r.outcome.name()
        )?;
    }
    Ok(())
}

/// Read a CSV log written by [`write_csv`]. Fails on the first malformed row.
pub fn read_csv<R: Read>(input: R) -> Result<TelemetryLog, TelemetryError> {
    let (log, errors) = read_csv_inner(input, true)?;
    debug_assert!(errors.is_empty(), "strict mode fails fast");
    Ok(log)
}

/// Read a CSV log, skipping malformed rows and returning them as errors
/// alongside the successfully parsed log.
pub fn read_csv_lenient<R: Read>(
    input: R,
) -> Result<(TelemetryLog, Vec<TelemetryError>), TelemetryError> {
    read_csv_inner(input, false)
}

fn read_csv_inner<R: Read>(
    input: R,
    strict: bool,
) -> Result<(TelemetryLog, Vec<TelemetryError>), TelemetryError> {
    let reader = BufReader::new(input);
    let mut log = TelemetryLog::new();
    let mut errors = Vec::new();
    let mut lines = reader.lines().enumerate();

    // Header.
    match lines.next() {
        Some((_, Ok(h))) if h.trim() == CSV_HEADER => {}
        Some((_, Ok(h))) => {
            return Err(TelemetryError::Malformed {
                line: 1,
                reason: format!("unexpected header: {h:?} (expected {CSV_HEADER:?})"),
            })
        }
        Some((_, Err(e))) => return Err(e.into()),
        None => {
            return Err(TelemetryError::Malformed {
                line: 1,
                reason: "empty input (missing header)".into(),
            })
        }
    }

    for (idx, line) in lines {
        let line = line?;
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        match parse_csv_row(&line, lineno).and_then(|r| {
            r.validate()?;
            Ok(r)
        }) {
            Ok(record) => {
                // Already validated; push cannot fail.
                log.push(record).expect("record validated above");
            }
            Err(e) => {
                if strict {
                    return Err(e);
                }
                errors.push(e);
            }
        }
    }
    log.ensure_sorted();
    Ok((log, errors))
}

fn parse_csv_row(line: &str, lineno: usize) -> Result<ActionRecord, TelemetryError> {
    let malformed = |reason: String| TelemetryError::Malformed {
        line: lineno,
        reason,
    };
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 7 {
        return Err(malformed(format!(
            "expected 7 fields, got {}",
            fields.len()
        )));
    }
    let time_ms: i64 = fields[0]
        .trim()
        .parse()
        .map_err(|_| malformed(format!("bad time_ms: {:?}", fields[0])))?;
    let action = ActionType::parse(fields[1].trim())
        .ok_or_else(|| malformed(format!("bad action: {:?}", fields[1])))?;
    let latency_ms: f64 = fields[2]
        .trim()
        .parse()
        .map_err(|_| malformed(format!("bad latency_ms: {:?}", fields[2])))?;
    let user: u64 = fields[3]
        .trim()
        .parse()
        .map_err(|_| malformed(format!("bad user: {:?}", fields[3])))?;
    let class = UserClass::parse(fields[4].trim())
        .ok_or_else(|| malformed(format!("bad class: {:?}", fields[4])))?;
    let tz_offset_ms: i64 = fields[5]
        .trim()
        .parse()
        .map_err(|_| malformed(format!("bad tz_offset_ms: {:?}", fields[5])))?;
    let outcome = Outcome::parse(fields[6].trim())
        .ok_or_else(|| malformed(format!("bad outcome: {:?}", fields[6])))?;
    Ok(ActionRecord {
        time: SimTime(time_ms),
        action,
        latency_ms,
        user: UserId(user),
        class,
        tz_offset_ms,
        outcome,
    })
}

/// Write a log as JSON Lines (one serde-serialized record per line).
pub fn write_jsonl<W: Write>(log: &TelemetryLog, out: &mut W) -> Result<(), TelemetryError> {
    for r in log.iter() {
        let line = serde_json::to_string(r)
            .map_err(|e| TelemetryError::InvalidRecord(format!("serialization failed: {e}")))?;
        writeln!(out, "{line}")?;
    }
    Ok(())
}

/// Read a JSONL log. Fails on the first malformed line.
pub fn read_jsonl<R: Read>(input: R) -> Result<TelemetryLog, TelemetryError> {
    let reader = BufReader::new(input);
    let mut log = TelemetryLog::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record: ActionRecord =
            serde_json::from_str(&line).map_err(|e| TelemetryError::Malformed {
                line: idx + 1,
                reason: e.to_string(),
            })?;
        record.validate()?;
        log.push(record).expect("record validated above");
    }
    log.ensure_sorted();
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ms: i64, latency: f64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t_ms),
            action: ActionType::Search,
            latency_ms: latency,
            user: UserId(42),
            class: UserClass::Consumer,
            tz_offset_ms: -18_000_000,
            outcome: Outcome::Success,
        }
    }

    fn sample_log() -> TelemetryLog {
        TelemetryLog::from_records(vec![rec(1000, 150.5), rec(2000, 300.0)]).unwrap()
    }

    #[test]
    fn csv_roundtrip() {
        let log = sample_log();
        let mut buf = Vec::new();
        write_csv(&log, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.records(), log.records());
    }

    #[test]
    fn csv_rejects_bad_header() {
        let data = "wrong,header\n1,SelectMail,1.0,1,Business,0,Success\n";
        let err = read_csv(data.as_bytes()).unwrap_err();
        assert!(matches!(err, TelemetryError::Malformed { line: 1, .. }));
        assert!(read_csv("".as_bytes()).is_err());
    }

    #[test]
    fn csv_rejects_malformed_rows_with_line_numbers() {
        let data = format!("{CSV_HEADER}\n1000,SelectMail,nope,1,Business,0,Success\n");
        let err = read_csv(data.as_bytes()).unwrap_err();
        match err {
            TelemetryError::Malformed { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("latency"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn csv_rejects_wrong_field_count_and_bad_enums() {
        let rows = [
            "1000,SelectMail,1.0,1,Business,0",            // 6 fields
            "1000,Click,1.0,1,Business,0,Success",         // bad action
            "1000,SelectMail,1.0,1,Premium,0,Success",     // bad class
            "1000,SelectMail,1.0,1,Business,0,Maybe",      // bad outcome
            "x,SelectMail,1.0,1,Business,0,Success",       // bad time
            "1000,SelectMail,1.0,u1,Business,0,Success",   // bad user
            "1000,SelectMail,1.0,1,Business,zero,Success", // bad tz
        ];
        for row in rows {
            let data = format!("{CSV_HEADER}\n{row}\n");
            assert!(read_csv(data.as_bytes()).is_err(), "row should fail: {row}");
        }
    }

    #[test]
    fn csv_rejects_semantically_invalid_records() {
        // Parses fine but fails validation (negative latency).
        let data = format!("{CSV_HEADER}\n1000,SelectMail,-5.0,1,Business,0,Success\n");
        assert!(matches!(
            read_csv(data.as_bytes()),
            Err(TelemetryError::InvalidRecord(_))
        ));
        // NaN latency parses as f64 but must be rejected.
        let data = format!("{CSV_HEADER}\n1000,SelectMail,NaN,1,Business,0,Success\n");
        assert!(read_csv(data.as_bytes()).is_err());
    }

    #[test]
    fn lenient_mode_collects_errors_and_keeps_good_rows() {
        let data = format!(
            "{CSV_HEADER}\n\
             1000,SelectMail,100.0,1,Business,0,Success\n\
             bad row\n\
             2000,Search,200.0,2,Consumer,0,Success\n\
             3000,SelectMail,-1.0,3,Business,0,Success\n"
        );
        let (log, errors) = read_csv_lenient(data.as_bytes()).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(errors.len(), 2);
    }

    #[test]
    fn csv_skips_blank_lines() {
        let data = format!("{CSV_HEADER}\n\n1000,SelectMail,100.0,1,Business,0,Success\n\n");
        let log = read_csv(data.as_bytes()).unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn csv_sorts_unsorted_input() {
        let data = format!(
            "{CSV_HEADER}\n\
             2000,Search,200.0,2,Consumer,0,Success\n\
             1000,SelectMail,100.0,1,Business,0,Success\n"
        );
        let log = read_csv(data.as_bytes()).unwrap();
        assert!(log.is_sorted());
        assert_eq!(log.records()[0].time.millis(), 1000);
    }

    #[test]
    fn jsonl_roundtrip() {
        let log = sample_log();
        let mut buf = Vec::new();
        write_jsonl(&log, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.records(), log.records());
    }

    #[test]
    fn jsonl_rejects_malformed_lines() {
        let data = "{\"not\": \"a record\"}\n";
        let err = read_jsonl(data.as_bytes()).unwrap_err();
        assert!(matches!(err, TelemetryError::Malformed { line: 1, .. }));
        let data = "not json at all\n";
        assert!(read_jsonl(data.as_bytes()).is_err());
    }

    #[test]
    fn jsonl_validates_semantics() {
        let mut bad = rec(0, 1.0);
        bad.latency_ms = 1.0;
        let mut buf = Vec::new();
        write_jsonl(&TelemetryLog::from_records(vec![bad]).unwrap(), &mut buf).unwrap();
        // Corrupt the latency to a negative value in the serialized form.
        let text = String::from_utf8(buf).unwrap().replace("1.0", "-1.0");
        assert!(read_jsonl(text.as_bytes()).is_err());
    }

    #[test]
    fn jsonl_empty_input_is_empty_log() {
        let log = read_jsonl("".as_bytes()).unwrap();
        assert!(log.is_empty());
    }
}
