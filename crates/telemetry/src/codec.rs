//! CSV and JSONL import/export for telemetry logs.
//!
//! These codecs are the bring-your-own-data surface of the library: a
//! downstream operator exports their web-access logs into either format and
//! feeds them to the analysis CLI. Parsing is strict — a malformed row is an
//! error carrying its line number, not a silent skip — with an explicit
//! lenient mode that collects per-row errors instead of failing fast.

use std::io::{BufRead, BufReader, Read, Write};

use crate::error::TelemetryError;
use crate::log::TelemetryLog;
use crate::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use crate::time::SimTime;

/// The CSV header written and expected by this codec.
pub const CSV_HEADER: &str = "time_ms,action,latency_ms,user,class,tz_offset_ms,outcome";

/// Write a log as CSV (with header).
pub fn write_csv<W: Write>(log: &TelemetryLog, out: &mut W) -> Result<(), TelemetryError> {
    writeln!(out, "{CSV_HEADER}")?;
    for r in log.iter() {
        writeln!(
            out,
            "{},{},{},{},{},{},{}",
            r.time.millis(),
            r.action.name(),
            r.latency_ms,
            r.user.0,
            r.class.name(),
            r.tz_offset_ms,
            r.outcome.name()
        )?;
    }
    Ok(())
}

/// Default cap on errors retained by the lenient readers. A pathological
/// input (e.g. a multi-gigabyte file in the wrong format) would otherwise
/// balloon memory with one error per line; past the cap, errors are only
/// counted, not stored.
pub const DEFAULT_LENIENT_ERROR_CAP: usize = 1_000;

/// Errors collected by a lenient read, bounded in memory by a cap.
///
/// Behaves like a `Vec<TelemetryError>` for the common cases (`len`,
/// `is_empty`, indexing via [`Self::errors`], iteration) but stops *storing*
/// errors past the configured cap; [`Self::overflow`] counts the discarded
/// remainder and [`Self::total`] is the true malformed-row count.
#[derive(Debug, Default)]
pub struct LenientErrors {
    errors: Vec<TelemetryError>,
    overflow: usize,
    cap: usize,
}

impl LenientErrors {
    fn with_cap(cap: usize) -> LenientErrors {
        LenientErrors {
            errors: Vec::new(),
            overflow: 0,
            cap,
        }
    }

    fn record(&mut self, e: TelemetryError) {
        if self.errors.len() < self.cap {
            self.errors.push(e);
        } else {
            self.overflow += 1;
        }
    }

    /// Number of *stored* errors (capped).
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Whether any error occurred at all (stored or overflowed).
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty() && self.overflow == 0
    }

    /// The stored errors, oldest first.
    pub fn errors(&self) -> &[TelemetryError] {
        &self.errors
    }

    /// Iterate the stored errors.
    pub fn iter(&self) -> impl Iterator<Item = &TelemetryError> {
        self.errors.iter()
    }

    /// How many errors were discarded after the cap filled.
    pub fn overflow(&self) -> usize {
        self.overflow
    }

    /// Total malformed rows encountered: stored plus overflowed.
    pub fn total(&self) -> usize {
        self.errors.len() + self.overflow
    }
}

impl<'a> IntoIterator for &'a LenientErrors {
    type Item = &'a TelemetryError;
    type IntoIter = std::slice::Iter<'a, TelemetryError>;

    fn into_iter(self) -> Self::IntoIter {
        self.errors.iter()
    }
}

/// Parsing strictness for the row-oriented readers.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Fail on the first malformed row.
    Strict,
    /// Skip malformed rows, storing at most this many errors.
    Lenient(usize),
}

/// Read a CSV log written by [`write_csv`]. Fails on the first malformed row.
pub fn read_csv<R: Read>(input: R) -> Result<TelemetryLog, TelemetryError> {
    let (log, errors) = read_csv_inner(input, Mode::Strict)?;
    debug_assert!(errors.is_empty(), "strict mode fails fast");
    Ok(log)
}

/// Read a CSV log, skipping malformed rows and returning them as errors
/// alongside the successfully parsed log. At most
/// [`DEFAULT_LENIENT_ERROR_CAP`] errors are stored; see
/// [`read_csv_lenient_capped`] to choose the cap.
pub fn read_csv_lenient<R: Read>(
    input: R,
) -> Result<(TelemetryLog, LenientErrors), TelemetryError> {
    read_csv_inner(input, Mode::Lenient(DEFAULT_LENIENT_ERROR_CAP))
}

/// [`read_csv_lenient`] with an explicit cap on stored errors.
pub fn read_csv_lenient_capped<R: Read>(
    input: R,
    cap: usize,
) -> Result<(TelemetryLog, LenientErrors), TelemetryError> {
    read_csv_inner(input, Mode::Lenient(cap))
}

/// Record one codec pass on the global recorder: close the `codec.*` span
/// with its record/error fields and bump the records-read / lenient-error
/// counters (`autosens_telemetry_records_read_total`,
/// `autosens_telemetry_codec_lenient_errors_total`).
fn observe_read(mut span: autosens_obs::Span, log: &TelemetryLog, errors: &LenientErrors) {
    span.field("records", log.len());
    span.field("lenient_errors", errors.total());
    drop(span);
    let metrics = autosens_obs::MetricsRegistry::global();
    metrics
        .counter("autosens_telemetry_records_read_total")
        .add(log.len() as u64);
    metrics
        .counter("autosens_telemetry_codec_lenient_errors_total")
        .add(errors.total() as u64);
}

fn read_csv_inner<R: Read>(
    input: R,
    mode: Mode,
) -> Result<(TelemetryLog, LenientErrors), TelemetryError> {
    let span = autosens_obs::Recorder::global().root("codec.read_csv");
    let reader = BufReader::new(input);
    let mut log = TelemetryLog::new();
    let mut errors = LenientErrors::with_cap(match mode {
        Mode::Strict => 0,
        Mode::Lenient(cap) => cap,
    });
    let mut lines = reader.lines().enumerate();

    // Header.
    match lines.next() {
        Some((_, Ok(h))) if h.trim() == CSV_HEADER => {}
        Some((_, Ok(h))) => {
            return Err(TelemetryError::Malformed {
                line: 1,
                reason: format!("unexpected header: {h:?} (expected {CSV_HEADER:?})"),
            })
        }
        Some((_, Err(e))) => return Err(e.into()),
        None => {
            return Err(TelemetryError::Malformed {
                line: 1,
                reason: "empty input (missing header)".into(),
            })
        }
    }

    for (idx, line) in lines {
        let line = line?;
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        match parse_csv_row(&line, lineno).and_then(|r| {
            r.validate()?;
            Ok(r)
        }) {
            Ok(record) => {
                // Already validated; push cannot fail.
                log.push(record).expect("record validated above");
            }
            Err(e) => {
                if matches!(mode, Mode::Strict) {
                    return Err(e);
                }
                errors.record(e);
            }
        }
    }
    log.ensure_sorted();
    observe_read(span, &log, &errors);
    Ok((log, errors))
}

fn parse_csv_row(line: &str, lineno: usize) -> Result<ActionRecord, TelemetryError> {
    let malformed = |reason: String| TelemetryError::Malformed {
        line: lineno,
        reason,
    };
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 7 {
        return Err(malformed(format!(
            "expected 7 fields, got {}",
            fields.len()
        )));
    }
    let time_ms: i64 = fields[0]
        .trim()
        .parse()
        .map_err(|_| malformed(format!("bad time_ms: {:?}", fields[0])))?;
    let action = ActionType::parse(fields[1].trim())
        .ok_or_else(|| malformed(format!("bad action: {:?}", fields[1])))?;
    let latency_ms: f64 = fields[2]
        .trim()
        .parse()
        .map_err(|_| malformed(format!("bad latency_ms: {:?}", fields[2])))?;
    let user: u64 = fields[3]
        .trim()
        .parse()
        .map_err(|_| malformed(format!("bad user: {:?}", fields[3])))?;
    let class = UserClass::parse(fields[4].trim())
        .ok_or_else(|| malformed(format!("bad class: {:?}", fields[4])))?;
    let tz_offset_ms: i64 = fields[5]
        .trim()
        .parse()
        .map_err(|_| malformed(format!("bad tz_offset_ms: {:?}", fields[5])))?;
    let outcome = Outcome::parse(fields[6].trim())
        .ok_or_else(|| malformed(format!("bad outcome: {:?}", fields[6])))?;
    Ok(ActionRecord {
        time: SimTime(time_ms),
        action,
        latency_ms,
        user: UserId(user),
        class,
        tz_offset_ms,
        outcome,
    })
}

/// Write a log as JSON Lines (one serde-serialized record per line).
pub fn write_jsonl<W: Write>(log: &TelemetryLog, out: &mut W) -> Result<(), TelemetryError> {
    for r in log.iter() {
        let line = serde_json::to_string(&r)
            .map_err(|e| TelemetryError::InvalidRecord(format!("serialization failed: {e}")))?;
        writeln!(out, "{line}")?;
    }
    Ok(())
}

/// Read a JSONL log. Fails on the first malformed line.
pub fn read_jsonl<R: Read>(input: R) -> Result<TelemetryLog, TelemetryError> {
    let (log, errors) = read_jsonl_inner(input, Mode::Strict)?;
    debug_assert!(errors.is_empty(), "strict mode fails fast");
    Ok(log)
}

/// Read a JSONL log, skipping malformed lines and returning them as errors
/// alongside the successfully parsed log. At most
/// [`DEFAULT_LENIENT_ERROR_CAP`] errors are stored; see
/// [`read_jsonl_lenient_capped`] to choose the cap.
pub fn read_jsonl_lenient<R: Read>(
    input: R,
) -> Result<(TelemetryLog, LenientErrors), TelemetryError> {
    read_jsonl_inner(input, Mode::Lenient(DEFAULT_LENIENT_ERROR_CAP))
}

/// [`read_jsonl_lenient`] with an explicit cap on stored errors.
pub fn read_jsonl_lenient_capped<R: Read>(
    input: R,
    cap: usize,
) -> Result<(TelemetryLog, LenientErrors), TelemetryError> {
    read_jsonl_inner(input, Mode::Lenient(cap))
}

fn read_jsonl_inner<R: Read>(
    input: R,
    mode: Mode,
) -> Result<(TelemetryLog, LenientErrors), TelemetryError> {
    let span = autosens_obs::Recorder::global().root("codec.read_jsonl");
    let reader = BufReader::new(input);
    let mut log = TelemetryLog::new();
    let mut errors = LenientErrors::with_cap(match mode {
        Mode::Strict => 0,
        Mode::Lenient(cap) => cap,
    });
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = serde_json::from_str::<ActionRecord>(&line)
            .map_err(|e| TelemetryError::Malformed {
                line: lineno,
                reason: e.to_string(),
            })
            .and_then(|r| {
                r.validate().map_err(|e| TelemetryError::Malformed {
                    line: lineno,
                    reason: e.to_string(),
                })?;
                Ok(r)
            });
        match parsed {
            Ok(record) => {
                // Already validated; push cannot fail.
                log.push(record).expect("record validated above");
            }
            Err(e) => {
                if matches!(mode, Mode::Strict) {
                    return Err(e);
                }
                errors.record(e);
            }
        }
    }
    log.ensure_sorted();
    observe_read(span, &log, &errors);
    Ok((log, errors))
}

/// Format read by a [`TailReader`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailFormat {
    /// The [`CSV_HEADER`]-prefixed CSV written by [`write_csv`].
    Csv,
    /// JSON Lines as written by [`write_jsonl`].
    Jsonl,
}

/// An append-aware reader that tails a growing telemetry file.
///
/// Each [`TailReader::poll`] reads everything appended since the previous
/// poll and parses only **complete** lines — a partially written trailing
/// line is left in the file (the byte offset stops at the last newline)
/// and picked up whole on a later poll, so a writer mid-`write` never
/// produces a spurious parse error. The reader holds no file handle
/// between polls and keeps only a byte offset, which [`TailReader::offset`]
/// exposes for checkpointing; [`TailReader::resume`] reconstructs the
/// reader at that offset after a restart.
///
/// Records are returned in file (arrival) order, unsorted — a streaming
/// consumer does its own time ordering. Malformed rows are collected as
/// capped [`LenientErrors`] rather than aborting the tail; I/O failures
/// and file truncation are hard errors.
#[derive(Debug)]
pub struct TailReader {
    path: std::path::PathBuf,
    format: TailFormat,
    offset: u64,
    /// Lines fully consumed so far (header included), for error numbering.
    /// Counts restart at 0 on [`TailReader::resume`] — offsets, not line
    /// numbers, are the durable coordinate.
    lines_seen: usize,
}

impl TailReader {
    /// Tail a file from its beginning (the CSV header, if any, is consumed
    /// and validated by the first poll that sees a complete first line).
    pub fn new(path: impl Into<std::path::PathBuf>, format: TailFormat) -> TailReader {
        TailReader {
            path: path.into(),
            format,
            offset: 0,
            lines_seen: 0,
        }
    }

    /// Resume tailing at a checkpointed byte offset (an offset previously
    /// returned by [`TailReader::offset`], which always falls on a line
    /// boundary).
    pub fn resume(
        path: impl Into<std::path::PathBuf>,
        format: TailFormat,
        offset: u64,
    ) -> TailReader {
        TailReader {
            path: path.into(),
            format,
            offset,
            lines_seen: 0,
        }
    }

    /// The byte offset of the first unconsumed byte — always a line
    /// boundary, safe to persist in a checkpoint.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Read and parse every complete line appended since the last poll.
    /// Returns an empty batch (not an error) when nothing new is ready.
    pub fn poll(&mut self) -> Result<(Vec<ActionRecord>, LenientErrors), TelemetryError> {
        use std::io::Seek;
        let mut errors = LenientErrors::with_cap(DEFAULT_LENIENT_ERROR_CAP);
        let mut file = std::fs::File::open(&self.path)?;
        let len = file.metadata()?.len();
        if len < self.offset {
            return Err(TelemetryError::Malformed {
                line: self.lines_seen,
                reason: format!(
                    "tailed file shrank to {len} bytes below checkpoint offset {} — \
                     truncated or replaced mid-stream",
                    self.offset
                ),
            });
        }
        if len == self.offset {
            return Ok((Vec::new(), errors));
        }
        file.seek(std::io::SeekFrom::Start(self.offset))?;
        let mut buf = Vec::with_capacity((len - self.offset) as usize);
        file.take(len - self.offset).read_to_end(&mut buf)?;
        // Consume up to the last newline only; a trailing partial line
        // stays in the file for the next poll.
        let Some(last_nl) = buf.iter().rposition(|&b| b == b'\n') else {
            return Ok((Vec::new(), errors));
        };
        let text =
            std::str::from_utf8(&buf[..=last_nl]).map_err(|e| TelemetryError::Malformed {
                line: self.lines_seen + 1,
                reason: format!("tailed bytes are not UTF-8: {e}"),
            })?;

        let mut records = Vec::new();
        for line in text.lines() {
            let at_header = self.offset == 0 && self.lines_seen == 0;
            self.lines_seen += 1;
            let lineno = self.lines_seen;
            if at_header && self.format == TailFormat::Csv {
                if line.trim() != CSV_HEADER {
                    return Err(TelemetryError::Malformed {
                        line: 1,
                        reason: format!("unexpected header: {line:?} (expected {CSV_HEADER:?})"),
                    });
                }
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let parsed = match self.format {
                TailFormat::Csv => parse_csv_row(line, lineno),
                TailFormat::Jsonl => serde_json::from_str::<ActionRecord>(line).map_err(|e| {
                    TelemetryError::Malformed {
                        line: lineno,
                        reason: e.to_string(),
                    }
                }),
            }
            .and_then(|r| {
                r.validate().map_err(|e| TelemetryError::Malformed {
                    line: lineno,
                    reason: e.to_string(),
                })?;
                Ok(r)
            });
            match parsed {
                Ok(r) => records.push(r),
                Err(e) => errors.record(e),
            }
        }
        self.offset += (last_nl + 1) as u64;

        let metrics = autosens_obs::MetricsRegistry::global();
        metrics.counter("autosens_telemetry_tail_polls_total").inc();
        metrics
            .counter("autosens_telemetry_records_read_total")
            .add(records.len() as u64);
        Ok((records, errors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ms: i64, latency: f64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t_ms),
            action: ActionType::Search,
            latency_ms: latency,
            user: UserId(42),
            class: UserClass::Consumer,
            tz_offset_ms: -18_000_000,
            outcome: Outcome::Success,
        }
    }

    fn sample_log() -> TelemetryLog {
        TelemetryLog::from_records(vec![rec(1000, 150.5), rec(2000, 300.0)]).unwrap()
    }

    #[test]
    fn csv_roundtrip() {
        let log = sample_log();
        let mut buf = Vec::new();
        write_csv(&log, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.to_records(), log.to_records());
    }

    #[test]
    fn csv_rejects_bad_header() {
        let data = "wrong,header\n1,SelectMail,1.0,1,Business,0,Success\n";
        let err = read_csv(data.as_bytes()).unwrap_err();
        assert!(matches!(err, TelemetryError::Malformed { line: 1, .. }));
        assert!(read_csv("".as_bytes()).is_err());
    }

    #[test]
    fn csv_rejects_malformed_rows_with_line_numbers() {
        let data = format!("{CSV_HEADER}\n1000,SelectMail,nope,1,Business,0,Success\n");
        let err = read_csv(data.as_bytes()).unwrap_err();
        match err {
            TelemetryError::Malformed { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("latency"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn csv_rejects_wrong_field_count_and_bad_enums() {
        let rows = [
            "1000,SelectMail,1.0,1,Business,0",            // 6 fields
            "1000,Click,1.0,1,Business,0,Success",         // bad action
            "1000,SelectMail,1.0,1,Premium,0,Success",     // bad class
            "1000,SelectMail,1.0,1,Business,0,Maybe",      // bad outcome
            "x,SelectMail,1.0,1,Business,0,Success",       // bad time
            "1000,SelectMail,1.0,u1,Business,0,Success",   // bad user
            "1000,SelectMail,1.0,1,Business,zero,Success", // bad tz
        ];
        for row in rows {
            let data = format!("{CSV_HEADER}\n{row}\n");
            assert!(read_csv(data.as_bytes()).is_err(), "row should fail: {row}");
        }
    }

    #[test]
    fn csv_rejects_semantically_invalid_records() {
        // Parses fine but fails validation (negative latency).
        let data = format!("{CSV_HEADER}\n1000,SelectMail,-5.0,1,Business,0,Success\n");
        assert!(matches!(
            read_csv(data.as_bytes()),
            Err(TelemetryError::InvalidRecord(_))
        ));
        // NaN latency parses as f64 but must be rejected.
        let data = format!("{CSV_HEADER}\n1000,SelectMail,NaN,1,Business,0,Success\n");
        assert!(read_csv(data.as_bytes()).is_err());
    }

    #[test]
    fn lenient_mode_collects_errors_and_keeps_good_rows() {
        let data = format!(
            "{CSV_HEADER}\n\
             1000,SelectMail,100.0,1,Business,0,Success\n\
             bad row\n\
             2000,Search,200.0,2,Consumer,0,Success\n\
             3000,SelectMail,-1.0,3,Business,0,Success\n"
        );
        let (log, errors) = read_csv_lenient(data.as_bytes()).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(errors.len(), 2);
    }

    #[test]
    fn csv_skips_blank_lines() {
        let data = format!("{CSV_HEADER}\n\n1000,SelectMail,100.0,1,Business,0,Success\n\n");
        let log = read_csv(data.as_bytes()).unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn csv_sorts_unsorted_input() {
        let data = format!(
            "{CSV_HEADER}\n\
             2000,Search,200.0,2,Consumer,0,Success\n\
             1000,SelectMail,100.0,1,Business,0,Success\n"
        );
        let log = read_csv(data.as_bytes()).unwrap();
        assert!(log.is_sorted());
        assert_eq!(log.get(0).time.millis(), 1000);
    }

    #[test]
    fn jsonl_roundtrip() {
        let log = sample_log();
        let mut buf = Vec::new();
        write_jsonl(&log, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.to_records(), log.to_records());
    }

    #[test]
    fn jsonl_rejects_malformed_lines() {
        let data = "{\"not\": \"a record\"}\n";
        let err = read_jsonl(data.as_bytes()).unwrap_err();
        assert!(matches!(err, TelemetryError::Malformed { line: 1, .. }));
        let data = "not json at all\n";
        assert!(read_jsonl(data.as_bytes()).is_err());
    }

    #[test]
    fn jsonl_validates_semantics() {
        let mut bad = rec(0, 1.0);
        bad.latency_ms = 1.0;
        let mut buf = Vec::new();
        write_jsonl(&TelemetryLog::from_records(vec![bad]).unwrap(), &mut buf).unwrap();
        // Corrupt the latency to a negative value in the serialized form.
        let text = String::from_utf8(buf).unwrap().replace("1.0", "-1.0");
        assert!(read_jsonl(text.as_bytes()).is_err());
    }

    #[test]
    fn jsonl_empty_input_is_empty_log() {
        let log = read_jsonl("".as_bytes()).unwrap();
        assert!(log.is_empty());
    }

    #[test]
    fn jsonl_lenient_collects_errors_and_keeps_good_lines() {
        let log = sample_log();
        let mut buf = Vec::new();
        write_jsonl(&log, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("garbage line\n");
        let (back, errors) = read_jsonl_lenient(text.as_bytes()).unwrap();
        assert_eq!(back.to_records(), log.to_records());
        assert_eq!(errors.len(), 1);
        assert_eq!(errors.overflow(), 0);
        assert!(matches!(
            errors.errors()[0],
            TelemetryError::Malformed { line: 3, .. }
        ));
    }

    /// Corrupt N of M CSV rows; exactly M−N records survive lenient parsing
    /// and each error carries the corrupted row's line number.
    #[test]
    fn csv_lenient_roundtrip_survives_corruption() {
        let m = 50;
        let log = TelemetryLog::from_records((0..m).map(|i| rec(i as i64 * 1000, 100.0)).collect())
            .unwrap();
        let mut buf = Vec::new();
        write_csv(&log, &mut buf).unwrap();
        let mut lines: Vec<String> = String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        // Corrupt every 5th data row (rows are at index 1.., after the header).
        let corrupted: Vec<usize> = (1..lines.len()).step_by(5).collect();
        for &i in &corrupted {
            lines[i] = format!("corrupt<{i}>");
        }
        let text = lines.join("\n");
        let (back, errors) = read_csv_lenient(text.as_bytes()).unwrap();
        assert_eq!(back.len(), m - corrupted.len());
        assert_eq!(errors.total(), corrupted.len());
        // Line numbers are 1-based over the whole file, header included.
        let got: Vec<usize> = errors
            .iter()
            .map(|e| match e {
                TelemetryError::Malformed { line, .. } => *line,
                other => panic!("unexpected error {other}"),
            })
            .collect();
        let want: Vec<usize> = corrupted.iter().map(|i| i + 1).collect();
        assert_eq!(got, want);
        // The surviving records are exactly the uncorrupted ones.
        let survivor_times: Vec<i64> = back.iter().map(|r| r.time.millis()).collect();
        let expected_times: Vec<i64> = (0..m)
            .filter(|i| !corrupted.contains(&(i + 1)))
            .map(|i| i as i64 * 1000)
            .collect();
        assert_eq!(survivor_times, expected_times);
    }

    /// Same contract for JSONL (no header line, so data row k is line k+1).
    #[test]
    fn jsonl_lenient_roundtrip_survives_corruption() {
        let m = 40;
        let log = TelemetryLog::from_records((0..m).map(|i| rec(i as i64 * 1000, 100.0)).collect())
            .unwrap();
        let mut buf = Vec::new();
        write_jsonl(&log, &mut buf).unwrap();
        let mut lines: Vec<String> = String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        let corrupted: Vec<usize> = (0..lines.len()).step_by(7).collect();
        for &i in &corrupted {
            lines[i] = "{broken".into();
        }
        let text = lines.join("\n");
        let (back, errors) = read_jsonl_lenient(text.as_bytes()).unwrap();
        assert_eq!(back.len(), m - corrupted.len());
        assert_eq!(errors.total(), corrupted.len());
        let got: Vec<usize> = errors
            .iter()
            .map(|e| match e {
                TelemetryError::Malformed { line, .. } => *line,
                other => panic!("unexpected error {other}"),
            })
            .collect();
        let want: Vec<usize> = corrupted.iter().map(|i| i + 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn tail_reader_follows_appends_and_defers_partial_lines() {
        let dir = std::env::temp_dir().join(format!("autosens-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail_appends.csv");
        let mut file = std::fs::File::create(&path).unwrap();
        let mut tail = TailReader::new(&path, TailFormat::Csv);

        // Nothing yet — empty file, then a partial header.
        assert!(tail.poll().unwrap().0.is_empty());
        write!(file, "time_ms,action").unwrap();
        file.flush().unwrap();
        assert!(tail.poll().unwrap().0.is_empty());
        assert_eq!(tail.offset(), 0);

        // Complete the header and one row, plus the start of a second row.
        writeln!(file, ",latency_ms,user,class,tz_offset_ms,outcome").unwrap();
        writeln!(file, "1000,Search,150.5,42,Consumer,-18000000,Success").unwrap();
        write!(file, "2000,Search").unwrap();
        file.flush().unwrap();
        let (batch, errors) = tail.poll().unwrap();
        assert!(errors.is_empty());
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].time.millis(), 1000);

        // Finish the second row; only the delta is read.
        writeln!(file, ",300.0,42,Consumer,-18000000,Success").unwrap();
        file.flush().unwrap();
        let (batch, _) = tail.poll().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].time.millis(), 2000);

        // Resume from the checkpointed offset sees only newer appends.
        let offset = tail.offset();
        writeln!(file, "3000,Search,90.0,7,Business,0,Success").unwrap();
        file.flush().unwrap();
        let mut resumed = TailReader::resume(&path, TailFormat::Csv, offset);
        let (batch, _) = resumed.poll().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].time.millis(), 3000);
        assert!(resumed.poll().unwrap().0.is_empty());
    }

    #[test]
    fn tail_reader_collects_bad_rows_and_rejects_truncation() {
        let dir = std::env::temp_dir().join(format!("autosens-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail_errors.csv");
        let mut file = std::fs::File::create(&path).unwrap();
        writeln!(file, "{CSV_HEADER}").unwrap();
        writeln!(file, "not a row").unwrap();
        writeln!(file, "1000,Search,150.5,42,Consumer,-18000000,Success").unwrap();
        file.flush().unwrap();
        let mut tail = TailReader::new(&path, TailFormat::Csv);
        let (batch, errors) = tail.poll().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(errors.total(), 1);
        assert!(matches!(
            errors.errors()[0],
            TelemetryError::Malformed { line: 2, .. }
        ));
        // A bad header is fatal, not lenient.
        let bad = dir.join("tail_bad_header.csv");
        std::fs::write(&bad, "wrong,header\n").unwrap();
        assert!(TailReader::new(&bad, TailFormat::Csv).poll().is_err());
        // Truncation below the checkpoint is a hard error.
        std::fs::write(&path, "").unwrap();
        assert!(tail.poll().is_err());
    }

    #[test]
    fn tail_reader_reads_jsonl_without_a_header() {
        let dir = std::env::temp_dir().join(format!("autosens-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail.jsonl");
        let log = sample_log();
        let mut buf = Vec::new();
        write_jsonl(&log, &mut buf).unwrap();
        std::fs::write(&path, &buf).unwrap();
        let mut tail = TailReader::new(&path, TailFormat::Jsonl);
        let (batch, errors) = tail.poll().unwrap();
        assert!(errors.is_empty());
        assert_eq!(batch, log.to_records());
    }

    #[test]
    fn lenient_cap_counts_overflow_instead_of_storing() {
        let mut data = String::from(CSV_HEADER);
        data.push('\n');
        for i in 0..10 {
            data.push_str(&format!("bad row {i}\n"));
        }
        data.push_str("1000,SelectMail,100.0,1,Business,0,Success\n");
        let (log, errors) = read_csv_lenient_capped(data.as_bytes(), 3).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(errors.len(), 3);
        assert_eq!(errors.overflow(), 7);
        assert_eq!(errors.total(), 10);
        assert!(!errors.is_empty());
        // A zero cap stores nothing but still counts.
        let (_, errors) = read_csv_lenient_capped(data.as_bytes(), 0).unwrap();
        assert_eq!(errors.len(), 0);
        assert_eq!(errors.overflow(), 10);
        assert!(!errors.is_empty());
        // JSONL honors the cap too.
        let jsonl = "x\ny\nz\n";
        let (_, errors) = read_jsonl_lenient_capped(jsonl.as_bytes(), 1).unwrap();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors.overflow(), 2);
    }
}
