//! [`TelemetryLog`]: a validated, time-sorted store of action records.
//!
//! The unbiased-distribution estimator needs fast nearest-in-time lookups
//! (binary search over timestamps), so the log maintains a sorted-by-time
//! invariant. Appends may arrive out of order (e.g. merged shards); the log
//! tracks sortedness and `ensure_sorted` performs a stable sort on demand.

use crate::error::TelemetryError;
use crate::record::{ActionRecord, Outcome};
use crate::time::SimTime;

/// A collection of action records with a maintained time order.
///
/// ```
/// use autosens_telemetry::log::TelemetryLog;
/// use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
/// use autosens_telemetry::time::SimTime;
///
/// let rec = |t: i64, latency: f64| ActionRecord {
///     time: SimTime(t),
///     action: ActionType::SelectMail,
///     latency_ms: latency,
///     user: UserId(1),
///     class: UserClass::Business,
///     tz_offset_ms: 0,
///     outcome: Outcome::Success,
/// };
/// // Out-of-order input is sorted on construction...
/// let log = TelemetryLog::from_records(vec![rec(2000, 5.0), rec(0, 1.0)]).unwrap();
/// assert!(log.is_sorted());
/// // ...enabling binary-searched range and nearest-in-time queries.
/// assert_eq!(log.range(SimTime(0), SimTime(1000)).unwrap().len(), 1);
/// let (lo, hi) = log.nearest_in_time(SimTime(1500)).unwrap();
/// assert_eq!((lo, hi), (1, 2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TelemetryLog {
    records: Vec<ActionRecord>,
    sorted: bool,
}

impl TelemetryLog {
    /// An empty log.
    pub fn new() -> Self {
        TelemetryLog {
            records: Vec::new(),
            sorted: true,
        }
    }

    /// Build from a vector of records, validating each. The result is sorted.
    pub fn from_records(records: Vec<ActionRecord>) -> Result<Self, TelemetryError> {
        for r in &records {
            r.validate()?;
        }
        Ok(TelemetryLog::from_trusted_records(records))
    }

    /// Build from records that are individually known-valid — e.g. records
    /// filtered out of an existing (validated) log, or emitted by the
    /// simulator, which constructs only valid records. Skips the per-record
    /// re-validation pass — the dominant cost of materializing large
    /// sub-logs — but still establishes the time-order invariant. Debug
    /// builds re-validate to catch misuse.
    pub fn from_trusted_records(records: Vec<ActionRecord>) -> Self {
        debug_assert!(
            records.iter().all(|r| r.validate().is_ok()),
            "from_trusted_records fed an invalid record"
        );
        let mut log = TelemetryLog {
            sorted: records.windows(2).all(|w| w[0].time <= w[1].time),
            records,
        };
        log.ensure_sorted();
        log
    }

    /// Append one validated record, tracking whether order is preserved.
    pub fn push(&mut self, record: ActionRecord) -> Result<(), TelemetryError> {
        record.validate()?;
        if let Some(last) = self.records.last() {
            if record.time < last.time {
                self.sorted = false;
            }
        }
        self.records.push(record);
        Ok(())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether the records are currently in time order.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Stable-sort the records by time if needed.
    pub fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.records.sort_by_key(|r| r.time);
            self.sorted = true;
        }
    }

    /// All records in storage order. Time-ordered iff [`Self::is_sorted`].
    pub fn records(&self) -> &[ActionRecord] {
        &self.records
    }

    /// Iterate records.
    pub fn iter(&self) -> impl Iterator<Item = &ActionRecord> {
        self.records.iter()
    }

    /// The records whose time lies in `[from, to)`.
    ///
    /// Requires a sorted log; errors otherwise (call
    /// [`Self::ensure_sorted`] first).
    pub fn range(&self, from: SimTime, to: SimTime) -> Result<&[ActionRecord], TelemetryError> {
        self.require_sorted()?;
        let lo = self.records.partition_point(|r| r.time < from);
        let hi = self.records.partition_point(|r| r.time < to);
        Ok(&self.records[lo..hi])
    }

    /// Index range `[lo, hi)` of records with time in `[from, to)`.
    pub fn range_indices(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> Result<(usize, usize), TelemetryError> {
        self.require_sorted()?;
        let lo = self.records.partition_point(|r| r.time < from);
        let hi = self.records.partition_point(|r| r.time < to);
        Ok((lo, hi))
    }

    /// The record(s) nearest in time to `t`: returns the index range
    /// `[lo, hi)` of *all* records sharing the minimal |time - t|, so the
    /// caller can break ties randomly as the paper's §2.2 prescribes.
    ///
    /// Errors on an empty or unsorted log.
    pub fn nearest_in_time(&self, t: SimTime) -> Result<(usize, usize), TelemetryError> {
        self.require_sorted()?;
        if self.records.is_empty() {
            return Err(TelemetryError::InvalidRecord(
                "nearest_in_time on empty log".into(),
            ));
        }
        let n = self.records.len();
        // First record at or after t.
        let idx = self.records.partition_point(|r| r.time < t);
        // Candidate distances on each side of the insertion point.
        let best = if idx == 0 {
            self.records[0].time.millis() - t.millis()
        } else if idx == n {
            t.millis() - self.records[n - 1].time.millis()
        } else {
            let after = self.records[idx].time.millis() - t.millis();
            let before = t.millis() - self.records[idx - 1].time.millis();
            after.min(before)
        };
        // All records at distance `best` form two (possibly empty) runs of
        // equal timestamps: one at t-best, one at t+best. Locate them.
        let lo_time = SimTime(t.millis() - best);
        let hi_time = SimTime(t.millis() + best);
        let lo = self.records.partition_point(|r| r.time < lo_time);
        let hi = self.records.partition_point(|r| r.time <= hi_time);
        debug_assert!(lo < hi, "at least one record at the minimal distance");
        Ok((lo, hi))
    }

    /// Merge another log's records into this one (e.g. shards produced by
    /// parallel exporters), restoring the time order afterwards.
    pub fn merge(&mut self, other: &TelemetryLog) {
        if other.is_empty() {
            return;
        }
        if let (Some(last), Some(first)) = (self.records.last(), other.records.first()) {
            if first.time < last.time {
                self.sorted = false;
            }
        }
        self.sorted = self.sorted && other.sorted;
        self.records.extend_from_slice(&other.records);
        self.ensure_sorted();
    }

    /// Remove exact field-for-field duplicate records (re-delivered upload
    /// batches), keeping the first occurrence of each. Storage order is
    /// preserved, so sortedness is unaffected. Returns how many records
    /// were removed.
    pub fn dedup_exact(&mut self) -> usize {
        let mut seen: std::collections::HashSet<(i64, u8, u64, u64, u8, i64, u8)> =
            std::collections::HashSet::with_capacity(self.records.len());
        let before = self.records.len();
        self.records.retain(|r| {
            seen.insert((
                r.time.millis(),
                r.action as u8,
                r.latency_ms.to_bits(),
                r.user.0,
                r.class as u8,
                r.tz_offset_ms,
                r.outcome as u8,
            ))
        });
        before - self.records.len()
    }

    /// Data-parallel variant of [`TelemetryLog::dedup_exact`] for sorted
    /// logs: exact duplicates necessarily share a timestamp, so a record is
    /// a repeat iff an identical record occurs *earlier within its run of
    /// equal timestamps*. Each chunk decides its own records independently
    /// (backward scans may read across a chunk boundary, which is safe on
    /// the shared slice) and kept records are concatenated in chunk order —
    /// the result is identical to `dedup_exact` for any thread count.
    ///
    /// Unsorted logs, and sorted logs with a pathologically long
    /// equal-timestamp run (where the run-local scan would go quadratic),
    /// fall back to the serial hash-set pass; the fallback condition
    /// depends only on the data, never on `threads`, so determinism holds.
    pub fn dedup_exact_par(&mut self, threads: usize) -> usize {
        const MAX_RUN: usize = 256;
        if !self.sorted || self.max_equal_time_run() > MAX_RUN {
            return self.dedup_exact();
        }
        let records = &self.records;
        let n = records.len();
        // Map phase finds duplicate *indices* only — the common clean-log
        // case then costs one scan and zero copies.
        let (parts, _) = autosens_exec::run_chunks(
            "dedup_exact",
            n,
            autosens_exec::chunk_size_for(n),
            threads,
            |_, range| {
                let mut dups: Vec<usize> = Vec::new();
                for i in range {
                    let r = &records[i];
                    let mut j = i;
                    while j > 0 && records[j - 1].time == r.time {
                        j -= 1;
                        if Self::same_record_exact(&records[j], r) {
                            dups.push(i);
                            break;
                        }
                    }
                }
                dups
            },
        )
        .expect("dedup scan does not panic");
        let removed: usize = parts.iter().map(Vec::len).sum();
        if removed == 0 {
            return 0;
        }
        // Chunk order makes the concatenated duplicate indices ascending.
        let mut dup_iter = parts.iter().flatten().copied();
        let mut next_dup = dup_iter.next();
        let mut kept: Vec<ActionRecord> = Vec::with_capacity(n - removed);
        for (i, r) in self.records.iter().enumerate() {
            if Some(i) == next_dup {
                next_dup = dup_iter.next();
            } else {
                kept.push(*r);
            }
        }
        self.records = kept;
        removed
    }

    /// Length of the longest run of records sharing one timestamp.
    fn max_equal_time_run(&self) -> usize {
        let mut max = 0usize;
        let mut run = 0usize;
        let mut last: Option<SimTime> = None;
        for r in &self.records {
            if last == Some(r.time) {
                run += 1;
            } else {
                run = 1;
                last = Some(r.time);
            }
            max = max.max(run);
        }
        max
    }

    /// Retain only successful actions (the paper analyzes successes only).
    pub fn successes_only(&self) -> TelemetryLog {
        TelemetryLog {
            records: self
                .records
                .iter()
                .filter(|r| r.outcome == Outcome::Success)
                .copied()
                .collect(),
            sorted: self.sorted,
        }
    }

    /// Earliest record time (requires sorted, non-empty log).
    pub fn start_time(&self) -> Option<SimTime> {
        if self.sorted {
            self.records.first().map(|r| r.time)
        } else {
            self.records.iter().map(|r| r.time).min()
        }
    }

    /// Latest record time.
    pub fn end_time(&self) -> Option<SimTime> {
        if self.sorted {
            self.records.last().map(|r| r.time)
        } else {
            self.records.iter().map(|r| r.time).max()
        }
    }

    /// The `(timestamp ms, latency)` series of the log, in time order.
    /// Errors on an unsorted log.
    pub fn latency_series(&self) -> Result<Vec<(i64, f64)>, TelemetryError> {
        self.require_sorted()?;
        Ok(self
            .records
            .iter()
            .map(|r| (r.time.millis(), r.latency_ms))
            .collect())
    }

    /// Field-for-field identity at the bit level, matching the key used by
    /// [`TelemetryLog::dedup_exact`]'s hash set (latency compared as bits).
    fn same_record_exact(a: &ActionRecord, b: &ActionRecord) -> bool {
        a.time == b.time
            && a.action == b.action
            && a.latency_ms.to_bits() == b.latency_ms.to_bits()
            && a.user == b.user
            && a.class == b.class
            && a.tz_offset_ms == b.tz_offset_ms
            && a.outcome == b.outcome
    }

    /// Error with the first violating index unless the log is sorted.
    pub fn require_sorted(&self) -> Result<(), TelemetryError> {
        if !self.sorted {
            // Find the first violation for a useful message.
            let index = self
                .records
                .windows(2)
                .position(|w| w[1].time < w[0].time)
                .map(|i| i + 1)
                .unwrap_or(0);
            return Err(TelemetryError::Unsorted { index });
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a TelemetryLog {
    type Item = &'a ActionRecord;
    type IntoIter = std::slice::Iter<'a, ActionRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ActionType, UserClass, UserId};

    fn rec(t_ms: i64, latency: f64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t_ms),
            action: ActionType::SelectMail,
            latency_ms: latency,
            user: UserId(1),
            class: UserClass::Business,
            tz_offset_ms: 0,
            outcome: Outcome::Success,
        }
    }

    #[test]
    fn push_tracks_sortedness() {
        let mut log = TelemetryLog::new();
        assert!(log.is_sorted());
        log.push(rec(10, 1.0)).unwrap();
        log.push(rec(20, 2.0)).unwrap();
        assert!(log.is_sorted());
        log.push(rec(15, 3.0)).unwrap();
        assert!(!log.is_sorted());
        log.ensure_sorted();
        assert!(log.is_sorted());
        let times: Vec<i64> = log.iter().map(|r| r.time.millis()).collect();
        assert_eq!(times, vec![10, 15, 20]);
    }

    #[test]
    fn push_validates() {
        let mut log = TelemetryLog::new();
        assert!(log.push(rec(0, -1.0)).is_err());
        assert!(log.is_empty());
    }

    #[test]
    fn from_records_sorts_and_validates() {
        let log =
            TelemetryLog::from_records(vec![rec(30, 1.0), rec(10, 2.0), rec(20, 3.0)]).unwrap();
        assert!(log.is_sorted());
        assert_eq!(log.len(), 3);
        assert_eq!(log.records()[0].time.millis(), 10);
        assert!(TelemetryLog::from_records(vec![rec(0, f64::NAN)]).is_err());
    }

    #[test]
    fn range_selects_half_open_interval() {
        let log =
            TelemetryLog::from_records((0..10).map(|i| rec(i * 10, i as f64)).collect()).unwrap();
        let r = log.range(SimTime(20), SimTime(50)).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].time.millis(), 20);
        assert_eq!(r[2].time.millis(), 40);
        assert_eq!(log.range(SimTime(95), SimTime(200)).unwrap().len(), 0);
        let (lo, hi) = log.range_indices(SimTime(20), SimTime(50)).unwrap();
        assert_eq!((lo, hi), (2, 5));
    }

    #[test]
    fn range_requires_sorted() {
        let mut log = TelemetryLog::new();
        log.push(rec(20, 1.0)).unwrap();
        log.push(rec(10, 1.0)).unwrap();
        assert!(matches!(
            log.range(SimTime(0), SimTime(100)),
            Err(TelemetryError::Unsorted { index: 1 })
        ));
    }

    #[test]
    fn nearest_in_time_basic() {
        let log =
            TelemetryLog::from_records(vec![rec(0, 0.0), rec(100, 1.0), rec(200, 2.0)]).unwrap();
        // Closest to 140 is the record at 100.
        let (lo, hi) = log.nearest_in_time(SimTime(140)).unwrap();
        assert_eq!((lo, hi), (1, 2));
        // Exactly between 100 and 200: both are at distance 50.
        let (lo, hi) = log.nearest_in_time(SimTime(150)).unwrap();
        assert_eq!((lo, hi), (1, 3));
        // Before the first record.
        let (lo, hi) = log.nearest_in_time(SimTime(-50)).unwrap();
        assert_eq!((lo, hi), (0, 1));
        // After the last record.
        let (lo, hi) = log.nearest_in_time(SimTime(10_000)).unwrap();
        assert_eq!((lo, hi), (2, 3));
    }

    #[test]
    fn nearest_in_time_with_duplicate_timestamps() {
        let log = TelemetryLog::from_records(vec![
            rec(100, 1.0),
            rec(100, 2.0),
            rec(100, 3.0),
            rec(300, 4.0),
        ])
        .unwrap();
        // All three records at t=100 tie for nearest.
        let (lo, hi) = log.nearest_in_time(SimTime(120)).unwrap();
        assert_eq!((lo, hi), (0, 3));
        // Exact hit on a timestamp includes only that run.
        let (lo, hi) = log.nearest_in_time(SimTime(100)).unwrap();
        assert_eq!((lo, hi), (0, 3));
        // Equidistant between the runs: both runs tie.
        let (lo, hi) = log.nearest_in_time(SimTime(200)).unwrap();
        assert_eq!((lo, hi), (0, 4));
    }

    #[test]
    fn nearest_in_time_errors() {
        let log = TelemetryLog::new();
        assert!(log.nearest_in_time(SimTime(0)).is_err());
        let mut log = TelemetryLog::new();
        log.push(rec(10, 1.0)).unwrap();
        log.push(rec(5, 1.0)).unwrap();
        assert!(log.nearest_in_time(SimTime(0)).is_err());
    }

    #[test]
    fn merge_combines_shards_in_time_order() {
        let mut a = TelemetryLog::from_records(vec![rec(0, 1.0), rec(100, 2.0)]).unwrap();
        let b = TelemetryLog::from_records(vec![rec(50, 3.0), rec(150, 4.0)]).unwrap();
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert!(a.is_sorted());
        let times: Vec<i64> = a.iter().map(|r| r.time.millis()).collect();
        assert_eq!(times, vec![0, 50, 100, 150]);
        // Merging an empty log is a no-op.
        a.merge(&TelemetryLog::new());
        assert_eq!(a.len(), 4);
        // Merging into an empty log copies.
        let mut empty = TelemetryLog::new();
        empty.merge(&a);
        assert_eq!(empty.records(), a.records());
    }

    #[test]
    fn successes_only_filters_errors() {
        let mut bad = rec(50, 1.0);
        bad.outcome = Outcome::Error;
        let log = TelemetryLog::from_records(vec![rec(0, 1.0), bad, rec(100, 2.0)]).unwrap();
        let ok = log.successes_only();
        assert_eq!(ok.len(), 2);
        assert!(ok.iter().all(|r| r.outcome == Outcome::Success));
    }

    #[test]
    fn start_end_and_series() {
        let log = TelemetryLog::from_records(vec![rec(5, 1.5), rec(15, 2.5)]).unwrap();
        assert_eq!(log.start_time(), Some(SimTime(5)));
        assert_eq!(log.end_time(), Some(SimTime(15)));
        assert_eq!(log.latency_series().unwrap(), vec![(5, 1.5), (15, 2.5)]);
        assert_eq!(TelemetryLog::new().start_time(), None);
    }

    #[test]
    fn unsorted_start_end_still_correct() {
        let mut log = TelemetryLog::new();
        log.push(rec(50, 1.0)).unwrap();
        log.push(rec(10, 1.0)).unwrap();
        assert_eq!(log.start_time(), Some(SimTime(10)));
        assert_eq!(log.end_time(), Some(SimTime(50)));
    }

    #[test]
    fn dedup_exact_removes_only_exact_copies() {
        // Two exact duplicates of the t=10 record, non-adjacent within the
        // equal-time run, plus a same-time record differing in latency.
        let log = TelemetryLog::from_records(vec![
            rec(10, 1.0),
            rec(10, 2.0),
            rec(10, 1.0),
            rec(20, 3.0),
            rec(10, 1.0),
        ])
        .unwrap();
        let mut log = log;
        let removed = log.dedup_exact();
        assert_eq!(removed, 2);
        assert_eq!(log.len(), 3);
        assert!(log.is_sorted());
        let latencies: Vec<f64> = log.iter().map(|r| r.latency_ms).collect();
        assert_eq!(latencies, vec![1.0, 2.0, 3.0]);
        // Unsorted logs dedup too, preserving storage order.
        let mut unsorted = TelemetryLog::new();
        unsorted.push(rec(30, 1.0)).unwrap();
        unsorted.push(rec(10, 1.0)).unwrap();
        unsorted.push(rec(30, 1.0)).unwrap();
        assert_eq!(unsorted.dedup_exact(), 1);
        assert!(!unsorted.is_sorted());
        assert_eq!(unsorted.records()[0].time.millis(), 30);
        // A clean log is untouched.
        let mut clean = TelemetryLog::from_records(vec![rec(0, 1.0), rec(5, 2.0)]).unwrap();
        assert_eq!(clean.dedup_exact(), 0);
        assert_eq!(clean.len(), 2);
    }

    #[test]
    fn dedup_exact_par_matches_serial_for_any_thread_count() {
        // Duplicates scattered through equal-time runs across many chunks.
        let mut records: Vec<ActionRecord> = Vec::new();
        for i in 0..5_000i64 {
            records.push(rec(i / 3, (i % 7) as f64 + 1.0));
        }
        // Exact copies of every 10th record.
        for i in (0..5_000i64).step_by(10) {
            records.push(rec(i / 3, (i % 7) as f64 + 1.0));
        }
        let mut serial = TelemetryLog::from_records(records.clone()).unwrap();
        let removed_serial = serial.dedup_exact();
        assert!(removed_serial > 0);
        for threads in [1, 2, 4, 8] {
            let mut par = TelemetryLog::from_records(records.clone()).unwrap();
            let removed = par.dedup_exact_par(threads);
            assert_eq!(removed, removed_serial, "threads={threads}");
            assert_eq!(par.records(), serial.records(), "threads={threads}");
        }
    }

    #[test]
    fn dedup_exact_par_falls_back_on_unsorted_and_long_runs() {
        // Unsorted: falls back to the serial hash-set pass.
        let mut unsorted = TelemetryLog::new();
        unsorted.push(rec(30, 1.0)).unwrap();
        unsorted.push(rec(10, 1.0)).unwrap();
        unsorted.push(rec(30, 1.0)).unwrap();
        assert_eq!(unsorted.dedup_exact_par(4), 1);
        // One giant equal-timestamp run (beyond the run-scan cap): the
        // fallback still removes the exact duplicates.
        let mut records: Vec<ActionRecord> = (0..600).map(|i| rec(42, i as f64 + 1.0)).collect();
        records.push(rec(42, 1.0));
        let mut log = TelemetryLog::from_records(records).unwrap();
        assert_eq!(log.dedup_exact_par(4), 1);
        assert_eq!(log.len(), 600);
    }

    #[test]
    fn from_trusted_records_sorts_like_from_records() {
        let records = vec![rec(2000, 5.0), rec(0, 1.0), rec(1000, 2.0)];
        let a = TelemetryLog::from_records(records.clone()).unwrap();
        let b = TelemetryLog::from_trusted_records(records);
        assert!(b.is_sorted());
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn into_iterator_works() {
        let log = TelemetryLog::from_records(vec![rec(0, 1.0), rec(10, 2.0)]).unwrap();
        let total: f64 = (&log).into_iter().map(|r| r.latency_ms).sum();
        assert_eq!(total, 3.0);
    }
}
